"""k-nearest-neighbours classifier.

The paper motivates SMARTFEAT's model-aware prompting with KNN: "certain
models like k-nearest-neighbors (KNN) tend to perform better when the
data is normalized or has similar ranges".  This estimator lets that
claim be tested directly (see ``benchmarks/bench_knn_normalization.py``).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BaseEstimator):
    """Brute-force Euclidean k-NN with distance-tie-free probability output.

    Probabilities are the fraction of positive neighbours, which is what
    AUC ranking needs.  Brute force is O(n_train · n_test); fine at the
    working sizes of this reproduction.
    """

    def __init__(self, n_neighbors: int = 5) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be positive")
        self.n_neighbors = n_neighbors
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(np.int64)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) < self.n_neighbors:
            raise ValueError(
                f"need at least n_neighbors={self.n_neighbors} training rows, got {len(X)}"
            )
        if not np.isfinite(X).all():
            raise ValueError("X contains NaN or infinity; impute/sanitise first")
        self._X = X
        self._y = y
        return self

    def _neighbor_labels(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("KNeighborsClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        # Chunked distance computation keeps memory bounded.
        out = np.empty((len(X), self.n_neighbors), dtype=np.int64)
        chunk = max(1, 2_000_000 // max(len(self._X), 1))
        train_sq = (self._X**2).sum(axis=1)
        for start in range(0, len(X), chunk):
            block = X[start : start + chunk]
            d2 = (
                (block**2).sum(axis=1)[:, None]
                - 2.0 * block @ self._X.T
                + train_sq[None, :]
            )
            nearest = np.argpartition(d2, self.n_neighbors - 1, axis=1)[:, : self.n_neighbors]
            out[start : start + chunk] = self._y[nearest]
        return out

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        labels = self._neighbor_labels(X)
        p1 = labels.mean(axis=1)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)
