"""Feed-forward neural network: the paper's "DNN" downstream model.

Architecture per Section 4.1: two hidden layers of 100 units each with
ReLU activations, trained with Adam on minibatches.  Inputs are
standardised internally so unscaled engineered features do not destabilise
training (the substrate substitution for scikit-learn's well-conditioned
solver is documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator

__all__ = ["MLPClassifier"]


class MLPClassifier(BaseEstimator):
    """Two-hidden-layer ReLU network with Adam and early stopping.

    Parameters
    ----------
    hidden:
        Sizes of the hidden layers; the paper uses ``(100, 100)``.
    lr, batch_size, max_epochs:
        Adam learning rate, minibatch size, epoch budget.
    tol, patience:
        Early stopping: training stops after *patience* epochs without at
        least *tol* improvement in training loss.
    """

    def __init__(
        self,
        hidden: tuple[int, int] = (100, 100),
        lr: float = 1e-3,
        batch_size: int = 128,
        max_epochs: int = 60,
        tol: float = 1e-4,
        patience: int = 8,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        self.hidden = hidden
        self.lr = lr
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.tol = tol
        self.patience = patience
        self.l2 = l2
        self.seed = seed
        self._weights: list[np.ndarray] | None = None
        self._biases: list[np.ndarray] | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self.n_epochs_: int = 0

    # ------------------------------------------------------------------
    def _standardise(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._scale

    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        """Return per-layer activations and the output probability."""
        activations = [X]
        h = X
        for W, b in zip(self._weights[:-1], self._biases[:-1]):
            h = np.maximum(h @ W + b, 0.0)
            activations.append(h)
        logits = h @ self._weights[-1] + self._biases[-1]
        probs = 1.0 / (1.0 + np.exp(-np.clip(logits[:, 0], -500, 500)))
        return activations, probs

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if not np.isfinite(X).all():
            raise ValueError("X contains NaN or infinity; impute/sanitise first")
        rng = np.random.default_rng(self.seed)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        Xs = self._standardise(X)
        sizes = [X.shape[1], *self.hidden, 1]
        self._weights = [
            rng.normal(0.0, np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self._biases = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        m_w = [np.zeros_like(W) for W in self._weights]
        v_w = [np.zeros_like(W) for W in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        best_loss = np.inf
        stale_epochs = 0
        n = len(Xs)
        batch = min(self.batch_size, n)
        for epoch in range(self.max_epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                rows = order[start : start + batch]
                xb, yb = Xs[rows], y[rows]
                activations, probs = self._forward(xb)
                p = np.clip(probs, 1e-12, 1.0 - 1e-12)
                epoch_loss += float(
                    -(yb * np.log(p) + (1 - yb) * np.log(1 - p)).sum()
                )
                # Backward pass.
                delta = ((probs - yb) / len(rows))[:, None]
                grads_w: list[np.ndarray] = [None] * len(self._weights)
                grads_b: list[np.ndarray] = [None] * len(self._biases)
                for layer in range(len(self._weights) - 1, -1, -1):
                    grads_w[layer] = activations[layer].T @ delta + self.l2 * self._weights[layer]
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self._weights[layer].T) * (activations[layer] > 0)
                step += 1
                lr_t = self.lr * np.sqrt(1 - beta2**step) / (1 - beta1**step)
                for layer in range(len(self._weights)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    self._weights[layer] -= lr_t * m_w[layer] / (np.sqrt(v_w[layer]) + eps)
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    self._biases[layer] -= lr_t * m_b[layer] / (np.sqrt(v_b[layer]) + eps)
            epoch_loss /= n
            self.n_epochs_ = epoch + 1
            if epoch_loss < best_loss - self.tol:
                best_loss = epoch_loss
                stale_epochs = 0
            else:
                stale_epochs += 1
                if stale_epochs >= self.patience:
                    break
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("MLPClassifier is not fitted")
        Xs = self._standardise(np.asarray(X, dtype=np.float64))
        _, probs = self._forward(Xs)
        return np.column_stack([1.0 - probs, probs])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)
