"""Preprocessing transformers: scalers, label encoding, imputation.

These back both the harness (factorisation of categoricals, as the paper's
"standard data cleaning procedures") and the unary operator's normalisation
transformations (min-max scaling vs. standardisation).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseEstimator

__all__ = ["LabelEncoder", "MinMaxScaler", "SimpleImputer", "StandardScaler"]


class StandardScaler(BaseEstimator):
    """Standardise features to zero mean, unit variance (NaN-aware)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = np.nanmean(X, axis=0)
        scale = np.nanstd(X, axis=0)
        scale[scale == 0] = 1.0  # constant columns pass through unscaled
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator):
    """Scale features linearly into ``[0, 1]`` (NaN-aware)."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        self.min_ = np.nanmin(X, axis=0)
        data_range = np.nanmax(X, axis=0) - self.min_
        data_range[data_range == 0] = 1.0
        self.range_ = data_range
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        return (np.asarray(X, dtype=np.float64) - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        return np.asarray(X, dtype=np.float64) * self.range_ + self.min_


class LabelEncoder(BaseEstimator):
    """Map arbitrary hashable labels to integers ``0..k-1``."""

    def __init__(self) -> None:
        self.classes_: list[Any] = []
        self._lookup: dict[Any, int] = {}

    def fit(self, values: list) -> "LabelEncoder":
        self.classes_ = []
        self._lookup = {}
        for v in values:
            if v not in self._lookup:
                self._lookup[v] = len(self.classes_)
                self.classes_.append(v)
        return self

    def transform(self, values: list) -> np.ndarray:
        try:
            return np.array([self._lookup[v] for v in values], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unseen label: {exc.args[0]!r}") from exc

    def fit_transform(self, values: list) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, codes: np.ndarray) -> list:
        return [self.classes_[int(c)] for c in codes]


class SimpleImputer(BaseEstimator):
    """Fill NaNs with a per-column statistic (``mean``, ``median``, ``constant``)."""

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0) -> None:
        if strategy not in ("mean", "median", "constant"):
            raise ValueError(f"unknown imputation strategy: {strategy!r}")
        self.strategy = strategy
        self.fill_value = fill_value
        self.statistics_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "SimpleImputer":
        import warnings

        X = np.asarray(X, dtype=np.float64)
        if self.strategy == "mean":
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)  # all-NaN columns
                stats = np.nanmean(X, axis=0)
        elif self.strategy == "median":
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                stats = np.nanmedian(X, axis=0)
        else:
            stats = np.full(X.shape[1], float(self.fill_value))
        # All-NaN columns fall back to the constant fill value.
        stats = np.where(np.isnan(stats), float(self.fill_value), stats)
        self.statistics_ = stats
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.statistics_ is None:
            raise RuntimeError("SimpleImputer is not fitted")
        X = np.asarray(X, dtype=np.float64).copy()
        for j in range(X.shape[1]):
            mask = np.isnan(X[:, j])
            if mask.any():
                X[mask, j] = self.statistics_[j]
        return X

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
