"""Named factory for the paper's five downstream models.

Section 4.1: "Linear Regression (LR), GaussianNB (NB), Random Forest (RF),
and Extra Tree (ET) ... Additionally, we incorporated a deep neural network
(DNN) ... two hidden layers, each consisting of 100 units and employing the
ReLU activation function.  For all models, we utilized default parameter
settings."

The defaults below are this substrate's defaults, scaled so a pure-Python
forest remains tractable (see DESIGN.md §2); relative model behaviour is
what the reproduction relies on, not absolute fit quality.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.ml.base import BaseEstimator
from repro.ml.forest import ExtraTreesClassifier, RandomForestClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.neural import MLPClassifier

__all__ = ["MODEL_NAMES", "make_model"]

_FACTORIES: dict[str, Callable[[int], BaseEstimator]] = {
    "lr": lambda seed: LogisticRegression(),
    "nb": lambda seed: GaussianNB(),
    "rf": lambda seed: RandomForestClassifier(n_estimators=25, max_depth=10, seed=seed),
    "et": lambda seed: ExtraTreesClassifier(n_estimators=25, max_depth=10, seed=seed),
    "dnn": lambda seed: MLPClassifier(hidden=(100, 100), max_epochs=40, seed=seed),
    # Not part of the paper's five-model panel, but used by its KNN
    # normalisation argument (Section 1) and the corresponding bench.
    "knn": lambda seed: KNeighborsClassifier(n_neighbors=5),
}

_ALIASES = {
    "logistic_regression": "lr",
    "linear_regression": "lr",
    "gaussian_nb": "nb",
    "naive_bayes": "nb",
    "random_forest": "rf",
    "extra_trees": "et",
    "extra_tree": "et",
    "mlp": "dnn",
    "neural_network": "dnn",
    "k_nearest_neighbors": "knn",
    "knearest": "knn",
}

MODEL_NAMES: tuple[str, ...] = ("lr", "nb", "rf", "et", "dnn")
"""The five downstream models of the paper's evaluation, in table order."""


def make_model(name: str, seed: int = 0) -> BaseEstimator:
    """Instantiate a fresh downstream model by name.

    Accepts the short names in :data:`MODEL_NAMES` plus common aliases
    (``random_forest``, ``mlp``…).
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _FACTORIES:
        raise ValueError(f"unknown model {name!r}; expected one of {MODEL_NAMES}")
    return _FACTORIES[key](seed)
