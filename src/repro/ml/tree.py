"""CART decision tree with Gini impurity, feature importances, and the
randomised-threshold mode used by Extra Trees.

Split search is vectorised per node: one sort per candidate feature, prefix
sums of class counts, and a closed-form Gini evaluation over every distinct
split point.  Trees are stored as flat arrays for fast vectorised
prediction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ml.base import BaseEstimator

__all__ = ["DecisionTreeClassifier"]

_LEAF = -1


def _resolve_max_features(max_features: int | float | str | None, n_features: int) -> int:
    """Translate a scikit-learn-style ``max_features`` spec into a count."""
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(math.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(math.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, float):
        return max(1, int(max_features * n_features))
    return max(1, min(int(max_features), n_features))


class DecisionTreeClassifier(BaseEstimator):
    """Binary-classification CART tree.

    Parameters mirror scikit-learn: ``max_depth``, ``min_samples_split``,
    ``min_samples_leaf``, ``max_features`` (``None``/``'sqrt'``/``'log2'``/
    int/float).  ``splitter='random'`` draws one uniform threshold per
    candidate feature (the Extra-Trees node splitter).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        splitter: str = "best",
        seed: int = 0,
    ) -> None:
        if splitter not in ("best", "random"):
            raise ValueError(f"unknown splitter: {splitter!r}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self.seed = seed
        # Flat tree arrays, filled by fit().
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []  # positive-class probability at node
        self.feature_importances_: np.ndarray | None = None
        self.n_features_: int = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(np.int64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        if not np.isfinite(X).all():
            raise ValueError("X contains NaN or infinity; impute/sanitise first")
        self.n_features_ = X.shape[1]
        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        self._importance_acc = np.zeros(self.n_features_)
        rng = np.random.default_rng(self.seed)
        self._build(X, y, np.arange(len(y)), depth=0, rng=rng)
        total = self._importance_acc.sum()
        self.feature_importances_ = (
            self._importance_acc / total if total > 0 else np.zeros(self.n_features_)
        )
        del self._importance_acc
        return self

    def _new_node(self, pos_fraction: float) -> int:
        node_id = len(self._feature)
        self._feature.append(_LEAF)
        self._threshold.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._value.append(pos_fraction)
        return node_id

    def _build(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int, rng
    ) -> int:
        n_node = len(idx)
        n_pos = int(y[idx].sum())
        node_id = self._new_node(n_pos / n_node)
        is_pure = n_pos == 0 or n_pos == n_node
        too_deep = self.max_depth is not None and depth >= self.max_depth
        too_small = n_node < self.min_samples_split
        if is_pure or too_deep or too_small:
            return node_id
        split = self._find_split(X, y, idx, rng)
        if split is None:
            return node_id
        feature, threshold, gain, left_mask = split
        self._importance_acc[feature] += gain * n_node
        left_idx = idx[left_mask]
        right_idx = idx[~left_mask]
        self._feature[node_id] = feature
        self._threshold[node_id] = threshold
        self._left[node_id] = self._build(X, y, left_idx, depth + 1, rng)
        self._right[node_id] = self._build(X, y, right_idx, depth + 1, rng)
        return node_id

    def _candidate_features(self, rng) -> np.ndarray:
        k = _resolve_max_features(self.max_features, self.n_features_)
        if k >= self.n_features_:
            return np.arange(self.n_features_)
        return rng.choice(self.n_features_, size=k, replace=False)

    def _find_split(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, rng
    ) -> tuple[int, float, float, np.ndarray] | None:
        """Return ``(feature, threshold, impurity_gain, left_mask)`` or None."""
        n_node = len(idx)
        y_node = y[idx]
        total_pos = int(y_node.sum())
        parent_gini = 1.0 - (total_pos / n_node) ** 2 - ((n_node - total_pos) / n_node) ** 2
        msl = self.min_samples_leaf
        best: tuple[float, int, float] | None = None  # (weighted_gini, feature, threshold)
        for feature in self._candidate_features(rng):
            values = X[idx, feature]
            if self.splitter == "random":
                lo, hi = values.min(), values.max()
                if lo == hi:
                    continue
                threshold = float(rng.uniform(lo, hi))
                left = values <= threshold
                nl = int(left.sum())
                nr = n_node - nl
                if nl < msl or nr < msl:
                    continue
                pl = int(y_node[left].sum())
                pr = total_pos - pl
                gini_l = 1.0 - (pl / nl) ** 2 - ((nl - pl) / nl) ** 2
                gini_r = 1.0 - (pr / nr) ** 2 - ((nr - pr) / nr) ** 2
                weighted = (nl * gini_l + nr * gini_r) / n_node
                if best is None or weighted < best[0]:
                    best = (weighted, int(feature), threshold)
                continue
            order = np.argsort(values, kind="quicksort")
            v_sorted = values[order]
            if v_sorted[0] == v_sorted[-1]:
                continue
            y_sorted = y_node[order]
            pos_prefix = np.cumsum(y_sorted)
            # Split after position i-1 (left gets the first i rows) wherever
            # the feature value changes.
            change = np.flatnonzero(v_sorted[1:] != v_sorted[:-1]) + 1
            if msl > 1:
                change = change[(change >= msl) & (change <= n_node - msl)]
            if len(change) == 0:
                continue
            nl = change.astype(np.float64)
            nr = n_node - nl
            pl = pos_prefix[change - 1].astype(np.float64)
            pr = total_pos - pl
            gini_l = 1.0 - (pl / nl) ** 2 - ((nl - pl) / nl) ** 2
            gini_r = 1.0 - (pr / nr) ** 2 - ((nr - pr) / nr) ** 2
            weighted = (nl * gini_l + nr * gini_r) / n_node
            pick = int(np.argmin(weighted))
            if best is None or weighted[pick] < best[0]:
                split_at = change[pick]
                threshold = 0.5 * (v_sorted[split_at - 1] + v_sorted[split_at])
                best = (float(weighted[pick]), int(feature), float(threshold))
        if best is None:
            return None
        weighted_gini, feature, threshold = best
        gain = parent_gini - weighted_gini
        if gain <= 1e-12:
            return None
        left_mask = X[idx, feature] <= threshold
        # Guard against degenerate masks from float equality at the boundary.
        if left_mask.all() or not left_mask.any():
            return None
        return feature, threshold, gain, left_mask

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._feature:
            raise RuntimeError("DecisionTreeClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        value = np.asarray(self._value)
        node = np.zeros(len(X), dtype=np.int64)
        active = feature[node] != _LEAF
        while active.any():
            rows = np.flatnonzero(active)
            current = node[rows]
            goes_left = X[rows, feature[current]] <= threshold[current]
            node[rows] = np.where(goes_left, left[current], right[current])
            active[rows] = feature[node[rows]] != _LEAF
        p1 = value[node]
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)

    @property
    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""
        return len(self._feature)

    @property
    def depth(self) -> int:
        """Maximum root-to-leaf depth of the fitted tree."""
        if not self._feature:
            return 0

        def walk(node: int) -> int:
            if self._feature[node] == _LEAF:
                return 0
            return 1 + max(walk(self._left[node]), walk(self._right[node]))

        return walk(0)
