"""Serving layer: compiled FeaturePlans replayed without FM, sandbox, or scheduler.

``fit_transform`` is the search; this package is what production traffic
touches.  A :class:`FeaturePlan` freezes a fitted run's accepted features
into a versioned JSON artifact of pure-numpy expressions
(:mod:`repro.dataframe.expr`); :class:`PlanRegistry` stores and version-pins
plans on disk; :class:`FeatureServer` is the batched, thread-safe
``transform(rows)`` entry point.
"""

from repro.serve.compiler import compile_plan, frames_identical, series_identical
from repro.serve.plan import (
    PLAN_SCHEMA_VERSION,
    FeaturePlan,
    FeatureSpec,
    PlanError,
    PlanNotFoundError,
    PlanSchemaError,
    PlanVersionError,
    column_kind,
    schema_fingerprint,
)
from repro.serve.registry import PlanRegistry
from repro.serve.resilience import (
    FAILURE_POLICIES,
    ApplyReport,
    BatchValidationError,
    BreakerBoard,
    CircuitBreaker,
    FeatureReport,
    QuarantineReport,
    SandboxWatchdog,
    ServerStats,
    ValidationLimits,
    WatchdogTimeout,
    WatchdogViolation,
    validate_rows,
)
from repro.serve.server import FeatureServer, ServeReport

__all__ = [
    "FAILURE_POLICIES",
    "PLAN_SCHEMA_VERSION",
    "ApplyReport",
    "BatchValidationError",
    "BreakerBoard",
    "CircuitBreaker",
    "FeaturePlan",
    "FeatureReport",
    "FeatureServer",
    "FeatureSpec",
    "PlanError",
    "PlanNotFoundError",
    "PlanRegistry",
    "PlanSchemaError",
    "PlanVersionError",
    "QuarantineReport",
    "SandboxWatchdog",
    "ServeReport",
    "ServerStats",
    "ValidationLimits",
    "WatchdogTimeout",
    "WatchdogViolation",
    "column_kind",
    "compile_plan",
    "frames_identical",
    "schema_fingerprint",
    "series_identical",
    "validate_rows",
]
