"""Compile a fitted run's accepted features into a :class:`FeaturePlan`.

Strategy: **rebuild and verify**.  Starting from the *original* input
frame (the fitted result drops some originals, so its frame cannot seed
the rebuild), each accepted feature is compiled to an expression
template, frozen against the rebuild state at its install point (fit-time
statistics — means, quantile edges, group tables, dummy categories — are
captured as constants), evaluated, and compared **bitwise** against the
fitted frame's columns.  Only a feature whose replay is value-, dtype-,
and missingness-identical ships as ``compiled``; a mismatch or an
unrepresentable form falls back to carrying the sandbox source (itself
verified the same way), and anything else is recorded as ``omitted`` with
a reason.  The fitted outputs are installed into the rebuild either way,
so later features always freeze against the exact state fit saw.

Templates come from the same code generator that emitted the sources
(:func:`repro.fm.codegen.generate_transform_expr`); the three forms whose
sources embed run-specific literals (knowledge mappings, bucket edges,
group specs) are lifted from the accepted source via ``ast`` instead, so
the plan reproduces what actually ran, not what would be regenerated.
"""

from __future__ import annotations

import ast
import json
from typing import Any

import numpy as np

from repro.dataframe import kernels as _kernels
from repro.dataframe.expr import (
    ExprError,
    evaluate_feature,
    expr_columns,
    freeze_expr,
)
from repro.dataframe.frame import DataFrame
from repro.dataframe.series import Series
from repro.fm.codegen import generate_transform_expr, parse_op_tag
from repro.fm.knowledge import default_knowledge
from repro.serve.plan import FeaturePlan, FeatureSpec, column_kind

__all__ = ["compile_plan", "frames_identical", "series_identical"]

#: Marker the pipeline stamps on features materialised by per-row FM
#: completion rather than generated code.
_ROW_LEVEL_SENTINEL = "<row-level FM completion>"

_JSON_SCALARS = (str, int, float, bool)


# ----------------------------------------------------------------------
# Bitwise comparison
# ----------------------------------------------------------------------
def series_identical(a: Series, b: Series) -> bool:
    """True when two Series match in dtype, missingness, and every value."""
    if len(a) != len(b) or a.dtype != b.dtype:
        return False
    va, vb = a.values, b.values
    if va.dtype.kind == "f":
        return bool(np.array_equal(va, vb, equal_nan=True))
    if va.dtype == object:
        for x, y in zip(va, vb):
            mx = _kernels.is_missing_scalar(x)
            if mx != _kernels.is_missing_scalar(y):
                return False
            if mx:
                continue
            if type(x) is not type(y) or x != y:
                return False
        return True
    return bool(np.array_equal(va, vb))


def frames_identical(a: DataFrame, b: DataFrame) -> tuple[bool, str]:
    """Column-for-column bitwise identity; returns ``(ok, first difference)``."""
    if a.columns != b.columns:
        return False, f"column sets differ: {a.columns} vs {b.columns}"
    for name in a.columns:
        if not series_identical(a[name], b[name]):
            return False, f"column {name!r} differs (dtype/values/missingness)"
    return True, ""


# ----------------------------------------------------------------------
# AST lifting for literal-bearing sources
# ----------------------------------------------------------------------
def _literal(node: ast.AST) -> Any:
    return ast.literal_eval(node)


def _lift_knowledge_map(source: str) -> dict | None:
    """Recover ``{lookup dict, mapped column, fillna default}`` from source.

    The knowledge mapping was built from FM-time column values the fitted
    result does not retain, so regeneration could diverge; the accepted
    source is the ground truth.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    lookup = column = default = None
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "lookup"
            and isinstance(node.value, ast.Dict)
        ):
            try:
                lookup = _literal(node.value)
            except ValueError:
                return None
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "fillna"
            and len(node.args) == 1
        ):
            try:
                default = _literal(node.args[0])
            except ValueError:
                return None
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "df"
            and isinstance(node.slice, ast.Constant)
        ):
            column = node.slice.value
    if lookup is None or column is None or default is None:
        return None
    return {
        "op": "fillna",
        "arg": {
            "op": "dict_map",
            "column": column,
            "keys": list(lookup),
            "values": list(lookup.values()),
        },
        "value": default,
    }


def _lift_bucketization(source: str) -> dict | None:
    """Recover the cut edges (or the qcut fallback) the source embeds."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    edges = column = None
    qcut = None
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "edges"
        ):
            try:
                edges = _literal(node.value)
            except ValueError:
                return None
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "pd"
            and node.func.attr == "qcut"
        ):
            try:
                q = _literal(node.args[1])
                labels = next(
                    (_literal(kw.value) for kw in node.keywords if kw.arg == "labels"),
                    None,
                )
            except (ValueError, IndexError):
                return None
            qcut = (q, labels)
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "df"
            and isinstance(node.slice, ast.Constant)
        ):
            column = node.slice.value
    if column is None:
        return None
    if edges is not None:
        return {
            "op": "cut",
            "column": column,
            "edges": [float(e) for e in edges],
            "labels": list(range(len(edges) - 1)),
            "right": True,
        }
    if qcut is not None:
        q, labels = qcut
        return {"op": "fit_qcut", "column": column, "q": q, "labels": labels}
    return None


def _lift_groupby(source: str) -> dict | None:
    """Recover ``(group keys, agg column, function)`` from a transform call."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "transform"
            and len(node.args) == 1
        ):
            continue
        sub = node.func.value  # df.groupby(keys)[agg_col]
        if not (isinstance(sub, ast.Subscript) and isinstance(sub.value, ast.Call)):
            continue
        groupby_call = sub.value
        if not (
            isinstance(groupby_call.func, ast.Attribute)
            and groupby_call.func.attr == "groupby"
            and len(groupby_call.args) == 1
        ):
            continue
        try:
            keys = _literal(groupby_call.args[0])
            agg_col = _literal(sub.slice)
            func = _literal(node.args[0])
        except ValueError:
            continue
        if isinstance(keys, str):
            keys = [keys]
        return {
            "op": "fit_group_table",
            "keys": list(keys),
            "agg_col": agg_col,
            "agg": func,
        }
    return None


# ----------------------------------------------------------------------
# Per-feature compilation
# ----------------------------------------------------------------------
def _row_level_template(feature, rebuild: DataFrame, expected: dict[str, Series]):
    """Freeze a small row-level FM completion as an exact input→output map."""
    if len(feature.input_columns) != 1 or len(feature.output_columns) != 1:
        raise ExprError("row-level completion reads multiple columns")
    column = feature.input_columns[0]
    if column not in rebuild:
        raise ExprError(f"row-level input column {column!r} unavailable at serve time")
    outputs = expected[feature.output_columns[0]].tolist()
    mapping: dict = {}
    for key, value in zip(rebuild[column].tolist(), outputs):
        if _kernels.is_missing_scalar(key):
            if value is not None:
                raise ExprError("completion is not missing-preserving")
            continue
        if not isinstance(key, _JSON_SCALARS):
            raise ExprError(f"completion key {key!r} is not a JSON scalar")
        if value is not None and not isinstance(value, _JSON_SCALARS):
            raise ExprError(f"completion value {value!r} is not a JSON scalar")
        if key in mapping:
            if mapping[key] != value or type(mapping[key]) is not type(value):
                raise ExprError("completion is not a function of the input column")
        else:
            mapping[key] = value
    return {
        "op": "dict_map",
        "column": column,
        "keys": list(mapping),
        "values": list(mapping.values()),
    }


def _template_for(feature, rebuild: DataFrame, expected, knowledge) -> dict | None:
    if feature.source_code == _ROW_LEVEL_SENTINEL:
        return _row_level_template(feature, rebuild, expected)
    op, _ = parse_op_tag(feature.description)
    if op == "knowledge_map":
        return _lift_knowledge_map(feature.source_code)
    if op == "bucketization":
        return _lift_bucketization(feature.source_code)
    if op == "groupby":
        return _lift_groupby(feature.source_code)
    return generate_transform_expr(
        feature.name, list(feature.input_columns), feature.description, knowledge
    )


def _evaluate_outputs(
    template: dict, rebuild: DataFrame, output_columns: list[str]
) -> tuple[dict, dict[str, Series]]:
    """Freeze + evaluate a template; returns ``(frozen expr, outputs)``."""
    missing = [c for c in expr_columns(template) if c not in rebuild]
    if missing:
        raise ExprError(f"expression reads columns absent at serve time: {missing}")
    frozen = freeze_expr(template, rebuild)
    result = evaluate_feature(frozen, rebuild)
    if isinstance(result, Series):
        if len(output_columns) != 1:
            raise ExprError("expression yields one column, feature has several")
        return frozen, {output_columns[0]: result}
    out = {}
    for name in output_columns:
        if name not in result:
            raise ExprError(f"expression did not produce output column {name!r}")
        out[name] = result[name]
    return frozen, out


def _verify_sandbox(feature, rebuild: DataFrame) -> dict[str, Series] | None:
    """Replay the original source on the rebuild; None when it fails."""
    from repro.core.sandbox import SandboxViolation, TransformError, run_transform

    try:
        result = run_transform(feature.source_code, rebuild)
    except (TransformError, SandboxViolation):
        return None
    if isinstance(result, Series):
        if len(feature.output_columns) != 1:
            return None
        return {feature.output_columns[0]: result}
    out = {}
    for name in feature.output_columns:
        if name not in result:
            return None
        out[name] = result[name]
    return out


def _family_name(family: Any) -> str:
    return getattr(family, "value", None) or str(family)


def compile_plan(
    result,
    frame: DataFrame,
    target: str,
    knowledge=None,
    metadata: dict | None = None,
) -> FeaturePlan:
    """Compile a fitted *result* (over original *frame*) into a FeaturePlan.

    *frame* must be the frame ``fit_transform`` was called with — the
    rebuild starts from it, so the compiler needs the original columns the
    fitted result may have dropped.
    """
    knowledge = knowledge if knowledge is not None else default_knowledge()
    input_columns = frame.columns
    input_schema = [
        (name, column_kind(frame[name])) for name in input_columns if name != target
    ]
    rebuild = frame.column_view(input_columns)
    specs: list[FeatureSpec] = []
    for feature in result.new_features.values():
        expected: dict[str, Series] = {}
        reason = ""
        for name in feature.output_columns:
            if name not in result.frame:
                reason = f"output column {name!r} missing from fitted frame"
                break
            expected[name] = result.frame[name]
        spec = None
        if not reason:
            spec = _compile_feature(feature, rebuild, expected, knowledge)
        else:
            spec = _spec(feature, "omitted", reason=reason)
        specs.append(spec)
        # Install the *fitted* outputs regardless of compile status so
        # later features freeze against the exact state fit saw.
        for name, series in expected.items():
            rebuild[name] = series
    plan = FeaturePlan(
        input_columns=input_columns,
        input_schema=input_schema,
        target=target,
        features=specs,
        drop_columns=list(result.dropped),
        metadata=dict(metadata or {}),
    )
    counts = plan.counts()
    plan.metadata.setdefault("compile", {}).update(
        {
            "n_features": len(specs),
            **counts,
            "omitted_features": [
                {"name": s.name, "reason": s.reason}
                for s in specs
                if s.status == "omitted"
            ],
        }
    )
    return plan


def _spec(
    feature, status: str, expr=None, fallback_source=None, reason="", expected=None
) -> FeatureSpec:
    # Freeze the fitted outputs' schema kinds alongside the recipe so the
    # serve-path watchdog can sanity-check what a fallback returns.
    kinds = None
    if expected is not None and all(n in expected for n in feature.output_columns):
        kinds = [column_kind(expected[n]) for n in feature.output_columns]
    return FeatureSpec(
        name=feature.name,
        family=_family_name(feature.family),
        description=feature.description,
        input_columns=list(feature.input_columns),
        output_columns=list(feature.output_columns),
        status=status,
        expr=expr,
        fallback_source=fallback_source,
        reason=reason,
        output_kinds=kinds,
    )


def _compile_feature(feature, rebuild, expected, knowledge) -> FeatureSpec:
    reason = ""
    try:
        template = _template_for(feature, rebuild, expected, knowledge)
    except ExprError as exc:
        template, reason = None, str(exc)
    if template is not None:
        try:
            frozen, outputs = _evaluate_outputs(
                template, rebuild, list(feature.output_columns)
            )
            if all(
                series_identical(outputs[name], expected[name]) for name in expected
            ):
                json.dumps(frozen)  # plans must round-trip; reject exotic scalars
                return _spec(feature, "compiled", expr=frozen, expected=expected)
            reason = "compiled replay not bit-identical to fitted output"
        except ExprError as exc:
            reason = str(exc)
        except (TypeError, ValueError) as exc:
            reason = f"expression not serializable: {exc}"
    elif not reason:
        reason = "no expression template for this form"
    # Fall back to the sandbox source — but only if replaying it on the
    # rebuild reproduces the fitted output (and it is real source at all).
    if feature.source_code and feature.source_code != _ROW_LEVEL_SENTINEL:
        outputs = _verify_sandbox(feature, rebuild)
        if outputs is not None and all(
            series_identical(outputs[name], expected[name]) for name in expected
        ):
            return _spec(
                feature,
                "fallback",
                fallback_source=feature.source_code,
                reason=reason,
                expected=expected,
            )
        reason = f"{reason}; sandbox replay also diverged".lstrip("; ")
    return _spec(feature, "omitted", reason=reason)
