"""The FeaturePlan artifact: a fitted run's features as replayable data.

A plan records, per accepted feature, its column provenance and either a
frozen expression tree (:mod:`repro.dataframe.expr` — the pure-numpy hot
path) or, for the rare form the IR cannot represent, the original sandbox
source as an explicit fallback.  Plans carry an input-schema fingerprint
and a schema version: loading validates both, so a plan can never be
silently replayed against the wrong table shape or by a reader that does
not understand its encoding.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.dataframe.expr import ExprError, evaluate_feature, validate_expr
from repro.dataframe.frame import DataFrame
from repro.dataframe.series import Series

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "FeaturePlan",
    "FeatureSpec",
    "PlanError",
    "PlanNotFoundError",
    "PlanSchemaError",
    "PlanVersionError",
    "column_kind",
    "schema_fingerprint",
]

#: Current plan encoding version.  Bump when the serialized shape changes;
#: readers migrate older versions explicitly and refuse newer ones.
PLAN_SCHEMA_VERSION = 2


class PlanError(Exception):
    """Base class for plan compilation/serialization/replay failures."""


class PlanVersionError(PlanError):
    """The plan's schema version is newer than this reader understands."""


class PlanSchemaError(PlanError):
    """The plan payload, or the frame it is applied to, has the wrong shape."""


class PlanNotFoundError(PlanError):
    """The registry has no plan under the requested name/version."""


def _pipeline_inflight(
    pipeline_workers: int | None, pipeline_prefetch: int | None
) -> int:
    """How many shards the pipelined executor holds in flight at once.

    Sequential execution (``pipeline_workers=None``) holds exactly one;
    the pipeline admits ``workers + prefetch`` (prefetch defaults to one
    per worker), which memory budgets divide by so the RSS contract is
    unchanged by overlap.
    """
    if pipeline_workers is None:
        return 1
    if pipeline_workers < 1:
        raise PlanError(
            f"pipeline_workers must be >= 1, got {pipeline_workers}"
        )
    prefetch = pipeline_prefetch if pipeline_prefetch is not None else pipeline_workers
    if prefetch < 1:
        raise PlanError(
            f"pipeline_prefetch must be >= 1, got {pipeline_prefetch}"
        )
    return pipeline_workers + prefetch


def column_kind(series: Series) -> str:
    """The coarse schema kind a plan records per input column.

    ``numeric`` covers int and float (a serve batch may legitimately
    arrive with ``Age`` as float where fit saw int); ``bool`` and
    ``object`` stay distinct because the replay kernels branch on them.
    """
    kind = series.dtype.kind
    if kind in "if":
        return "numeric"
    if kind == "b":
        return "bool"
    return "object"


def schema_fingerprint(input_schema: list[tuple[str, str]]) -> str:
    """Stable digest of the ordered ``(column, kind)`` input contract."""
    payload = "|".join(f"{name}={kind}" for name, kind in input_schema)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class FeatureSpec:
    """One accepted feature's replay recipe.

    ``status`` is ``"compiled"`` (frozen expression), ``"fallback"``
    (sandbox source carried verbatim), or ``"omitted"`` (not replayable;
    ``reason`` says why — the plan records it so the gap is loud).
    """

    name: str
    family: str
    description: str
    input_columns: list[str]
    output_columns: list[str]
    status: str
    expr: dict | None = None
    fallback_source: str | None = None
    reason: str = ""
    #: Optional per-output-column schema kinds (parallel to
    #: ``output_columns``), recorded at compile time so the serve-path
    #: watchdog can sanity-check fallback output dtypes.  Optional and
    #: additive: old plans lack it (readers use ``.get``), so no schema
    #: version bump — absent kinds just skip the dtype check.
    output_kinds: list[str] | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "family": self.family,
            "description": self.description,
            "input_columns": list(self.input_columns),
            "output_columns": list(self.output_columns),
            "status": self.status,
            "expr": self.expr,
            "fallback_source": self.fallback_source,
            "reason": self.reason,
            "output_kinds": list(self.output_kinds) if self.output_kinds else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FeatureSpec":
        try:
            spec = cls(
                name=data["name"],
                family=data.get("family", ""),
                description=data.get("description", ""),
                input_columns=list(data["input_columns"]),
                output_columns=list(data["output_columns"]),
                status=data["status"],
                expr=data.get("expr"),
                fallback_source=data.get("fallback_source"),
                reason=data.get("reason", ""),
                output_kinds=(
                    list(data["output_kinds"]) if data.get("output_kinds") else None
                ),
            )
        except KeyError as exc:
            raise PlanSchemaError(f"feature spec is missing field {exc}") from exc
        if spec.status == "compiled":
            if spec.expr is None:
                raise PlanSchemaError(f"compiled feature {spec.name!r} has no expression")
            try:
                validate_expr(spec.expr)
            except ExprError as exc:
                raise PlanSchemaError(f"feature {spec.name!r}: {exc}") from exc
        elif spec.status == "fallback":
            if not spec.fallback_source:
                raise PlanSchemaError(f"fallback feature {spec.name!r} has no source")
        elif spec.status != "omitted":
            raise PlanSchemaError(
                f"feature {spec.name!r} has unknown status {spec.status!r}"
            )
        if not spec.output_columns and spec.status != "omitted":
            raise PlanSchemaError(f"feature {spec.name!r} declares no output columns")
        return spec


@dataclass
class FeaturePlan:
    """A versioned, serializable replay program for a fitted run."""

    input_columns: list[str]
    input_schema: list[tuple[str, str]]
    target: str
    features: list[FeatureSpec]
    drop_columns: list[str] = field(default_factory=list)
    schema_version: int = PLAN_SCHEMA_VERSION
    fingerprint: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.input_schema = [(name, kind) for name, kind in self.input_schema]
        if not self.fingerprint:
            self.fingerprint = schema_fingerprint(self.input_schema)

    # ------------------------------------------------------------------
    # Validation and replay
    # ------------------------------------------------------------------
    def schema_problems(self, frame: DataFrame) -> list[tuple[str, str, str]]:
        """Every schema-contract violation in *frame* as
        ``(column, expected kind, problem)`` — empty when the frame
        conforms (the target column is optional at serve time)."""
        problems = []
        for name, kind in self.input_schema:
            if name not in frame:
                problems.append(
                    (name, kind, f"missing column {name!r} (expected kind {kind})")
                )
                continue
            actual = column_kind(frame[name])
            if actual != kind:
                problems.append(
                    (name, kind, f"column {name!r} has kind {actual}, plan expects {kind}")
                )
        return problems

    def validate_frame(self, frame: DataFrame) -> None:
        """Raise :class:`PlanSchemaError` unless *frame* matches the plan's
        input contract."""
        problems = self.schema_problems(frame)
        if problems:
            raise PlanSchemaError(
                f"frame does not match plan schema fingerprint "
                f"{self.fingerprint[:12]}…: "
                + "; ".join(text for _name, _kind, text in problems)
            )

    def apply(
        self,
        frame: DataFrame,
        *,
        failure_policy: str = "strict",
        breakers=None,
        watchdog=None,
        evaluator=None,
    ) -> DataFrame:
        """Replay the plan against *frame* and return the featured frame.

        Pure data-plane work: input columns are shared (zero copy), each
        feature evaluates through the kernel layer (or its recorded
        sandbox fallback), and the fitted run's dropped originals are
        removed at the end — reproducing ``fit_transform``'s output frame
        column-for-column.  The input frame itself is never mutated.

        ``failure_policy="strict"`` (the default) fails the whole batch
        on the first misbehaving feature — the historical contract, and
        with no resilience extras it runs the original zero-overhead
        loop.  ``"degrade"`` isolates failures per feature (NaN-filled
        columns); pass *breakers* (a
        :class:`~repro.serve.resilience.BreakerBoard`), *watchdog* (a
        :class:`~repro.serve.resilience.SandboxWatchdog`), or the chaos
        *evaluator* seam to layer in the rest — see
        :meth:`apply_with_report` for the reporting variant.
        """
        if failure_policy == "strict" and breakers is None and watchdog is None and evaluator is None:
            self.validate_frame(frame)
            present = [c for c in self.input_columns if c in frame]
            working = frame.column_view(present)
            for spec in self.features:
                if spec.status == "omitted":
                    continue
                if spec.status == "compiled":
                    out = evaluate_feature(spec.expr, working)
                else:
                    out = self._run_fallback(spec, working)
                self._install(spec, out, working)
            to_drop = [c for c in self.drop_columns if c in working]
            if to_drop:
                working.drop(columns=to_drop, inplace=True)
            return working
        out, _report = self.apply_with_report(
            frame,
            failure_policy=failure_policy,
            breakers=breakers,
            watchdog=watchdog,
            evaluator=evaluator,
        )
        return out

    def apply_with_report(
        self,
        frame: DataFrame,
        *,
        failure_policy: str = "degrade",
        breakers=None,
        watchdog=None,
        evaluator=None,
    ):
        """Resilient replay: ``(featured frame, ApplyReport)``.

        The per-feature fault-isolation engine lives in
        :mod:`repro.serve.resilience` (imported lazily here to keep the
        strict hot path free of it); healthy features evaluate through
        the identical calls :meth:`apply` makes, so their outputs are
        bit-identical to a fault-free strict run.
        """
        from repro.serve.resilience import apply_with_report as _apply

        return _apply(
            self,
            frame,
            failure_policy=failure_policy,
            breakers=breakers,
            watchdog=watchdog,
            evaluator=evaluator,
        )

    # ------------------------------------------------------------------
    # Out-of-core streaming
    # ------------------------------------------------------------------
    def apply_stream(
        self,
        shards,
        *,
        memory_budget_mb: float | None = None,
        failure_policy: str = "strict",
        breakers=None,
        watchdog=None,
        evaluator=None,
        pipeline_workers: int | None = None,
        pipeline_prefetch: int | None = None,
        pipeline_stats=None,
    ):
        """Replay the plan shard-by-shard: a generator of featured frames.

        *shards* is any iterable of :class:`~repro.dataframe.io.Shard` or
        plain DataFrames (stream order = logical row order).  Each shard
        replays through the identical :meth:`apply` call the in-memory
        path makes — every frozen op is row-local given its fitted
        statistics, so concatenating the yielded frames
        (:func:`~repro.dataframe.io.concat_shards`) is bit-identical to
        ``apply`` over the whole table.  Nothing beyond the current shard
        (plus its featured output) is ever held.

        ``memory_budget_mb`` caps the working set: incoming shards are
        re-chunked so that (estimated input row bytes + output row bytes)
        × a working-set factor stays under the budget, whatever chunk
        size the producer chose.  The bound is enforced empirically by
        ``benchmarks/bench_sharded.py`` against process peak RSS.

        ``pipeline_workers`` opts into the overlapped executor
        (:func:`~repro.core.shard_pipeline.pipeline_map`): shard
        production (decode/re-chunk), per-shard replay, and the ordered
        hand-off to the consumer run as concurrent stages with
        *pipeline_workers* transform threads and a bounded prefetch of
        ``pipeline_prefetch`` shards (default: one per worker).  A
        re-sequencing buffer keeps yield order — and therefore output
        bytes — identical to the sequential path, and the memory budget
        is split across the ``workers + prefetch`` in-flight shards so
        the RSS contract holds unchanged.  ``None`` (the default) is the
        original strictly sequential loop, byte-for-byte.  Pass a
        :class:`~repro.core.shard_pipeline.PipelineStats` as
        *pipeline_stats* to collect per-stage wall-clock/queue-depth
        numbers.

        Fault isolation composes per shard: under
        ``failure_policy="degrade"`` a failing feature NaN-fills only the
        shard it failed on, and a shared *breakers* board / *watchdog*
        accumulates across shards exactly as it does across batches
        (both are thread-safe, so this holds under pipeline workers too;
        exact breaker trip *timelines* across shards follow worker
        timing when pipelined).  Sandbox-fallback features (statuses
        other than ``compiled``) recompute their batch statistics per
        shard — equivalent to serving the same rows as smaller batches,
        and flagged in the plan's ``counts()``; fully compiled plans
        (every eval dataset) have no such features.
        """
        from repro.dataframe.io import Shard, iter_frame_shards

        inflight = _pipeline_inflight(pipeline_workers, pipeline_prefetch)
        shard_budget_mb = (
            memory_budget_mb / inflight if memory_budget_mb is not None else None
        )

        def produce():
            for piece in shards:
                frame = piece.frame if isinstance(piece, Shard) else piece
                if len(frame) == 0:
                    continue
                if shard_budget_mb is None:
                    yield frame
                else:
                    max_rows = self.budget_rows(frame, shard_budget_mb)
                    yield from (s.frame for s in iter_frame_shards(frame, max_rows))

        def replay(sub):
            return self.apply(
                sub,
                failure_policy=failure_policy,
                breakers=breakers,
                watchdog=watchdog,
                evaluator=evaluator,
            )

        if pipeline_workers is None:
            for sub in produce():
                yield replay(sub)
            return
        from repro.core.shard_pipeline import pipeline_map

        yield from pipeline_map(
            produce(),
            replay,
            workers=pipeline_workers,
            prefetch=pipeline_prefetch,
            stats=pipeline_stats,
        )

    #: Estimated per-row bytes for an object-dtype cell (pointer plus a
    #: typical small payload) and the multiplier covering transient
    #: working state (sort buffers, key encodes, per-op temporaries).
    _OBJECT_ROW_BYTES = 80
    _WORKING_FACTOR = 3.0

    def budget_rows(self, frame: DataFrame, memory_budget_mb: float) -> int:
        """Max rows per shard to keep the streaming working set under budget.

        Best-effort arithmetic, not an allocator: input columns count
        their dtype itemsize (object columns a flat per-row estimate),
        every plan output column adds its estimated width, and the total
        is scaled by a working-set factor for transients.
        """
        if memory_budget_mb <= 0:
            raise PlanError(
                f"memory_budget_mb must be positive, got {memory_budget_mb}"
            )
        row_bytes = 0
        for name in self.input_columns:
            if name in frame:
                series = frame[name]
                row_bytes += (
                    self._OBJECT_ROW_BYTES
                    if series.dtype == object
                    else series.dtype.itemsize
                )
        for spec in self.features:
            if spec.status == "omitted":
                continue
            kinds = spec.output_kinds or ["numeric"] * len(spec.output_columns)
            for kind in kinds:
                row_bytes += self._OBJECT_ROW_BYTES if kind == "object" else 8
        budget_bytes = memory_budget_mb * 1_000_000
        return max(int(budget_bytes / (max(row_bytes, 1) * self._WORKING_FACTOR)), 1)

    def refresh_group_tables(
        self,
        shards,
        *,
        pipeline_workers: int | None = None,
        pipeline_prefetch: int | None = None,
        pipeline_stats=None,
    ) -> int:
        """Second fit pass: re-aggregate every frozen ``group_lookup``
        table over a full shard stream.

        A plan fitted on a bounded sample carries group tables that only
        reflect the sampled rows; streaming the *whole* table through the
        two-pass segmented aggregation
        (:class:`~repro.dataframe.groupby.StreamingGroupAgg` — exact
        merges, sequential-fold sums, mean-from-sums) rebuilds each table
        from every row while holding one shard at a time.  All tables
        update in one pass over the stream.  Returns the number of tables
        refreshed (0 consumes nothing from *shards*).

        Group keys and aggregands may themselves be *generated* columns
        (a groupby over a bucketized or log-transformed feature): each
        shard replays the plan's compiled features in install order —
        stopping as soon as every needed column exists — before the
        aggregators see it, so derived inputs materialize exactly as
        they do at serve time.  A needed column only a sandbox-fallback
        feature produces raises :class:`PlanError` (fallback statistics
        are batch-relative and cannot stream).

        Mutates this plan in place: do it at fit/publish time, before the
        plan is saved or served (loaded plans are treated as immutable).

        ``pipeline_workers`` opts into the overlapped executor for the
        expensive part — replaying compiled features to materialize
        derived keys/aggregands runs on worker threads — while the
        aggregation fold itself stays a strict left fold in stream order
        on the caller's thread (the sequential-fold sum is defined by
        stream order, so the refreshed tables are bit-identical to the
        sequential pass).
        """
        from repro.dataframe.expr import refreeze_group_table
        from repro.dataframe.groupby import StreamingGroupAgg
        from repro.dataframe.io import Shard

        nodes = self._group_lookup_nodes()
        if not nodes:
            return 0
        aggs = []
        needed: set[str] = set()
        for node in nodes:
            agg_col = node.get("agg_col")
            if agg_col is None and node["agg"].strip().lower() != "size":
                raise PlanError(
                    "plan predates agg_col recording on group_lookup nodes; "
                    "re-export it before refreshing group tables"
                )
            aggs.append(StreamingGroupAgg(node["keys"], agg_col, node["agg"]))
            needed.update(node["keys"])
            if agg_col is not None:
                needed.add(agg_col)

        def produce():
            for piece in shards:
                frame = piece.frame if isinstance(piece, Shard) else piece
                if len(frame) == 0:
                    continue
                yield frame

        def materialize(frame: DataFrame) -> DataFrame:
            working = frame.column_view(frame.columns)
            for spec in self.features:
                if needed <= set(working.columns):
                    break
                if spec.status != "compiled" or not spec.expr:
                    continue
                out = evaluate_feature(spec.expr, working)
                self._install(spec, out, working)
            missing = needed - set(working.columns)
            if missing:
                raise PlanError(
                    f"group-table refresh needs columns {sorted(missing)} that "
                    "no compiled feature produces (sandbox-fallback outputs "
                    "cannot stream)"
                )
            return working

        if pipeline_workers is None:
            materialized = (materialize(frame) for frame in produce())
        else:
            from repro.core.shard_pipeline import pipeline_map

            materialized = pipeline_map(
                produce(),
                materialize,
                workers=pipeline_workers,
                prefetch=pipeline_prefetch,
                stats=pipeline_stats,
            )
        for working in materialized:
            for agg in aggs:
                agg.update(working)
        for node, agg in zip(nodes, aggs):
            labels, per = agg.result()
            refreeze_group_table(node, labels, per)
        return len(nodes)

    def _group_lookup_nodes(self) -> list[dict]:
        """Every frozen ``group_lookup`` node across compiled features."""
        from repro.dataframe.expr import _walk

        nodes = []
        for spec in self.features:
            if spec.status != "compiled" or not spec.expr:
                continue
            for node in _walk(spec.expr):
                if isinstance(node, dict) and node.get("op") == "group_lookup":
                    nodes.append(node)
        return nodes

    @staticmethod
    def _run_fallback(spec: FeatureSpec, working: DataFrame):
        from repro.core.sandbox import TransformError, run_transform

        try:
            return run_transform(spec.fallback_source, working)
        except TransformError as exc:
            raise PlanError(
                f"fallback source for feature {spec.name!r} failed: {exc}"
            ) from exc

    @staticmethod
    def _install(spec: FeatureSpec, out: Any, working: DataFrame) -> None:
        if isinstance(out, Series):
            if len(spec.output_columns) != 1:
                raise PlanError(
                    f"feature {spec.name!r} produced one column, plan expects "
                    f"{len(spec.output_columns)}"
                )
            working[spec.output_columns[0]] = out
            return
        for name in spec.output_columns:
            if name not in out:
                raise PlanError(
                    f"feature {spec.name!r} did not produce column {name!r}"
                )
            working[name] = out[name]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "fingerprint": self.fingerprint,
            "target": self.target,
            "input_columns": list(self.input_columns),
            "input_schema": [[name, kind] for name, kind in self.input_schema],
            "drop_columns": list(self.drop_columns),
            "metadata": self.metadata,
            "features": [spec.to_dict() for spec in self.features],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "FeaturePlan":
        if not isinstance(data, dict):
            raise PlanSchemaError("plan payload must be a JSON object")
        version = data.get("schema_version")
        if not isinstance(version, int):
            raise PlanSchemaError("plan has no integer schema_version field")
        if version > PLAN_SCHEMA_VERSION:
            raise PlanVersionError(
                f"plan schema_version {version} is newer than the supported "
                f"version {PLAN_SCHEMA_VERSION}; upgrade the reader"
            )
        while version < PLAN_SCHEMA_VERSION:
            migrate = _MIGRATIONS.get(version)
            if migrate is None:
                raise PlanVersionError(
                    f"no migration registered from plan schema_version {version}"
                )
            data = migrate(dict(data))
            version = data["schema_version"]
        try:
            schema = [(name, kind) for name, kind in data["input_schema"]]
            plan = cls(
                input_columns=list(data["input_columns"]),
                input_schema=schema,
                target=data["target"],
                features=[FeatureSpec.from_dict(f) for f in data["features"]],
                drop_columns=list(data.get("drop_columns", [])),
                schema_version=PLAN_SCHEMA_VERSION,
                fingerprint="",
                metadata=dict(data.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanSchemaError(f"malformed plan payload: {exc!r}") from exc
        stored = data.get("fingerprint", "")
        if stored and stored != plan.fingerprint:
            raise PlanSchemaError(
                f"plan fingerprint mismatch: stored {stored[:12]}… but the "
                f"input schema hashes to {plan.fingerprint[:12]}… — the plan "
                f"file was edited or corrupted"
            )
        return plan

    @classmethod
    def from_json(cls, text: str) -> "FeaturePlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanSchemaError(f"plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FeaturePlan":
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise PlanNotFoundError(f"cannot read plan file {path!r}: {exc}") from exc
        return cls.from_json(text)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def new_columns(self) -> list[str]:
        """Every output column the plan produces, in install order."""
        out: list[str] = []
        for spec in self.features:
            if spec.status != "omitted":
                out.extend(spec.output_columns)
        return out

    def counts(self) -> dict[str, int]:
        """How many features compiled / fell back / were omitted."""
        out = {"compiled": 0, "fallback": 0, "omitted": 0}
        for spec in self.features:
            out[spec.status] = out.get(spec.status, 0) + 1
        return out


def _migrate_v1(data: dict) -> dict:
    """v1 → v2: flat ``columns`` mapping became ordered ``input_schema``.

    v1 plans (the pre-release shape) recorded ``{"columns": {name: kind}}``
    with no fingerprint and no explicit column order; the migration
    reconstructs both, appending the target to the column order when it
    was not listed.
    """
    columns = data.get("columns")
    if not isinstance(columns, dict):
        raise PlanSchemaError("v1 plan has no 'columns' mapping to migrate")
    target = data.get("target", "")
    input_schema = [[name, kind] for name, kind in columns.items()]
    input_columns = data.get("input_columns") or [
        *columns.keys(),
        *([target] if target and target not in columns else []),
    ]
    out = dict(data)
    out.pop("columns", None)
    out["input_schema"] = input_schema
    out["input_columns"] = input_columns
    out["fingerprint"] = ""  # recomputed from the migrated schema
    out["schema_version"] = 2
    return out


_MIGRATIONS = {1: _migrate_v1}
