"""On-disk FeaturePlan store with versioning and pinning.

Layout::

    <root>/
        pins.json                 # {"plan name": pinned version}
        <plan name>/
            v1.json
            v2.json

Saving appends the next version; loading resolves an explicit version,
then the pin, then the latest.  Loaded plans are cached (they are
immutable) and every access is lock-guarded so concurrent servers can
share one registry instance.
"""

from __future__ import annotations

import json
import os
import re
import threading

from repro.serve.plan import FeaturePlan, PlanError, PlanNotFoundError

__all__ = ["PlanRegistry"]

_VERSION_FILE = re.compile(r"^v(\d+)\.json$")
_NAME_OK = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class PlanRegistry:
    """Load/save/pin FeaturePlans under a root directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._lock = threading.Lock()
        self._cache: dict[tuple[str, int], FeaturePlan] = {}
        #: Bumped on every save/pin/unpin through *this* instance; part of
        #: :meth:`state_token` so in-process mutations invalidate server
        #: plan caches immediately even when filesystem mtimes are coarse.
        self._generation = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _plan_dir(self, name: str) -> str:
        if not _NAME_OK.match(name):
            raise PlanError(f"invalid plan name {name!r}")
        return os.path.join(self.root, name)

    def _plan_path(self, name: str, version: int) -> str:
        return os.path.join(self._plan_dir(name), f"v{version}.json")

    @property
    def _pins_path(self) -> str:
        return os.path.join(self.root, "pins.json")

    # ------------------------------------------------------------------
    # Save / enumerate
    # ------------------------------------------------------------------
    def save(self, plan: FeaturePlan, name: str) -> int:
        """Persist *plan* as the next version of *name*; returns the version."""
        with self._lock:
            directory = self._plan_dir(name)
            os.makedirs(directory, exist_ok=True)
            version = (self._versions_unlocked(name) or [0])[-1] + 1
            plan.save(self._plan_path(name, version))
            self._cache[(name, version)] = plan
            self._generation += 1
            return version

    def _versions_unlocked(self, name: str) -> list[int]:
        directory = self._plan_dir(name)
        if not os.path.isdir(directory):
            return []
        found = []
        for entry in os.listdir(directory):
            match = _VERSION_FILE.match(entry)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def versions(self, name: str) -> list[int]:
        """Stored versions of *name*, ascending (empty when unknown)."""
        with self._lock:
            return self._versions_unlocked(name)

    def names(self) -> list[str]:
        """Plan names present in the registry."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry
            for entry in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, entry))
        )

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def _read_pins(self) -> dict[str, int]:
        try:
            with open(self._pins_path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}
        return {str(k): int(v) for k, v in data.items()} if isinstance(data, dict) else {}

    def pin(self, name: str, version: int) -> None:
        """Pin *name* to *version* (must exist); load() then defaults to it."""
        with self._lock:
            if version not in self._versions_unlocked(name):
                raise PlanNotFoundError(
                    f"cannot pin {name!r} to missing version {version}"
                )
            pins = self._read_pins()
            pins[name] = version
            os.makedirs(self.root, exist_ok=True)
            with open(self._pins_path, "w", encoding="utf-8") as handle:
                json.dump(pins, handle, indent=2)
            self._generation += 1

    def unpin(self, name: str) -> None:
        with self._lock:
            pins = self._read_pins()
            if pins.pop(name, None) is not None:
                with open(self._pins_path, "w", encoding="utf-8") as handle:
                    json.dump(pins, handle, indent=2)
                self._generation += 1

    def pinned(self, name: str) -> int | None:
        """The pinned version of *name*, or ``None``."""
        with self._lock:
            return self._read_pins().get(name)

    def state_token(self, name: str) -> tuple:
        """Cheap opaque token that changes whenever *name*'s pin-or-latest
        resolution could change.

        Combines this instance's mutation generation (exact for
        in-process saves/pins) with the pins-file and plan-directory
        ``mtime_ns`` (eventually correct for cross-process writers).  A
        server caching a resolved plan revalidates by comparing tokens —
        two stat calls instead of re-reading plan JSON per batch.
        """
        with self._lock:
            generation = self._generation
        def _mtime(path: str) -> int:
            try:
                return os.stat(path).st_mtime_ns
            except OSError:
                return -1
        return (generation, _mtime(self._pins_path), _mtime(self._plan_dir(name)))

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(self, name: str, version: int | None = None) -> FeaturePlan:
        """Load a plan: explicit *version* → pin → latest.

        Schema-version migration and fingerprint validation run inside
        :meth:`FeaturePlan.load`; an unreadable or too-new plan raises
        loudly rather than serving stale features.
        """
        with self._lock:
            if version is None:
                version = self._read_pins().get(name)
            if version is None:
                stored = self._versions_unlocked(name)
                if not stored:
                    raise PlanNotFoundError(
                        f"no plan named {name!r} in registry {self.root!r}"
                    )
                version = stored[-1]
            cached = self._cache.get((name, version))
            if cached is not None:
                return cached
            path = self._plan_path(name, version)
        plan = FeaturePlan.load(path)
        with self._lock:
            self._cache[(name, version)] = plan
        return plan
