"""Serve-path resilience: fault isolation, breakers, quarantine, watchdog.

``FeaturePlan.apply`` is all-or-nothing by design — ``strict`` mode, the
default, fails the whole batch the moment one feature misbehaves, which
is the right contract for offline replay and tests.  Production traffic
needs the opposite: a misbehaving feature (a sandbox fallback that
raises, a drifted column, a hostile row value) should cost exactly its
own column, with the blast radius recorded, never the batch.  This
module is that degraded-mode machinery:

* :func:`apply_with_report` — the per-feature isolation loop behind
  ``failure_policy="degrade"``: a failing feature yields a NaN-filled
  column plus a structured :class:`FeatureReport`; healthy features
  evaluate through the exact same code path as strict mode, so their
  outputs stay bit-identical to a fault-free run.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-feature
  closed → open → half-open breakers with thread-safe, *call-count*
  based state (no wall clock, so trips and recoveries are exactly
  reproducible in tests).
* :class:`SandboxWatchdog` — wall-clock timeout plus output sanity
  (row count, dtype, no input-frame mutation) around sandbox-fallback
  evaluation, so FM-generated code can hang or explode without taking
  the server down.
* :func:`validate_rows` — typed coercion of row-dict batches against the
  plan's schema fingerprint with per-cell patching and per-row
  quarantine, so hostile input surfaces as a reasoned
  :class:`QuarantineReport` instead of a deep-in-kernel crash.
* :class:`ServerStats` — the cumulative counters behind
  ``FeatureServer.health()`` / ``stats()``.
"""

from __future__ import annotations

import math
import sys
import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.dataframe.frame import DataFrame
from repro.dataframe.series import Series
from repro.serve.plan import PlanError, PlanSchemaError, column_kind

__all__ = [
    "FAILURE_POLICIES",
    "ApplyReport",
    "BatchValidationError",
    "BreakerBoard",
    "CircuitBreaker",
    "FeatureReport",
    "QuarantineReport",
    "SandboxWatchdog",
    "ServerStats",
    "ValidationLimits",
    "WatchdogTimeout",
    "WatchdogViolation",
    "apply_with_report",
    "plan_known_categories",
    "validate_rows",
]

#: ``strict`` is today's contract (one bad feature fails the batch) and
#: stays the default; ``degrade`` NaN-fills failing features and reports.
FAILURE_POLICIES = ("strict", "degrade")


class WatchdogTimeout(PlanError):
    """A guarded fallback exceeded its wall-clock budget."""


class WatchdogViolation(PlanError):
    """A guarded fallback returned insane output or mutated its input."""


class BatchValidationError(PlanError):
    """A row-dict batch cannot be served at all (empty, or fully hostile)."""


# ----------------------------------------------------------------------
# Per-feature reports
# ----------------------------------------------------------------------
@dataclass
class FeatureReport:
    """One feature's outcome in one ``apply`` call.

    ``status`` is ``ok`` (served normally), ``failed`` (evaluation raised
    — NaN-filled under degrade), ``skipped`` (breaker open — NaN-filled
    without burning evaluation time), or ``omitted`` (the plan itself
    never compiled it).  ``error`` is the exception class name for
    ``failed``; ``reason`` is human-readable in every non-ok case.
    """

    feature: str
    status: str
    error: str = ""
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "feature": self.feature,
            "status": self.status,
            "error": self.error,
            "reason": self.reason,
        }


@dataclass
class ApplyReport:
    """Structured outcome of one resilient ``apply`` call."""

    policy: str
    reports: list[FeatureReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.status in ("ok", "omitted") for r in self.reports)

    def by_status(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for report in self.reports:
            out[report.status] = out.get(report.status, 0) + 1
        return out

    @property
    def degraded_fraction(self) -> float:
        """Fraction of served (non-omitted) features that were NaN-filled."""
        served = [r for r in self.reports if r.status != "omitted"]
        if not served:
            return 0.0
        bad = sum(1 for r in served if r.status != "ok")
        return bad / len(served)

    def failures(self) -> list[FeatureReport]:
        return [r for r in self.reports if r.status in ("failed", "skipped")]

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "degraded_fraction": self.degraded_fraction,
            "by_status": self.by_status(),
            "features": [r.to_dict() for r in self.reports],
        }


# ----------------------------------------------------------------------
# Circuit breakers
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Closed → open → half-open breaker with deterministic, counted state.

    State advances on *calls*, never on wall-clock time: after
    ``failure_threshold`` consecutive failures the breaker opens and the
    next ``cooldown_calls`` calls are refused outright; the call after
    that is admitted as the half-open probe, whose outcome closes or
    re-opens the breaker.  Count-based cooldown keeps trip/recovery
    schedules exactly reproducible under seeded fault injection, and the
    single lock makes the counters safe under concurrent callers.
    """

    def __init__(self, failure_threshold: int = 3, cooldown_calls: int = 5) -> None:
        if failure_threshold < 1 or cooldown_calls < 1:
            raise ValueError("breaker thresholds must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_calls = cooldown_calls
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._cooldown_left = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Admit or refuse one call (refusals count down the cooldown)."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._cooldown_left > 0:
                    self._cooldown_left -= 1
                    return False
                self._state = "half_open"
                return True  # this call is the probe
            return False  # half_open: a probe is already in flight

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._cooldown_left = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state == "half_open"
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._state = "open"
                self._cooldown_left = self.cooldown_calls

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "cooldown_left": self._cooldown_left,
            }


class BreakerBoard:
    """Per-feature breakers sharing one configuration, created on demand."""

    def __init__(self, failure_threshold: int = 3, cooldown_calls: int = 5) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_calls = cooldown_calls
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, feature: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(feature)
            if breaker is None:
                breaker = CircuitBreaker(self.failure_threshold, self.cooldown_calls)
                self._breakers[feature] = breaker
            return breaker

    def snapshot(self) -> dict[str, dict]:
        with self._lock:
            items = list(self._breakers.items())
        return {name: breaker.snapshot() for name, breaker in items}


# ----------------------------------------------------------------------
# Sandbox watchdog
# ----------------------------------------------------------------------
def _series_equal(a: Series, b: Series) -> bool:
    av, bv = a.values, b.values
    if av.dtype != bv.dtype or av.shape != bv.shape:
        return False
    if av.dtype.kind == "f":
        return bool(np.array_equal(av, bv, equal_nan=True))
    if av.dtype.kind == "O":
        for x, y in zip(av.tolist(), bv.tolist()):
            if x is y:
                continue
            if (
                isinstance(x, float)
                and isinstance(y, float)
                and math.isnan(x)
                and math.isnan(y)
            ):
                continue
            if x != y:
                return False
        return True
    return bool(np.array_equal(av, bv))


class SandboxWatchdog:
    """Wall-clock budget + output sanity around fallback evaluation.

    The guarded callable runs in a daemon worker thread under a
    ``sys.settrace`` hook; on timeout the hook is armed to raise
    :class:`WatchdogTimeout` at the worker's next bytecode line, which
    interrupts pure-Python busy loops (a C-level hang cannot be
    interrupted, but the daemon thread cannot block process exit
    either).  The budget is enforced with ``Thread.join(timeout)`` — no
    polling, no wall-clock reads.
    """

    def __init__(self, timeout_s: float = 2.0, join_grace_s: float = 0.5) -> None:
        if timeout_s <= 0:
            raise ValueError("watchdog timeout must be positive")
        self.timeout_s = timeout_s
        self.join_grace_s = join_grace_s

    def run(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn()`` under the wall-clock budget; re-raise its errors."""
        cancel = threading.Event()
        holder: dict[str, Any] = {}

        def tracer(frame, event, arg):
            if cancel.is_set():
                raise WatchdogTimeout("watchdog cancelled the transform")
            return tracer

        def worker() -> None:
            sys.settrace(tracer)
            try:
                holder["result"] = fn()
            except BaseException as exc:  # noqa: BLE001 - ferried to caller
                holder["error"] = exc
            finally:
                sys.settrace(None)

        thread = threading.Thread(
            target=worker, name="sandbox-watchdog", daemon=True
        )
        thread.start()
        thread.join(self.timeout_s)
        if thread.is_alive():
            cancel.set()
            thread.join(self.join_grace_s)
            raise WatchdogTimeout(
                f"transform exceeded its {self.timeout_s:.3f}s wall-clock budget"
            )
        if "error" in holder:
            raise holder["error"]
        return holder["result"]

    def run_guarded(self, spec, working: DataFrame, fn: Callable[[DataFrame], Any]):
        """Run ``fn(guard)`` on a defensive copy and sanity-check the output.

        The copy means a mutating transform can never corrupt the
        caller's frame; comparing the copy back against the original
        afterwards turns the attempted mutation into a loud
        :class:`WatchdogViolation`, as are a wrong row count and (when
        the spec records ``output_kinds``) a wrong output dtype kind.
        """
        guard = working.copy()
        out = self.run(lambda: fn(guard))
        if guard.columns != working.columns or any(
            not _series_equal(guard[name], working[name]) for name in working.columns
        ):
            raise WatchdogViolation(
                f"feature {spec.name!r} transform mutated its input frame"
            )
        n_rows = len(working)
        kinds = getattr(spec, "output_kinds", None) or {}
        if isinstance(kinds, Sequence) and not isinstance(kinds, Mapping):
            kinds = dict(zip(spec.output_columns, kinds))
        for name, series in _iter_outputs(spec, out):
            if len(series) != n_rows:
                raise WatchdogViolation(
                    f"feature {spec.name!r} produced {len(series)} rows "
                    f"for a {n_rows}-row batch"
                )
            expected = kinds.get(name)
            if expected is not None and column_kind(series) != expected:
                raise WatchdogViolation(
                    f"feature {spec.name!r} output {name!r} has kind "
                    f"{column_kind(series)}, plan recorded {expected}"
                )
        return out


def _iter_outputs(spec, out):
    """Yield ``(column name, Series)`` from a transform's raw output."""
    if isinstance(out, Series):
        name = spec.output_columns[0] if spec.output_columns else out.name
        yield name, out
        return
    if isinstance(out, DataFrame):
        for name in spec.output_columns:
            if name in out:
                yield name, out[name]
        return
    if isinstance(out, Mapping):
        for name, series in out.items():
            if isinstance(series, Series):
                yield name, series


# ----------------------------------------------------------------------
# Resilient apply
# ----------------------------------------------------------------------
def _nan_fill(spec, working: DataFrame, n_rows: int) -> None:
    for name in spec.output_columns:
        working[name] = Series._from_array(np.full(n_rows, np.nan), name)


def apply_with_report(
    plan,
    frame: DataFrame,
    *,
    failure_policy: str = "degrade",
    breakers: BreakerBoard | None = None,
    watchdog: SandboxWatchdog | None = None,
    evaluator: Callable | None = None,
) -> tuple[DataFrame, ApplyReport]:
    """Replay *plan* with per-feature fault isolation.

    The engine behind ``FeaturePlan.apply_with_report``.  Healthy
    features run through the identical evaluation calls the strict path
    makes (same ``evaluate_feature`` / fallback, same install), so their
    outputs are bit-identical to a fault-free strict run.  A failing
    feature costs exactly its own output columns: under ``degrade`` they
    are NaN-filled and the failure is recorded in the returned
    :class:`ApplyReport`; under ``strict`` the original exception
    propagates (after the breaker, if any, counts it).

    ``evaluator`` is the chaos seam: when given, every feature
    evaluation routes through ``evaluator(spec, frame, default)`` where
    ``default()`` performs the normal evaluation — fault injectors wrap
    it, production never sets it.
    """
    if failure_policy not in FAILURE_POLICIES:
        raise PlanError(
            f"unknown failure_policy {failure_policy!r}; "
            f"expected one of {FAILURE_POLICIES}"
        )
    degrade = failure_policy == "degrade"
    problems = plan.schema_problems(frame)
    unavailable: dict[str, str] = {}
    if problems:
        if not degrade:
            plan.validate_frame(frame)  # raises with the canonical message
        unavailable = {name: problem for name, _kind, problem in problems}
    present = [
        c for c in plan.input_columns if c in frame and c not in unavailable
    ]
    working = frame.column_view(present)
    n_rows = len(frame)
    report = ApplyReport(policy=failure_policy)

    for spec in plan.features:
        if spec.status == "omitted":
            report.reports.append(
                FeatureReport(spec.name, "omitted", reason=spec.reason)
            )
            continue
        missing = [c for c in spec.input_columns if c not in working]
        if missing:
            reasons = "; ".join(
                unavailable.get(c, f"column {c!r} unavailable") for c in missing
            )
            _nan_fill(spec, working, n_rows)
            report.reports.append(
                FeatureReport(
                    spec.name, "failed", error="PlanSchemaError",
                    reason=f"input unavailable: {reasons}",
                )
            )
            continue
        breaker = breakers.get(spec.name) if breakers is not None else None
        if breaker is not None and not breaker.allow():
            if not degrade:
                raise PlanError(
                    f"circuit breaker open for feature {spec.name!r}"
                )
            _nan_fill(spec, working, n_rows)
            report.reports.append(
                FeatureReport(
                    spec.name, "skipped", error="CircuitOpen",
                    reason="circuit breaker open",
                )
            )
            continue
        try:
            out = _evaluate_spec(plan, spec, working, watchdog, evaluator)
            plan._install(spec, out, working)
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            if breaker is not None:
                breaker.record_failure()
            if not degrade:
                raise
            _nan_fill(spec, working, n_rows)
            report.reports.append(
                FeatureReport(
                    spec.name, "failed", error=type(exc).__name__, reason=str(exc)
                )
            )
            continue
        if breaker is not None:
            breaker.record_success()
        report.reports.append(FeatureReport(spec.name, "ok"))

    to_drop = [c for c in plan.drop_columns if c in working]
    if to_drop:
        working.drop(columns=to_drop, inplace=True)
    return working, report


def _evaluate_spec(plan, spec, working, watchdog, evaluator):
    """One feature's evaluation, optionally chaos-wrapped and guarded.

    The watchdog engages for sandbox fallbacks (untrusted FM source) and
    for any evaluation routed through a chaos ``evaluator`` — compiled
    expressions on the production path stay unguarded, they are pure
    data-plane numpy with nothing to time out.
    """
    from repro.dataframe.expr import evaluate_feature

    def default_on(frame):
        if spec.status == "compiled":
            return evaluate_feature(spec.expr, frame)
        return plan._run_fallback(spec, frame)

    guard_needed = spec.status == "fallback" or evaluator is not None
    if watchdog is not None and guard_needed:
        if evaluator is None:
            return watchdog.run_guarded(spec, working, default_on)
        return watchdog.run_guarded(
            spec, working, lambda g: evaluator(spec, g, lambda: default_on(g))
        )
    if evaluator is not None:
        return evaluator(spec, working, lambda: default_on(working))
    return default_on(working)


# ----------------------------------------------------------------------
# Hostile-input validation / quarantine
# ----------------------------------------------------------------------
@dataclass
class ValidationLimits:
    """Knobs bounding what a row-dict batch may contain.

    ``max_string_chars`` quarantines oversized strings before they reach
    the object kernels; ``nan_flood_fraction`` is the per-column NaN
    fraction above which the batch is flagged (a flood is a *warning* —
    NaN is a legal value — but a sudden all-NaN column is usually an
    upstream outage, and health checks want to see it).
    ``max_patch_examples`` caps the per-cell patch examples kept in the
    report so a hostile batch cannot balloon memory.
    """

    max_string_chars: int = 10_000
    nan_flood_fraction: float = 0.5
    max_patch_examples: int = 20


@dataclass
class QuarantineReport:
    """What :func:`validate_rows` did to a row-dict batch."""

    total_rows: int = 0
    kept_rows: int = 0
    quarantined: list[tuple[int, str]] = field(default_factory=list)
    patched_cells: int = 0
    patches: list[tuple[int, str, str]] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def quarantined_rows(self) -> int:
        return len(self.quarantined)

    def to_dict(self) -> dict:
        return {
            "total_rows": self.total_rows,
            "kept_rows": self.kept_rows,
            "quarantined_rows": self.quarantined_rows,
            "quarantined": [
                {"row": idx, "reason": reason} for idx, reason in self.quarantined
            ],
            "patched_cells": self.patched_cells,
            "patches": [
                {"row": idx, "column": col, "reason": reason}
                for idx, col, reason in self.patches
            ],
            "warnings": list(self.warnings),
        }


_MISSING = object()


def _coerce_numeric(value: Any):
    """``(float value, patch reason | None)`` or ``(None, quarantine reason)``."""
    if value is _MISSING or value is None:
        return float("nan"), None
    if isinstance(value, bool):
        return float(value), "bool coerced to numeric"
    if isinstance(value, (int, float, np.integer, np.floating)):
        value = float(value)
        if math.isinf(value):
            return float("nan"), "inf patched to NaN"
        return value, None
    if isinstance(value, str):
        try:
            parsed = float(value)
        except ValueError:
            return None, f"non-numeric string {value[:40]!r} in numeric column"
        if math.isinf(parsed):
            return float("nan"), "inf patched to NaN"
        return parsed, "numeric string coerced"
    return None, f"value of type {type(value).__name__} in numeric column"


def _coerce_bool(value: Any):
    if isinstance(value, (bool, np.bool_)):
        return bool(value), None
    if isinstance(value, (int, np.integer)) and value in (0, 1):
        return bool(value), "0/1 coerced to bool"
    if value is _MISSING or value is None:
        return None, "missing value in boolean column"
    return None, f"value of type {type(value).__name__} in boolean column"


def _coerce_object(value: Any, limits: ValidationLimits):
    if value is _MISSING or value is None:
        return None, None
    if isinstance(value, str):
        if len(value) > limits.max_string_chars:
            return None, (
                f"string of {len(value)} chars exceeds "
                f"max_string_chars={limits.max_string_chars}"
            )
        try:
            value.encode("utf-8")
        except UnicodeEncodeError:
            return None, "string is not UTF-8-encodable"
        return value, None
    if isinstance(value, (bool, int, float, np.bool_, np.integer, np.floating)):
        return value, None
    return None, f"value of type {type(value).__name__} in object column"


def validate_rows(
    plan,
    rows: Sequence[Mapping],
    limits: ValidationLimits | None = None,
    *,
    strict: bool = False,
) -> tuple[DataFrame, QuarantineReport]:
    """Coerce a row-dict batch against *plan*'s schema, quarantining hostiles.

    Cell-level problems with an obvious safe reading are *patched* (inf →
    NaN, numeric string → float, missing key → NaN/None) and counted;
    problems with no safe reading (nested values, un-coercible dtypes,
    oversized or non-UTF-8 strings, a non-mapping row) *quarantine the
    whole row* with a reason.  Surviving rows become a frame whose
    columns already carry the plan's expected dtypes, so
    ``validate_frame`` passes by construction.

    ``strict=True`` converts any quarantine *or patch* into a raised
    :class:`BatchValidationError` — the strict-policy contract is that a
    hostile batch fails loudly rather than being silently shrunk or
    repaired.  An empty batch, or a batch with no surviving rows, always
    raises.
    """
    limits = limits or ValidationLimits()
    rows = list(rows)
    report = QuarantineReport(total_rows=len(rows))
    if not rows:
        raise BatchValidationError("empty batch: no rows to transform")
    schema = plan.input_schema
    kept: list[int] = []
    columns: dict[str, list] = {name: [] for name, _ in schema}

    for idx, row in enumerate(rows):
        if not isinstance(row, Mapping):
            report.quarantined.append(
                (idx, f"row is not a mapping (got {type(row).__name__})")
            )
            continue
        staged: dict[str, Any] = {}
        patches: list[tuple[str, str]] = []
        reason = None
        for name, kind in schema:
            value = row.get(name, _MISSING)
            if isinstance(value, (Mapping, list, tuple, set)):
                reason = f"nested value of type {type(value).__name__} in column {name!r}"
                break
            if kind == "numeric":
                coerced, note = _coerce_numeric(value)
                if coerced is None:
                    reason = f"column {name!r}: {note}"
                    break
            elif kind == "bool":
                coerced, note = _coerce_bool(value)
                if coerced is None:
                    reason = f"column {name!r}: {note}"
                    break
            else:
                coerced, note = _coerce_object(value, limits)
                if note is not None:
                    reason = f"column {name!r}: {note}"
                    break
            if value is _MISSING and kind != "bool":
                patches.append((name, "missing key defaulted"))
            elif note is not None:
                patches.append((name, note))
            staged[name] = coerced
        if reason is not None:
            report.quarantined.append((idx, reason))
            continue
        kept.append(idx)
        for name, note in patches:
            report.patched_cells += 1
            if len(report.patches) < limits.max_patch_examples:
                report.patches.append((idx, name, note))
        for name, _kind in schema:
            columns[name].append(staged[name])

    report.kept_rows = len(kept)
    if strict and (report.quarantined or report.patched_cells):
        if report.quarantined:
            idx, first = report.quarantined[0]
            detail = f"row {idx}: {first}"
        else:
            idx, col, note = report.patches[0]
            detail = f"row {idx}, column {col!r}: {note}"
        raise BatchValidationError(
            f"{report.quarantined_rows} rows quarantined and "
            f"{report.patched_cells} cells patched out of {report.total_rows} "
            f"rows under strict policy; first: {detail}"
        )
    if not kept:
        sample = "; ".join(
            f"row {idx}: {reason}" for idx, reason in report.quarantined[:3]
        )
        raise BatchValidationError(
            f"no rows survived validation ({report.total_rows} quarantined): {sample}"
        )

    data: dict[str, Any] = {}
    for name, kind in schema:
        values = columns[name]
        if kind == "numeric":
            array = np.asarray(values, dtype=np.float64)
        elif kind == "bool":
            array = np.asarray(values, dtype=bool)
        else:
            array = np.empty(len(values), dtype=object)
            array[:] = values
        data[name] = Series._from_array(array, name)
    # Plan input columns outside the serve schema (the target, when the
    # batch carries it) pass through untouched, as the raw-DataFrame path
    # would keep them.
    schema_names = {name for name, _ in schema}
    for name in plan.input_columns:
        if name in schema_names or name not in rows[kept[0]]:
            continue
        data[name] = [rows[idx].get(name) for idx in kept]
    frame = DataFrame(data)

    for name, kind in schema:
        if kind != "numeric":
            continue
        values = frame[name].values
        flood = float(np.isnan(values).mean()) if len(values) else 0.0
        if flood > limits.nan_flood_fraction:
            report.warnings.append(
                f"column {name!r}: NaN fraction {flood:.2f} exceeds "
                f"flood threshold {limits.nan_flood_fraction:.2f}"
            )
    known = plan_known_categories(plan)
    for name, categories in known.items():
        if name not in frame:
            continue
        values = frame[name].values
        unknown = sum(
            1 for v in values.tolist() if v is not None and v not in categories
        )
        if unknown:
            report.warnings.append(
                f"column {name!r}: {unknown} values outside the "
                f"{len(categories)} categories the plan froze"
            )
    return frame, report


def plan_known_categories(plan) -> dict[str, set]:
    """Category vocabularies the plan froze, per input column.

    Derived from ``dummies`` / ``dict_map`` / ``group_lookup`` nodes —
    the forms whose fit-time statistics enumerate the values they saw.
    A serve-time value outside the set is not an error (the kernels all
    have an unseen-value path), but a surge of them is drift worth
    flagging.
    """
    out: dict[str, set] = {}
    for spec in plan.features:
        if spec.status != "compiled" or spec.expr is None:
            continue
        stack = [spec.expr]
        while stack:
            node = stack.pop()
            if not isinstance(node, dict):
                continue
            op = node.get("op")
            if op == "dummies":
                out.setdefault(node["column"], set()).update(node["categories"])
            elif op == "dict_map":
                out.setdefault(node["column"], set()).update(node["keys"])
            elif op == "group_lookup":
                for j, key in enumerate(node["keys"]):
                    out.setdefault(key, set()).update(
                        row[j] for row in node.get("table", [])
                    )
            for child in node.values():
                if isinstance(child, dict):
                    stack.append(child)
    return out


# ----------------------------------------------------------------------
# Cumulative server stats
# ----------------------------------------------------------------------
class ServerStats:
    """Thread-safe cumulative counters behind the server health surface."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._batches = 0
        self._rows_in = 0
        self._rows_served = 0
        self._rows_quarantined = 0
        self._cells_patched = 0
        self._features: dict[str, dict[str, int]] = {}

    def record(
        self,
        *,
        rows_in: int,
        rows_served: int,
        quarantine: QuarantineReport | None = None,
        apply_report: ApplyReport | None = None,
    ) -> None:
        with self._lock:
            self._batches += 1
            self._rows_in += rows_in
            self._rows_served += rows_served
            if quarantine is not None:
                self._rows_quarantined += quarantine.quarantined_rows
                self._cells_patched += quarantine.patched_cells
            if apply_report is not None:
                for feature in apply_report.reports:
                    if feature.status == "omitted":
                        continue
                    counts = self._features.setdefault(
                        feature.feature, {"ok": 0, "failed": 0, "skipped": 0}
                    )
                    counts[feature.status] = counts.get(feature.status, 0) + 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "batches": self._batches,
                "rows_in": self._rows_in,
                "rows_served": self._rows_served,
                "rows_quarantined": self._rows_quarantined,
                "cells_patched": self._cells_patched,
                "features": {
                    name: dict(counts) for name, counts in self._features.items()
                },
            }
