"""Batched serving entry point over a compiled FeaturePlan.

``FeatureServer.transform(rows)`` is the production-traffic surface: it
accepts a :class:`DataFrame` or a list of row dicts, validates the batch
against the plan's schema fingerprint, and replays the plan's pure-numpy
program.  Plans are immutable once loaded and replay never mutates shared
state (per-call frames are per-caller; the one shared write — a Series
grouping-cache fill — is an idempotent publish of identical data), so one
server instance is safe under concurrent callers.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence

from repro.dataframe.frame import DataFrame
from repro.serve.plan import FeaturePlan, PlanError
from repro.serve.registry import PlanRegistry

__all__ = ["FeatureServer"]


class FeatureServer:
    """Serve one plan directly, or any plan out of a registry.

    Parameters
    ----------
    plan:
        A plan to serve directly (no registry needed).
    registry, name, version:
        Registry-backed resolution: *name* (and optional *version*) select
        the plan; omitted versions follow the registry pin/latest rules.
    """

    def __init__(
        self,
        plan: FeaturePlan | None = None,
        registry: PlanRegistry | None = None,
        name: str | None = None,
        version: int | None = None,
    ) -> None:
        if plan is None and registry is None:
            raise PlanError("FeatureServer needs a plan or a registry")
        self._plan = plan
        self._registry = registry
        self._default_name = name
        self._default_version = version
        self._lock = threading.Lock()

    def plan_for(
        self, name: str | None = None, version: int | None = None
    ) -> FeaturePlan:
        """Resolve the plan a call should replay (registry cache behind a lock)."""
        if name is None and self._plan is not None:
            return self._plan
        if self._registry is None:
            raise PlanError(f"no registry configured to resolve plan {name!r}")
        resolved = name if name is not None else self._default_name
        if resolved is None:
            raise PlanError("no plan name given and no default configured")
        with self._lock:
            return self._registry.load(
                resolved, version if version is not None else self._default_version
            )

    def transform(
        self,
        rows: DataFrame | Sequence[Mapping],
        name: str | None = None,
        version: int | None = None,
    ) -> DataFrame:
        """Replay the plan over a batch of rows; returns the featured frame.

        The batch may be a DataFrame or a list of row dicts.  Schema
        mismatches raise :class:`repro.serve.plan.PlanSchemaError` listing
        every offending column.
        """
        plan = self.plan_for(name, version)
        if isinstance(rows, DataFrame):
            frame = rows
        else:
            frame = DataFrame(list(rows))
        return plan.apply(frame)
