"""Batched serving entry point over a compiled FeaturePlan.

``FeatureServer.transform(rows)`` is the production-traffic surface: it
accepts a :class:`DataFrame` or a list of row dicts, validates the batch
against the plan's schema fingerprint, and replays the plan's pure-numpy
program.  Plans are immutable once loaded and replay never mutates shared
state (per-call frames are per-caller; the one shared write — a Series
grouping-cache fill — is an idempotent publish of identical data), so one
server instance is safe under concurrent callers.

Registry-backed resolution is cached per ``(name, version)``: explicit
versions are immutable and cached forever; pin-or-latest resolution
revalidates against :meth:`PlanRegistry.state_token` (two stat calls)
instead of re-reading plan JSON on every batch, and no disk I/O ever
happens while the server lock is held.

Resilience is opt-in per server: ``failure_policy="degrade"`` NaN-fills
failing features instead of failing the batch, per-feature circuit
breakers stop burning sandbox time on persistently broken fallbacks, a
watchdog bounds fallback wall-clock and output sanity, and row-dict
batches are coerced/quarantined against the plan schema.
:meth:`FeatureServer.health` and :meth:`FeatureServer.stats` expose the
accumulated picture.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.core.shard_pipeline import PipelineStats
from repro.dataframe.frame import DataFrame
from repro.serve.plan import FeaturePlan, PlanError
from repro.serve.registry import PlanRegistry
from repro.serve.resilience import (
    FAILURE_POLICIES,
    ApplyReport,
    BreakerBoard,
    QuarantineReport,
    SandboxWatchdog,
    ServerStats,
    ValidationLimits,
    validate_rows,
)

__all__ = ["FeatureServer", "ServeReport"]


class ServeReport:
    """Everything one resilient ``transform_with_report`` call observed."""

    def __init__(
        self,
        apply_report: ApplyReport,
        quarantine: QuarantineReport | None = None,
    ) -> None:
        self.apply_report = apply_report
        self.quarantine = quarantine

    @property
    def ok(self) -> bool:
        clean_rows = self.quarantine is None or not self.quarantine.quarantined
        return self.apply_report.ok and clean_rows

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "apply": self.apply_report.to_dict(),
            "quarantine": self.quarantine.to_dict() if self.quarantine else None,
        }


class FeatureServer:
    """Serve one plan directly, or any plan out of a registry.

    Parameters
    ----------
    plan:
        A plan to serve directly (no registry needed).
    registry, name, version:
        Registry-backed resolution: *name* (and optional *version*) select
        the plan; omitted versions follow the registry pin/latest rules.
    failure_policy:
        ``"strict"`` (default — one bad feature or hostile row fails the
        batch loudly, the historical contract) or ``"degrade"`` (failing
        features NaN-fill, hostile rows quarantine, everything is
        reported).
    breaker_threshold, breaker_cooldown:
        Per-feature circuit breakers: open after *breaker_threshold*
        consecutive failures, admit a half-open probe after
        *breaker_cooldown* refused calls.  ``breaker_threshold=0``
        disables breakers.
    watchdog_timeout:
        Wall-clock seconds a sandbox-fallback feature may spend per
        batch (plus output sanity checks).  ``None`` disables the
        watchdog.
    limits:
        :class:`~repro.serve.resilience.ValidationLimits` for row-dict
        batches (string size, NaN-flood threshold).
    """

    def __init__(
        self,
        plan: FeaturePlan | None = None,
        registry: PlanRegistry | None = None,
        name: str | None = None,
        version: int | None = None,
        *,
        failure_policy: str = "strict",
        breaker_threshold: int = 0,
        breaker_cooldown: int = 5,
        watchdog_timeout: float | None = None,
        limits: ValidationLimits | None = None,
    ) -> None:
        if plan is None and registry is None:
            raise PlanError("FeatureServer needs a plan or a registry")
        if failure_policy not in FAILURE_POLICIES:
            raise PlanError(
                f"unknown failure_policy {failure_policy!r}; "
                f"expected one of {FAILURE_POLICIES}"
            )
        self._plan = plan
        self._registry = registry
        self._default_name = name
        self._default_version = version
        self._lock = threading.Lock()
        self._plan_cache: dict[tuple[str, int | None], tuple[tuple | None, FeaturePlan]] = {}
        self.failure_policy = failure_policy
        self.breakers = (
            BreakerBoard(breaker_threshold, breaker_cooldown)
            if breaker_threshold > 0
            else None
        )
        self.watchdog = (
            SandboxWatchdog(watchdog_timeout) if watchdog_timeout else None
        )
        self.limits = limits or ValidationLimits()
        self.stats_board = ServerStats()
        self._pipeline_stats: PipelineStats | None = None

    # ------------------------------------------------------------------
    # Plan resolution
    # ------------------------------------------------------------------
    def plan_for(
        self, name: str | None = None, version: int | None = None
    ) -> FeaturePlan:
        """Resolve the plan a call should replay.

        Registry resolution is cached: an explicit *version* names an
        immutable artifact and is cached unconditionally; pin-or-latest
        resolution is cached against the registry's
        :meth:`~repro.serve.registry.PlanRegistry.state_token`, so a
        save/pin/unpin invalidates on the next call.  All registry I/O
        happens outside the server lock — the lock only guards the
        cache dict.
        """
        if name is None and self._plan is not None:
            return self._plan
        if self._registry is None:
            raise PlanError(f"no registry configured to resolve plan {name!r}")
        resolved = name if name is not None else self._default_name
        if resolved is None:
            raise PlanError("no plan name given and no default configured")
        wanted = version if version is not None else self._default_version
        key = (resolved, wanted)
        token = None if wanted is not None else self._registry.state_token(resolved)
        with self._lock:
            cached = self._plan_cache.get(key)
        if cached is not None and cached[0] == token:
            return cached[1]
        plan = self._registry.load(resolved, wanted)
        with self._lock:
            self._plan_cache[key] = (token, plan)
        return plan

    # ------------------------------------------------------------------
    # Transform
    # ------------------------------------------------------------------
    def transform(
        self,
        rows: DataFrame | Sequence[Mapping] | Iterable,
        name: str | None = None,
        version: int | None = None,
    ) -> DataFrame:
        """Replay the plan over a batch of rows; returns the featured frame.

        The batch may be a DataFrame, a list of row dicts, or any other
        iterable — a generator of :class:`~repro.dataframe.io.Shard`
        objects / DataFrames streams through :meth:`transform_stream`
        shard-by-shard and the results concatenate back into one frame,
        bit-identical to transforming the table whole.  (Concatenating
        holds every featured shard; keep the memory bound by consuming
        :meth:`transform_stream` directly.)

        Under the default strict policy, schema mismatches raise
        :class:`repro.serve.plan.PlanSchemaError` and hostile row dicts
        raise :class:`repro.serve.resilience.BatchValidationError` —
        always a typed ``PlanError`` subclass, never an internal
        traceback.  Under ``degrade``, hostile rows quarantine and
        failing features NaN-fill; use :meth:`transform_with_report` to
        see what happened.
        """
        if not isinstance(rows, (DataFrame, Sequence)) and isinstance(rows, Iterable):
            from repro.dataframe.io import concat_shards

            return concat_shards(list(self.transform_stream(rows, name, version)))
        frame, _report = self.transform_with_report(rows, name, version)
        return frame

    def transform_stream(
        self,
        shards: Iterable,
        name: str | None = None,
        version: int | None = None,
        *,
        pipeline_workers: int | None = None,
        pipeline_prefetch: int | None = None,
    ) -> Iterator[DataFrame]:
        """Stream featured frames shard-by-shard (out-of-core serving).

        *shards* iterates :class:`~repro.dataframe.io.Shard` objects,
        DataFrames, or row-dict batches; each goes through the identical
        validation/resilience path a :meth:`transform` batch does, so
        fault isolation applies per shard under ``degrade`` (a failing
        feature NaN-fills only the shards it fails on) while breakers,
        the watchdog, and the stats board accumulate across the whole
        stream.  Never holds more than one shard plus its featured
        output when sequential (the default).

        ``pipeline_workers`` opts into the overlapped shard executor
        (:func:`~repro.core.shard_pipeline.pipeline_map`): shard
        production, per-shard transform, and the ordered hand-off run
        concurrently with at most ``workers + prefetch`` shards in
        flight, and a re-sequencing buffer keeps the yielded order —
        and therefore bytes — identical to the sequential stream.
        Per-stage wall-clock/queue-depth numbers accumulate on the
        server and surface under ``stats()["pipeline"]``.
        """
        from repro.dataframe.io import Shard

        def produce():
            for piece in shards:
                yield piece.frame if isinstance(piece, Shard) else piece

        def serve_one(rows):
            out, _report = self.transform_with_report(rows, name, version)
            return out

        if pipeline_workers is None:
            for rows in produce():
                yield serve_one(rows)
            return
        from repro.core.shard_pipeline import pipeline_map

        with self._lock:
            if self._pipeline_stats is None:
                self._pipeline_stats = PipelineStats()
            stats = self._pipeline_stats
        yield from pipeline_map(
            produce(),
            serve_one,
            workers=pipeline_workers,
            prefetch=pipeline_prefetch,
            stats=stats,
        )

    def transform_with_report(
        self,
        rows: DataFrame | Sequence[Mapping],
        name: str | None = None,
        version: int | None = None,
    ) -> tuple[DataFrame, ServeReport]:
        """Like :meth:`transform`, also returning the :class:`ServeReport`."""
        plan = self.plan_for(name, version)
        degrade = self.failure_policy == "degrade"
        quarantine: QuarantineReport | None = None
        if isinstance(rows, DataFrame):
            frame = rows
        else:
            frame, quarantine = validate_rows(
                plan, rows, self.limits, strict=not degrade
            )
        rows_in = quarantine.total_rows if quarantine else len(frame)
        if not degrade and self.breakers is None and self.watchdog is None:
            # Strict with no extras: the historical zero-overhead path.
            out = plan.apply(frame)
            report = ServeReport(ApplyReport(policy="strict"), quarantine)
            self.stats_board.record(rows_in=rows_in, rows_served=len(out))
            return out, report
        out, apply_report = plan.apply_with_report(
            frame,
            failure_policy=self.failure_policy,
            breakers=self.breakers,
            watchdog=self.watchdog,
        )
        report = ServeReport(apply_report, quarantine)
        self.stats_board.record(
            rows_in=rows_in,
            rows_served=len(out),
            quarantine=quarantine,
            apply_report=apply_report,
        )
        return out, report

    # ------------------------------------------------------------------
    # Health / stats surface
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cumulative counters: batches, rows, quarantines, per-feature
        success/failure/skip counts, current breaker states."""
        out = self.stats_board.snapshot()
        out["failure_policy"] = self.failure_policy
        out["breakers"] = self.breakers.snapshot() if self.breakers else {}
        with self._lock:
            stats = self._pipeline_stats
        out["pipeline"] = stats.to_dict() if stats is not None else {}
        return out

    def health(self) -> dict:
        """Condensed liveness view: ``status`` is ``"ok"`` when nothing is
        failing, ``"degraded"`` when any feature is failing or any
        breaker is non-closed — the payload says which."""
        stats = self.stats()
        failing = sorted(
            feature
            for feature, counts in stats["features"].items()
            if counts.get("failed", 0) or counts.get("skipped", 0)
        )
        open_breakers = sorted(
            feature
            for feature, snap in stats["breakers"].items()
            if snap["state"] != "closed"
        )
        status = "ok" if not failing and not open_breakers else "degraded"
        return {
            "status": status,
            "failure_policy": self.failure_policy,
            "batches": stats["batches"],
            "rows_served": stats["rows_served"],
            "rows_quarantined": stats["rows_quarantined"],
            "failing_features": failing,
            "open_breakers": open_breakers,
        }
