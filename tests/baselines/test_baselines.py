"""Unit and integration tests for the three baseline AFE methods."""

import math

import pytest

from repro.baselines import (
    AutoFeatLike,
    BaselineTimeoutError,
    CAAFELike,
    Deadline,
    FeaturetoolsDFS,
)
from repro.dataframe import DataFrame
from repro.datasets import load_dataset
from repro.fm import ScriptedFM, SimulatedFM


@pytest.fixture(scope="module")
def tennis():
    return load_dataset("tennis", n_rows=400)


@pytest.fixture(scope="module")
def housing():
    return load_dataset("housing", n_rows=400)


class TestFeaturetoolsDFS:
    def test_generates_all_pairs(self, tennis):
        result = FeaturetoolsDFS(primitives=("add_numeric",), agg_primitives=()).fit_transform(
            tennis.frame, tennis.target
        )
        n = len(tennis.frame.numeric_columns()) - 1  # excl. target
        assert result.n_generated == n * (n - 1) // 2

    def test_agg_primitives_use_categoricals(self, housing):
        result = FeaturetoolsDFS(primitives=(), agg_primitives=("mean",)).fit_transform(
            housing.frame, housing.target
        )
        assert any("by OceanProximity" in c for c in result.new_columns)

    def test_no_categoricals_no_aggs(self, tennis):
        result = FeaturetoolsDFS(primitives=(), agg_primitives=("mean",)).fit_transform(
            tennis.frame, tennis.target
        )
        assert result.n_generated == 0

    def test_selection_drops_correlated(self):
        frame = DataFrame({"a": [1.0, 2.0, 3.0, 4.0], "b": [2.0, 4.0, 6.0, 8.0], "y": [0, 1, 0, 1]})
        result = FeaturetoolsDFS(primitives=("add_numeric",), agg_primitives=()).fit_transform(
            frame, "y"
        )
        # a+b is perfectly correlated with a (and b) -> dropped.
        assert result.new_columns == []
        assert result.n_generated == 1

    def test_context_free_count_larger_than_smartfeat(self, tennis):
        result = FeaturetoolsDFS().fit_transform(tennis.frame, tennis.target)
        assert result.n_generated >= 50  # exhaustive, like the paper's 89

    def test_unknown_primitive_raises(self):
        with pytest.raises(ValueError):
            FeaturetoolsDFS(primitives=("teleport_numeric",))

    def test_deadline_respected(self, tennis):
        with pytest.raises(BaselineTimeoutError):
            FeaturetoolsDFS().fit_transform(
                tennis.frame, tennis.target, deadline=Deadline(seconds=0.0)
            )

    def test_original_frame_untouched(self, tennis):
        before = tennis.frame.columns[:]
        FeaturetoolsDFS().fit_transform(tennis.frame, tennis.target)
        assert tennis.frame.columns == before


class TestAutoFeatLike:
    def test_expansion_scale_matches_paper_order(self, tennis):
        result = AutoFeatLike().fit_transform(tennis.frame, tennis.target)
        assert result.n_generated > 1000  # paper: 1978 on Tennis

    def test_selection_is_small_subset(self, tennis):
        result = AutoFeatLike(max_selected=10).fit_transform(tennis.frame, tennis.target)
        assert 0 < result.n_selected <= 10

    def test_selected_features_are_finite(self, tennis):
        result = AutoFeatLike(max_selected=10).fit_transform(tennis.frame, tennis.target)
        for column in result.new_columns:
            values = result.frame[column]._numeric()
            assert all(math.isfinite(v) for v in values)

    def test_timeout_on_tiny_deadline(self, tennis):
        with pytest.raises(BaselineTimeoutError):
            AutoFeatLike().fit_transform(
                tennis.frame, tennis.target, deadline=Deadline(seconds=0.0)
            )

    def test_selected_correlate_with_target(self, tennis):
        result = AutoFeatLike(max_selected=5).fit_transform(tennis.frame, tennis.target)
        target = result.frame[tennis.target]
        for column in result.new_columns[:3]:
            assert abs(result.frame[column].corr(target)) > 0.05


class TestCAAFELike:
    def test_accepts_only_improvements(self, housing):
        caafe = CAAFELike(SimulatedFM(seed=0), validation_model="lr")
        result = caafe.fit_transform(
            housing.frame,
            housing.target,
            descriptions=housing.descriptions,
            title=housing.title,
        )
        assert result.n_selected <= result.n_generated
        assert result.n_generated <= 10 * 2  # 10 iterations

    def test_housing_ratios_accepted(self, housing):
        """The planted per-household ratios should pass CAAFE validation."""
        caafe = CAAFELike(SimulatedFM(seed=1), validation_model="lr", iterations=10)
        result = caafe.fit_transform(
            housing.frame, housing.target, descriptions=housing.descriptions
        )
        assert result.n_selected >= 1

    def test_broken_fm_yields_no_features(self, housing):
        caafe = CAAFELike(ScriptedFM(lambda p: "I cannot help with that."))
        result = caafe.fit_transform(housing.frame, housing.target)
        assert result.n_selected == 0

    def test_validation_model_trained_each_iteration(self, housing):
        fm = SimulatedFM(seed=0)
        caafe = CAAFELike(fm, validation_model="lr", iterations=3)
        caafe.fit_transform(housing.frame, housing.target, descriptions=housing.descriptions)
        assert fm.ledger.n_calls == 3

    def test_unguarded_division_can_poison_frame(self):
        """The Diabetes failure mechanism: a zero-denominator ratio passes
        CAAFE's lenient validation yet leaves non-finite values behind."""
        diabetes = load_dataset("diabetes", n_rows=500)
        caafe = CAAFELike(SimulatedFM(seed=0), validation_model="lr", iterations=10)
        result = caafe.fit_transform(
            diabetes.frame, diabetes.target, descriptions=diabetes.descriptions
        )
        has_nonfinite = False
        for column in result.new_columns:
            values = result.frame[column]._numeric()
            if not all(math.isfinite(v) for v in values):
                has_nonfinite = True
        division_attempted = any("_div_" in c for c in result.new_columns)
        assert division_attempted or result.n_generated > 0
        # Non-finiteness appears whenever a ratio over Insulin/SkinThickness
        # (zero-inflated) was accepted.
        if any("Insulin" in c and "_div_" not in c for c in result.new_columns):
            pass  # ratio orientation varies; covered by has_nonfinite below
        if division_attempted and any(
            c.endswith(("_div_Insulin", "_div_SkinThickness")) for c in result.new_columns
        ):
            assert has_nonfinite

    def test_deadline(self, housing):
        caafe = CAAFELike(SimulatedFM(seed=0))
        with pytest.raises(BaselineTimeoutError):
            caafe.fit_transform(
                housing.frame, housing.target, deadline=Deadline(seconds=0.0)
            )
