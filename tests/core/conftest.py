"""Shared fixtures: the paper's Table 1 motivating example."""

import pytest

from repro.core import DataAgenda
from repro.dataframe import DataFrame


def make_insurance_frame() -> DataFrame:
    """Table 1 of the paper, tiled to a workable size."""
    return DataFrame(
        {
            "Sex": ["M", "F", "M", "F", "M", "F"] * 20,
            "Age": [21, 35, 42, 22, 45, 56, 30, 28, 61, 33, 24, 39] * 10,
            "Age of car": [6, 2, 8, 14, 3, 5, 1, 9, 4, 7, 12, 2] * 10,
            "Make Model": [
                "Honda, Civic",
                "Toyota, Corolla",
                "Ford, Mustang",
                "Chevrolet, Cruze",
                "BMW, X5",
                "Volkswagen, Golf",
            ]
            * 20,
            "Claim in last 6 months": [1, 0, 0, 1, 0, 0, 0, 1, 0, 0, 1, 0] * 10,
            "City": ["SF", "LA", "SEA", "SF", "SEA", "LA"] * 20,
            "Safe": [0, 1, 1, 0, 1, 1, 1, 0, 1, 1, 0, 1] * 10,
        }
    )


INSURANCE_DESCRIPTIONS = {
    "Sex": "Sex of the policyholder",
    "Age": "Age of the policyholder in years",
    "Age of car": "Age of the insured car in years",
    "Make Model": "Make and model of the insured car",
    "Claim in last 6 months": "Whether the policyholder filed a claim in the last 6 months",
    "City": "City of residence",
}


@pytest.fixture
def insurance_frame():
    return make_insurance_frame()


@pytest.fixture
def insurance_descriptions():
    return dict(INSURANCE_DESCRIPTIONS)


@pytest.fixture
def insurance_agenda(insurance_frame, insurance_descriptions):
    return DataAgenda.from_dataframe(
        insurance_frame,
        target="Safe",
        descriptions=insurance_descriptions,
        title="Car insurance policyholders (insurance claims)",
        target_description="1 = safe, unlikely to file a claim in the next 6 months",
        model="decision_tree",
    )
