"""Unit tests for :mod:`repro.core.agenda`."""

import pytest

from repro.core import DataAgenda
from repro.dataframe import DataFrame


class TestFromDataframe:
    def test_target_excluded(self, insurance_agenda):
        assert "Safe" not in insurance_agenda

    def test_kinds_inferred(self, insurance_agenda):
        assert insurance_agenda.entries["Age"].kind == "numeric"
        assert insurance_agenda.entries["City"].kind == "categorical"
        assert insurance_agenda.entries["Claim in last 6 months"].kind == "binary"

    def test_categorical_values_listed(self, insurance_agenda):
        assert insurance_agenda.entries["City"].values == ["SF", "LA", "SEA"]

    def test_high_cardinality_values_omitted(self):
        frame = DataFrame({"id": [f"u{i}" for i in range(50)], "y": [0, 1] * 25})
        agenda = DataAgenda.from_dataframe(frame, target="y")
        assert agenda.entries["id"].values == []

    def test_missing_target_raises(self, insurance_frame):
        with pytest.raises(KeyError):
            DataAgenda.from_dataframe(insurance_frame, target="nope")

    def test_descriptions_optional(self, insurance_frame):
        agenda = DataAgenda.from_dataframe(insurance_frame, target="Safe")
        assert agenda.entries["Age"].description == ""


class TestDescribe:
    def test_contains_all_sections(self, insurance_agenda):
        text = insurance_agenda.describe()
        assert text.startswith("Dataset description: Car insurance")
        assert "Features:" in text
        assert "- Age (numeric): Age of the policyholder in years" in text
        assert "- City (categorical, values: SF|LA|SEA): City of residence" in text
        assert "Prediction class: Safe — 1 = safe" in text
        assert "Downstream model: decision_tree" in text

    def test_untitled_dataset(self):
        frame = DataFrame({"x": [1, 2], "y": [0, 1]})
        agenda = DataAgenda.from_dataframe(frame, target="y")
        assert "untitled dataset" in agenda.describe()

    def test_model_line_omitted_when_unset(self):
        frame = DataFrame({"x": [1, 2], "y": [0, 1]})
        agenda = DataAgenda.from_dataframe(frame, target="y")
        assert "Downstream model" not in agenda.describe()


class TestMutation:
    def test_add_and_contains(self, insurance_agenda):
        insurance_agenda.add("new_feat", "numeric", "binary[-]: diff")
        assert "new_feat" in insurance_agenda
        assert "- new_feat (numeric): binary[-]: diff" in insurance_agenda.describe()

    def test_add_invalid_kind_raises(self, insurance_agenda):
        with pytest.raises(ValueError):
            insurance_agenda.add("x", "fancy", "desc")

    def test_remove(self, insurance_agenda):
        insurance_agenda.remove("Age")
        assert "Age" not in insurance_agenda

    def test_remove_missing_is_noop(self, insurance_agenda):
        insurance_agenda.remove("nope")

    def test_copy_is_deep(self, insurance_agenda):
        copy = insurance_agenda.copy()
        copy.add("extra", "numeric", "d")
        copy.entries["Age"].description = "changed"
        assert "extra" not in insurance_agenda
        assert insurance_agenda.entries["Age"].description != "changed"

    def test_feature_name_helpers(self, insurance_agenda):
        assert "Age" in insurance_agenda.numeric_features()
        assert "City" in insurance_agenda.categorical_features()
