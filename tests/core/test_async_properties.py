"""Property-based serial == threaded == async equivalence.

`tests/core/test_concurrent_properties.py` proved the serial and
thread-pool executors interchangeable on seeded clients; this suite
extends the same discipline to :class:`~repro.fm.executor.AsyncFMExecutor`
— the asyncio backend must be a pure infrastructure swap too, over random
family subsets, wave sizes, concurrency levels, and injected 429 retries.
Identity is checked at full strength: frames (bit-level), accepted-feature
*order*, and ledger call counts.

Also here: the regression tests for the removed ``generator.timer``
thread-local fallback — timers are only ever passed explicitly, so
physically concurrent stages can never cross their accounting.
"""

import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SmartFeat
from repro.core.function_generator import FunctionGenerator
from repro.core.timing import StageTimer
from repro.core.types import FeatureCandidate, OperatorFamily
from repro.dataframe import DataFrame
from repro.eval.efficiency import _frames_identical
from repro.fm import (
    AsyncFMExecutor,
    FMRateLimitError,
    FMRequest,
    RetryPolicy,
    ScriptedFM,
    SerialExecutor,
    SimulatedFM,
    ThreadPoolFMExecutor,
)

FAMILY_SUBSETS = [
    (
        OperatorFamily.UNARY,
        OperatorFamily.BINARY,
        OperatorFamily.HIGH_ORDER,
        OperatorFamily.EXTRACTOR,
    ),
    (OperatorFamily.UNARY, OperatorFamily.BINARY, OperatorFamily.HIGH_ORDER),
    (OperatorFamily.UNARY, OperatorFamily.HIGH_ORDER, OperatorFamily.EXTRACTOR),
    (OperatorFamily.BINARY, OperatorFamily.HIGH_ORDER, OperatorFamily.EXTRACTOR),
    (OperatorFamily.UNARY, OperatorFamily.EXTRACTOR),
    (OperatorFamily.BINARY, OperatorFamily.HIGH_ORDER),
]


def small_frame() -> DataFrame:
    return DataFrame(
        {
            "Age": [21, 35, 42, 22, 45, 56, 30, 28] * 6,
            "Income": [10.0, 25.0, 18.5, 40.0, 31.0, 22.0, 15.5, 60.0] * 6,
            "City": ["SF", "LA", "SEA", "SF", "SEA", "LA", "SF", "LA"] * 6,
            "Target": [0, 1, 1, 0, 1, 1, 0, 1] * 6,
        }
    )


DESCRIPTIONS = {
    "Age": "Age of the customer in years",
    "Income": "Annual income in thousands of dollars",
    "City": "City of residence",
}


class RateLimitedSimulatedFM(SimulatedFM):
    """SimulatedFM that 429s once per *fail_every*-th reserved call.

    Failures key on the reserved counter value, so every backend (which
    issues the same call sequence) hits identical failures at identical
    positions; the retry reserves fresh state exactly like a real
    re-issued call.
    """

    def __init__(self, fail_every: int, **kwargs) -> None:
        super().__init__(**kwargs)
        self.fail_every = fail_every
        self._failed: set[int] = set()
        self._failed_lock = threading.Lock()

    def _complete_with_state(self, prompt, temperature, state):
        if isinstance(state, int) and state % self.fail_every == 0:
            with self._failed_lock:
                fresh = state not in self._failed
                self._failed.add(state)
            if fresh:
                raise FMRateLimitError(f"simulated 429 at call {state}")
        return super()._complete_with_state(prompt, temperature, state)


def _fingerprint(result, clients):
    return (
        list(result.new_features),  # accepted-feature ORDER, not just set
        result.dropped,
        result.errors,
        sorted(result.rejections),
        [(c.ledger.n_calls, c.ledger.cache_hits) for c in clients],
    )


def _run_pipeline(executor, seed, wave_size, families, fail_every=None):
    if fail_every is not None:
        fm = RateLimitedSimulatedFM(fail_every, seed=seed, model="gpt-4")
        function_fm = RateLimitedSimulatedFM(
            fail_every, seed=seed + 1, model="gpt-3.5-turbo"
        )
    else:
        fm = SimulatedFM(seed=seed, model="gpt-4")
        function_fm = SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo")
    tool = SmartFeat(
        fm=fm,
        function_fm=function_fm,
        downstream_model="decision_tree",
        executor=executor,
        wave_size=wave_size,
        operator_families=families,
    )
    result = tool.fit_transform(
        small_frame(), target="Target", descriptions=dict(DESCRIPTIONS)
    )
    return result, _fingerprint(result, (fm, function_fm))


# ----------------------------------------------------------------------
# Executor-level: random batches, three backends, one answer.
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=50),
    concurrency=st.integers(min_value=2, max_value=8),
    batch_sizes=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=4),
    temperature_pattern=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_simulator_batches_identical_across_three_backends(
    seed, concurrency, batch_sizes, temperature_pattern
):
    def run(executor):
        fm = SimulatedFM(seed=seed)
        texts = []
        call = 0
        for size in batch_sizes:
            requests = [
                FMRequest(
                    f"prompt {call + i}",
                    0.0 if (call + i) % temperature_pattern else 0.7,
                )
                for i in range(size)
            ]
            call += size
            texts.extend(r.response.text for r in executor.run(fm, requests))
        return texts, fm.ledger.snapshot(), executor.stats.summed_latency_s

    serial = run(SerialExecutor())
    with ThreadPoolFMExecutor(concurrency) as pool:
        threaded = run(pool)
    with AsyncFMExecutor(concurrency) as loop:
        asynced = run(loop)
    assert serial == threaded == asynced


# ----------------------------------------------------------------------
# Pipeline-level: random family subsets, wave sizes, concurrencies.
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=5),
    wave_size=st.integers(min_value=1, max_value=6),
    concurrency=st.integers(min_value=2, max_value=8),
    families=st.sampled_from(FAMILY_SUBSETS),
)
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_pipeline_identical_across_three_backends(
    seed, wave_size, concurrency, families
):
    serial_result, serial_fp = _run_pipeline(
        SerialExecutor(), seed, wave_size, families
    )
    with ThreadPoolFMExecutor(concurrency) as pool:
        threaded_result, threaded_fp = _run_pipeline(pool, seed, wave_size, families)
    with AsyncFMExecutor(concurrency) as loop:
        async_result, async_fp = _run_pipeline(loop, seed, wave_size, families)
    assert serial_fp == threaded_fp == async_fp
    assert _frames_identical(serial_result.frame, async_result.frame)
    assert _frames_identical(threaded_result.frame, async_result.frame)


# ----------------------------------------------------------------------
# Injected 429s: retries must not perturb thread == async equivalence.
# (Serial is excluded *with retries on* by design: it reserves state
# lazily, so a retry consumes the next slot and later calls shift —
# the documented batch-reservation divergence from PR 2.  Both batch
# backends reserve up front and must stay bit-identical.)
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=3),
    wave_size=st.integers(min_value=1, max_value=4),
    concurrency=st.integers(min_value=2, max_value=6),
    fail_every=st.integers(min_value=3, max_value=9),
)
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_injected_429s_identical_thread_vs_async(
    seed, wave_size, concurrency, fail_every
):
    retry = RetryPolicy(max_attempts=3)
    families = (OperatorFamily.UNARY, OperatorFamily.BINARY, OperatorFamily.HIGH_ORDER)
    with ThreadPoolFMExecutor(concurrency, retry=retry) as pool:
        threaded_result, threaded_fp = _run_pipeline(
            pool, seed, wave_size, families, fail_every=fail_every
        )
    with AsyncFMExecutor(concurrency, retry=retry) as loop:
        async_result, async_fp = _run_pipeline(
            loop, seed, wave_size, families, fail_every=fail_every
        )
    assert threaded_fp == async_fp
    assert _frames_identical(threaded_result.frame, async_result.frame)


@given(
    seed=st.integers(min_value=0, max_value=3),
    wave_size=st.integers(min_value=1, max_value=4),
    concurrency=st.integers(min_value=2, max_value=6),
    fail_every=st.integers(min_value=3, max_value=9),
)
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_injected_429s_without_retries_identical_across_all_backends(
    seed, wave_size, concurrency, fail_every
):
    """With retries off, a 429 is just a deterministic stage error — it
    consumes exactly its reserved slot on every backend, so all three
    stay bit-identical including the error bookkeeping."""
    families = (OperatorFamily.UNARY, OperatorFamily.BINARY, OperatorFamily.HIGH_ORDER)
    serial_result, serial_fp = _run_pipeline(
        SerialExecutor(), seed, wave_size, families, fail_every=fail_every
    )
    with ThreadPoolFMExecutor(concurrency) as pool:
        _, threaded_fp = _run_pipeline(
            pool, seed, wave_size, families, fail_every=fail_every
        )
    with AsyncFMExecutor(concurrency) as loop:
        async_result, async_fp = _run_pipeline(
            loop, seed, wave_size, families, fail_every=fail_every
        )
    assert serial_fp == threaded_fp == async_fp
    assert _frames_identical(serial_result.frame, async_result.frame)


# ----------------------------------------------------------------------
# Regression: the generator.timer thread-local fallback is gone — timers
# are explicit, and concurrent stages can never share one.
# ----------------------------------------------------------------------
GOOD_CODE = "```python\ndef transform(df):\n    return df['Age'] - df['Income']\n```"


def _candidate(name: str) -> FeatureCandidate:
    return FeatureCandidate(
        name=name,
        columns=["Age", "Income"],
        description=f"binary[-]: {name}",
        family=OperatorFamily.BINARY,
    )


def test_generator_timer_fallback_removed():
    generator = FunctionGenerator(ScriptedFM(lambda prompt: GOOD_CODE))
    assert not hasattr(generator, "timer")
    assert not hasattr(generator, "_timer_slot")


def test_no_timer_means_no_accounting_anywhere():
    """With no explicit timer there is nothing to fall back to: the
    realization still works and no shared state accumulates a window."""
    generator = FunctionGenerator(ScriptedFM(lambda prompt: GOOD_CODE))
    from repro.core.agenda import DataAgenda

    frame = small_frame()
    agenda = DataAgenda.from_dataframe(frame, target="Target")
    realized = generator.realize(_candidate("gap"), agenda, frame)
    assert "gap" in realized.values


def test_concurrent_stages_never_share_a_timer():
    """Two threads realizing through ONE shared generator, each with its
    own explicit StageTimer: every sandboxed transform accounts against
    exactly the timer its stage passed — none leak across threads."""
    generator = FunctionGenerator(ScriptedFM(lambda prompt: GOOD_CODE))
    from repro.core.agenda import DataAgenda

    frame = small_frame()
    agenda = DataAgenda.from_dataframe(frame, target="Target")
    counts = {"a": 3, "b": 5}
    timers = {name: StageTimer() for name in counts}
    barrier = threading.Barrier(len(counts))
    failures: list[BaseException] = []

    def stage(name: str) -> None:
        try:
            barrier.wait(timeout=10)
            candidates = [_candidate(f"{name}_{i}") for i in range(counts[name])]
            outcomes = generator.realize_batch(
                candidates, agenda, frame, timer=timers[name]
            )
            assert all(not isinstance(o, Exception) for o in outcomes)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=stage, args=(name,), name=f"stage-{name}")
        for name in counts
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures
    for name, expected in counts.items():
        snapshot = timers[name].snapshot()
        assert snapshot["transform_exec"]["calls"] == expected, (
            f"stage {name} expected {expected} transform executions on its own "
            f"timer, saw {snapshot}"
        )
