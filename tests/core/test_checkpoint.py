"""Checkpointed search state: snapshot, restore, and kill-and-resume.

The acceptance bar: kill ``fit_transform`` mid-graph, resume from the
checkpoint, and get a bit-identical output frame with **zero** re-spent
FM calls — the resumed run's ledgers equal the uninterrupted run's,
because the completed stages are restored rather than re-bought and the
clients' per-call state resumes exactly where the paid-for work left it.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import CheckpointMismatchError, CheckpointStore, SmartFeat
from repro.core.checkpoint import fingerprint
from repro.dataframe import DataFrame
from repro.fm import Budget, SimulatedFM


def small_frame() -> DataFrame:
    return DataFrame(
        {
            "Age": [21, 35, 42, 22, 45, 56, 30, 28] * 6,
            "Income": [10.0, 25.0, 18.5, 40.0, 31.0, 22.0, 15.5, 60.0] * 6,
            "City": ["SF", "LA", "SEA", "SF", "SEA", "LA", "SF", "LA"] * 6,
            "Target": [0, 1, 1, 0, 1, 1, 0, 1] * 6,
        }
    )


DESCRIPTIONS = {
    "Age": "Age of the customer in years",
    "Income": "Annual income in thousands of dollars",
    "City": "City of residence",
}


class KillSignal(BaseException):
    """Simulates a process kill: not an ``Exception``, so no error-path
    handling in the pipeline can swallow it."""


def make_tool(checkpoint=None, resume=False, budget=None) -> SmartFeat:
    return SmartFeat(
        fm=SimulatedFM(seed=0, model="gpt-4"),
        function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
        downstream_model="decision_tree",
        checkpoint=checkpoint,
        resume=resume,
        budget=budget,
    )


def fit(tool: SmartFeat):
    return tool.fit_transform(
        small_frame(), target="Target", descriptions=dict(DESCRIPTIONS)
    )


def install_kill_switch(tool: SmartFeat, kill_after: int) -> dict:
    """Raise :class:`KillSignal` once *kill_after* total FM calls ran."""
    count = {"n": 0}
    lock = threading.Lock()
    for client in (tool.fm, tool.function_fm):
        original = client._complete_with_state

        def killer(prompt, temperature, state, _original=original):
            with lock:
                count["n"] += 1
                n = count["n"]
            if n > kill_after:
                raise KillSignal("simulated kill")
            return _original(prompt, temperature, state)

        client._complete_with_state = killer
    return count


def frames_equal(a, b) -> bool:
    if a.columns != b.columns or len(a) != len(b):
        return False
    for column in a.columns:
        left, right = a[column].to_numpy(), b[column].to_numpy()
        if left.dtype.kind == "f":
            if not np.allclose(left, right, equal_nan=True):
                return False
        elif not (left == right).all():
            return False
    return True


def total_calls(tool: SmartFeat) -> int:
    return tool.fm.ledger.n_calls + tool.function_fm.ledger.n_calls


def total_cost(tool: SmartFeat) -> float:
    return tool.fm.ledger.cost_usd + tool.function_fm.ledger.cost_usd


@pytest.fixture(scope="module")
def baseline():
    tool = make_tool()
    result = fit(tool)
    return result, total_calls(tool), total_cost(tool)


# ----------------------------------------------------------------------
# CheckpointStore
# ----------------------------------------------------------------------
def test_store_roundtrip(tmp_path):
    store = CheckpointStore(tmp_path / "run.json")
    assert not store.exists()
    assert store.load() is None
    store.save({"version": 1, "completed": ["unary"]})
    assert store.exists()
    assert store.load() == {"version": 1, "completed": ["unary"]}
    store.clear()
    assert store.load() is None
    store.clear()  # idempotent


def test_store_writes_atomically(tmp_path):
    store = CheckpointStore(tmp_path / "run.json")
    store.save({"generation": 1})
    store.save({"generation": 2})
    # No temp residue; the file is always one complete JSON document.
    assert [p.name for p in tmp_path.iterdir()] == ["run.json"]
    assert store.load() == {"generation": 2}


def test_store_creates_parent_directories(tmp_path):
    store = CheckpointStore(tmp_path / "deep" / "nested" / "run.json")
    store.save({"ok": True})
    assert store.load() == {"ok": True}


def test_store_serialises_numpy_scalars(tmp_path):
    store = CheckpointStore(tmp_path / "run.json")
    store.save({"i": np.int64(3), "f": np.float64(1.5), "b": np.bool_(True)})
    assert store.load() == {"i": 3, "f": 1.5, "b": True}


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def test_fingerprint_tracks_schema_rows_target_title():
    frame = small_frame()
    base = fingerprint(frame, "Target", "t")
    assert base == fingerprint(small_frame(), "Target", "t")
    assert base != fingerprint(frame, "Age", "t")
    assert base != fingerprint(frame, "Target", "other")
    shorter = DataFrame({c: frame[c].tolist()[:10] for c in frame.columns})
    assert base != fingerprint(shorter, "Target", "t")


def test_resume_against_different_data_fails_loudly(tmp_path):
    path = tmp_path / "run.json"
    fit(make_tool(checkpoint=str(path)))
    other = small_frame()
    other["Extra"] = [1.0] * len(other)
    tool = make_tool(checkpoint=str(path), resume=True)
    with pytest.raises(CheckpointMismatchError, match="fingerprint"):
        tool.fit_transform(other, target="Target", descriptions=dict(DESCRIPTIONS))


def test_unknown_checkpoint_version_rejected(tmp_path):
    path = tmp_path / "run.json"
    fit(make_tool(checkpoint=str(path)))
    payload = json.loads(path.read_text())
    payload["version"] = 999
    path.write_text(json.dumps(payload))
    tool = make_tool(checkpoint=str(path), resume=True)
    with pytest.raises(CheckpointMismatchError, match="version"):
        fit(tool)


# ----------------------------------------------------------------------
# Construction contract
# ----------------------------------------------------------------------
def test_resume_requires_a_checkpoint():
    with pytest.raises(ValueError, match="resume"):
        make_tool(resume=True)


def test_checkpoint_accepts_path_or_store(tmp_path):
    by_path = make_tool(checkpoint=str(tmp_path / "a.json"))
    assert isinstance(by_path.checkpoint, CheckpointStore)
    store = CheckpointStore(tmp_path / "b.json")
    assert make_tool(checkpoint=store).checkpoint is store


# ----------------------------------------------------------------------
# Checkpointing must not perturb the run it rides along with.
# ----------------------------------------------------------------------
def test_checkpointed_run_is_identical_to_plain_run(tmp_path, baseline):
    base_result, base_calls, base_cost = baseline
    tool = make_tool(checkpoint=str(tmp_path / "run.json"))
    result = fit(tool)
    assert sorted(result.new_features) == sorted(base_result.new_features)
    assert frames_equal(result.frame, base_result.frame)
    assert total_calls(tool) == base_calls
    store = tool.checkpoint
    payload = store.load()
    assert payload is not None
    # The final checkpoint records every stage node as completed.
    assert "unary" in payload["completed"]


def test_resume_with_no_checkpoint_file_runs_fresh(tmp_path, baseline):
    base_result, base_calls, _ = baseline
    tool = make_tool(checkpoint=str(tmp_path / "absent.json"), resume=True)
    result = fit(tool)
    assert sorted(result.new_features) == sorted(base_result.new_features)
    assert total_calls(tool) == base_calls


# ----------------------------------------------------------------------
# The acceptance test: kill mid-graph, resume, bit-identical, $0 re-spend.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fraction", [0.3, 0.6, 0.85])
def test_kill_and_resume_is_bit_identical_with_zero_respend(
    tmp_path, baseline, fraction
):
    base_result, base_calls, base_cost = baseline
    kill_after = max(1, int(base_calls * fraction))
    path = tmp_path / f"kill{kill_after}.json"

    killed = make_tool(checkpoint=str(path))
    install_kill_switch(killed, kill_after)
    with pytest.raises(KillSignal):
        fit(killed)

    resumed = make_tool(checkpoint=str(path), resume=True)
    result = fit(resumed)

    assert sorted(result.new_features) == sorted(base_result.new_features)
    assert frames_equal(result.frame, base_result.frame)
    # Ledger-verified zero re-spend: restored stages were not re-bought,
    # so the resumed ledgers total exactly the uninterrupted run's.
    assert total_calls(resumed) == base_calls
    assert total_cost(resumed) == pytest.approx(base_cost, abs=1e-5)


def test_restored_stages_issue_no_fm_calls(tmp_path, baseline):
    """Kill late enough that whole stages completed, then count only the
    resumed run's own calls: completed stages must contribute zero."""
    base_result, base_calls, _ = baseline
    path = tmp_path / "late_kill.json"
    killed = make_tool(checkpoint=str(path))
    install_kill_switch(killed, base_calls - 4)
    with pytest.raises(KillSignal):
        fit(killed)
    payload = CheckpointStore(path).load()
    assert payload is not None and payload["completed"], (
        "kill point too early: no stage completed, weak test"
    )
    checkpointed_calls = sum(
        record["ledger"]["n_calls"] for record in payload["clients"]
    )
    resumed = make_tool(checkpoint=str(path), resume=True)
    result = fit(resumed)
    # Fresh spend on the resumed run = total - restored: it must equal
    # what the uninterrupted run spent on the remaining stages.
    assert total_calls(resumed) - checkpointed_calls == base_calls - checkpointed_calls
    assert total_calls(resumed) == base_calls
    schedule = result.fm_usage["execution"]["schedule"]
    restored = [
        node for node in schedule["nodes"] if node["status"] == "restored"
    ]
    assert {node["name"] for node in restored} == set(payload["completed"])
    assert all(node["fm_calls"] == 0 for node in restored)
    # Restored nodes never re-enter the dispatch order.
    assert not set(schedule["dispatch_order"]) & set(payload["completed"])


def test_resume_restores_budget_spend(tmp_path):
    budget = Budget(max_cost_usd=100.0)
    path = tmp_path / "budgeted.json"
    killed = make_tool(checkpoint=str(path), budget=budget)
    install_kill_switch(killed, 24)
    with pytest.raises(KillSignal):
        fit(killed)
    payload = CheckpointStore(path).load()
    assert payload["budget"] is not None
    saved_cost = payload["budget"]["spent_cost_usd"]
    assert saved_cost > 0
    fresh_budget = Budget(max_cost_usd=100.0)
    resumed = make_tool(checkpoint=str(path), resume=True, budget=fresh_budget)
    fit(resumed)
    # The resumed budget starts from the checkpointed spend, not zero.
    assert fresh_budget.snapshot()["spent_cost_usd"] >= saved_cost


def test_client_count_mismatch_rejected(tmp_path):
    from repro.core import DataAgenda
    from repro.core.checkpoint import restore_run
    from repro.core.pipeline import ORIGINALS_TAG, SmartFeatResult, StageContext
    from repro.core.timing import StageTimer

    path = tmp_path / "run.json"
    fit(make_tool(checkpoint=str(path)))
    payload = CheckpointStore(path).load()
    payload["clients"] = payload["clients"][:1]
    tool = make_tool(checkpoint=str(path), resume=True)
    frame = small_frame()
    working = frame.copy()
    ctx = StageContext(
        working=working,
        agenda=DataAgenda.from_dataframe(
            frame, target="Target", descriptions=dict(DESCRIPTIONS)
        ),
        result=SmartFeatResult(frame=working),
        original_features=[c for c in frame.columns if c != "Target"],
        target="Target",
        timer=StageTimer(),
        column_tags={c: ORIGINALS_TAG for c in frame.columns},
    )
    with pytest.raises(CheckpointMismatchError, match="client"):
        restore_run(
            payload,
            ctx,
            (tool.fm, tool.function_fm),
            None,
            fingerprint(frame, "Target", ""),
        )
