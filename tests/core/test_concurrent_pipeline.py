"""Serial-vs-concurrent pipeline equivalence and wave-execution edge cases.

The executor backend is infrastructure: with identical wave semantics
(`wave_size` fixed), a thread-pool run must accept exactly the features a
serial run accepts, with identical ledger totals — only the modelled
critical-path latency may differ.  These tests pin that contract, the
speculative wave's error-threshold semantics, duplicate-candidate
counting, and the warm-cache guarantee.
"""

import json

import pytest

from repro.core import SmartFeat
from repro.core.types import OperatorFamily
from repro.fm import (
    FMCache,
    ScriptedFM,
    SerialExecutor,
    SimulatedFM,
    ThreadPoolFMExecutor,
)

CONCURRENCY = 8

BINARY_JSON = json.dumps(
    {
        "operator": "-",
        "columns": ["Age", "Age of car"],
        "name": "age_gap",
        "description": "binary[-]: difference of Age and Age of car",
    }
)
GOOD_CODE = "```python\ndef transform(df):\n    return df['Age'] - df['Age of car']\n```"


def _run(frame, descriptions, executor, wave_size, seed=0, **kwargs):
    fm = SimulatedFM(seed=seed, model="gpt-4")
    function_fm = SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo")
    tool = SmartFeat(
        fm=fm,
        function_fm=function_fm,
        downstream_model="decision_tree",
        executor=executor,
        wave_size=wave_size,
        **kwargs,
    )
    result = tool.fit_transform(
        frame,
        target="Safe",
        descriptions=descriptions,
        title="Car insurance policyholders (insurance claims)",
        target_description="1 = safe, unlikely to file a claim in the next 6 months",
    )
    return result, fm, function_fm, tool


class TestSerialConcurrentEquivalence:
    @pytest.fixture(scope="class")
    def pair(self, request):
        from tests.core.conftest import INSURANCE_DESCRIPTIONS, make_insurance_frame

        descriptions = dict(INSURANCE_DESCRIPTIONS)
        serial = _run(
            make_insurance_frame(), descriptions, SerialExecutor(), CONCURRENCY
        )
        threaded = _run(
            make_insurance_frame(),
            descriptions,
            ThreadPoolFMExecutor(CONCURRENCY),
            CONCURRENCY,
        )
        return serial, threaded

    def test_identical_accepted_features(self, pair):
        (serial, *_), (threaded, *_) = pair
        assert sorted(serial.new_features) == sorted(threaded.new_features)
        assert serial.new_columns == threaded.new_columns
        assert serial.dropped == threaded.dropped

    def test_identical_rejections_and_errors(self, pair):
        (serial, *_), (threaded, *_) = pair
        assert serial.rejections == threaded.rejections
        assert serial.errors == threaded.errors

    def test_identical_ledger_totals(self, pair):
        (_, s_fm, s_ffm, _), (_, t_fm, t_ffm, _) = pair
        assert s_fm.ledger.snapshot() == t_fm.ledger.snapshot()
        assert s_ffm.ledger.snapshot() == t_ffm.ledger.snapshot()

    def test_identical_generated_code(self, pair):
        (serial, *_), (threaded, *_) = pair
        for name, feature in serial.new_features.items():
            assert threaded.new_features[name].source_code == feature.source_code

    def test_summed_latency_identical_critical_path_shorter(self, pair):
        (serial, *_, s_tool), (threaded, *_, t_tool) = pair
        s_stats = s_tool.executor.stats
        t_stats = t_tool.executor.stats
        assert s_stats.summed_latency_s == pytest.approx(t_stats.summed_latency_s)
        assert s_stats.critical_path_s == pytest.approx(s_stats.summed_latency_s)
        # The acceptance bar: >= 3x shorter critical path at concurrency 8.
        assert t_stats.critical_path_s <= s_stats.critical_path_s / 3.0

    def test_execution_usage_reported(self, pair):
        (_, *_, s_tool), (threaded, *_, t_tool) = pair
        del s_tool
        execution = threaded.fm_usage["execution"]
        assert execution["concurrency"] == CONCURRENCY
        assert execution["wave_size"] == CONCURRENCY
        assert execution["critical_path_s"] < execution["summed_latency_s"]
        assert t_tool.executor.concurrency == CONCURRENCY


class TestWaveSemantics:
    def test_error_threshold_stops_between_waves(self, insurance_frame):
        """A wave of garbage stops the stage at the threshold without
        issuing the next wave; the in-flight wave is already spent."""
        fm = ScriptedFM(lambda prompt: "garbage that parses to nothing")
        tool = SmartFeat(
            fm=fm,
            sampling_budget=12,
            error_threshold=2,
            operator_families=(OperatorFamily.BINARY,),
            downstream_model="decision_tree",
            wave_size=4,
        )
        result = tool.fit_transform(insurance_frame, target="Safe")
        assert result.errors["binary"] == 2  # stopped at the threshold
        assert fm.ledger.n_calls == 4  # one speculative wave, not the budget

    def test_wave_size_one_matches_seed_serial_loop(self, insurance_frame):
        fm = ScriptedFM(lambda prompt: "garbage that parses to nothing")
        tool = SmartFeat(
            fm=fm,
            sampling_budget=10,
            error_threshold=2,
            operator_families=(OperatorFamily.BINARY,),
            downstream_model="decision_tree",
            wave_size=1,
        )
        result = tool.fit_transform(insurance_frame, target="Safe")
        assert result.errors["binary"] == 2
        assert fm.ledger.n_calls == 2  # no speculation at wave size 1

    def test_duplicate_candidates_count_as_errors(self, insurance_frame):
        """The same candidate re-sampled within or across waves counts
        toward the error threshold (the paper's repeated-feature rule)."""
        fm = ScriptedFM(lambda prompt: BINARY_JSON)
        function_fm = ScriptedFM(lambda prompt: GOOD_CODE)
        tool = SmartFeat(
            fm=fm,
            function_fm=function_fm,
            sampling_budget=10,
            error_threshold=3,
            operator_families=(OperatorFamily.BINARY,),
            downstream_model="decision_tree",
            wave_size=2,
        )
        result = tool.fit_transform(insurance_frame, target="Safe")
        assert "age_gap" in result.new_features  # first draw accepted
        assert result.errors["binary"] == 3  # duplicates hit the threshold
        # Wave 1: accept + dup.  Wave 2: dup + dup -> threshold.  4 draws.
        assert fm.ledger.n_calls == 4

    def test_invalid_wave_size_rejected(self):
        with pytest.raises(ValueError):
            SmartFeat(fm=SimulatedFM(seed=0), wave_size=0)

    def test_wave_size_independent_of_executor(self):
        """The executor is infrastructure: swapping it must not change
        the search semantics, so wave_size defaults to 1 regardless."""
        serial_tool = SmartFeat(fm=SimulatedFM(seed=0))
        assert serial_tool.wave_size == 1
        threaded_tool = SmartFeat(
            fm=SimulatedFM(seed=0), executor=ThreadPoolFMExecutor(6)
        )
        assert threaded_tool.wave_size == 1

    def test_default_backend_swap_is_behavior_preserving(self, insurance_frame, insurance_descriptions):
        serial, s_fm, *_ = _run(
            insurance_frame.copy(), insurance_descriptions, SerialExecutor(), None
        )
        threaded, t_fm, *_ = _run(
            insurance_frame.copy(),
            insurance_descriptions,
            ThreadPoolFMExecutor(8),
            None,
        )
        assert sorted(serial.new_features) == sorted(threaded.new_features)
        assert s_fm.ledger.snapshot() == t_fm.ledger.snapshot()


class TestWarmCache:
    def test_repeat_run_issues_zero_new_temperature0_calls(
        self, insurance_frame, insurance_descriptions
    ):
        cache = FMCache()

        def run():
            return _run(
                insurance_frame.copy(),
                insurance_descriptions,
                SerialExecutor(),
                1,
                cache=cache,
            )

        cold, *_ = run()
        cold_snapshot = cache.snapshot()
        assert cold_snapshot["misses"] > 0 and cold_snapshot["hits"] == 0
        warm, warm_fm, warm_ffm, _ = run()
        warm_snapshot = cache.snapshot()
        # Zero new temperature-0 executions: the miss count did not move.
        assert warm_snapshot["misses"] == cold_snapshot["misses"]
        assert warm_snapshot["hits"] == cold_snapshot["misses"]
        assert warm_fm.ledger.cache_hits + warm_ffm.ledger.cache_hits > 0
        # And the warm run reproduces the cold run's features exactly.
        assert sorted(warm.new_features) == sorted(cold.new_features)

    def test_warm_run_is_cheaper(self, insurance_frame, insurance_descriptions):
        cache = FMCache()
        _, cold_fm, cold_ffm, _ = _run(
            insurance_frame.copy(),
            insurance_descriptions,
            SerialExecutor(),
            1,
            cache=cache,
        )
        _, warm_fm, warm_ffm, _ = _run(
            insurance_frame.copy(),
            insurance_descriptions,
            SerialExecutor(),
            1,
            cache=cache,
        )
        cold_cost = cold_fm.ledger.cost_usd + cold_ffm.ledger.cost_usd
        warm_cost = warm_fm.ledger.cost_usd + warm_ffm.ledger.cost_usd
        assert warm_cost < cold_cost
