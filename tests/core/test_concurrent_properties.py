"""Property-based serial/threaded equivalence over the concurrency stack.

`tests/core/test_concurrent_pipeline.py` pins fixed-case equivalence;
these properties generalise it: for *random* wave sizes, concurrency
levels, and scripted-client schedules, the serial and thread-pool
executors must yield bit-identical pipeline outputs and ledger totals.
Hypothesis drives the search; example counts are capped because every
example runs a full (small) pipeline.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SmartFeat
from repro.core.types import OperatorFamily
from repro.dataframe import DataFrame
from repro.fm import (
    FMRequest,
    ScriptedFM,
    SerialExecutor,
    SimulatedFM,
    ThreadPoolFMExecutor,
)


def small_frame() -> DataFrame:
    return DataFrame(
        {
            "Age": [21, 35, 42, 22, 45, 56, 30, 28] * 6,
            "Income": [10.0, 25.0, 18.5, 40.0, 31.0, 22.0, 15.5, 60.0] * 6,
            "City": ["SF", "LA", "SEA", "SF", "SEA", "LA", "SF", "LA"] * 6,
            "Target": [0, 1, 1, 0, 1, 1, 0, 1] * 6,
        }
    )


DESCRIPTIONS = {
    "Age": "Age of the customer in years",
    "Income": "Annual income in thousands of dollars",
    "City": "City of residence",
}


# ----------------------------------------------------------------------
# Executor-level: random batches against the seeded simulator.
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=50),
    concurrency=st.integers(min_value=2, max_value=8),
    batch_sizes=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=4),
    temperature_pattern=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_simulator_batches_identical_across_backends(
    seed, concurrency, batch_sizes, temperature_pattern
):
    def run(executor):
        fm = SimulatedFM(seed=seed)
        texts = []
        call = 0
        for size in batch_sizes:
            requests = [
                FMRequest(
                    f"prompt {call + i}",
                    0.0 if (call + i) % temperature_pattern else 0.7,
                )
                for i in range(size)
            ]
            call += size
            texts.extend(r.response.text for r in executor.run(fm, requests))
        return texts, fm.ledger.snapshot(), executor.stats.summed_latency_s

    serial_texts, serial_ledger, serial_latency = run(SerialExecutor())
    with ThreadPoolFMExecutor(concurrency) as pool:
        threaded_texts, threaded_ledger, threaded_latency = run(pool)
    assert serial_texts == threaded_texts
    assert serial_ledger == threaded_ledger
    assert serial_latency == threaded_latency


# ----------------------------------------------------------------------
# Pipeline-level: random wave sizes and concurrency over the simulator.
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=5),
    wave_size=st.integers(min_value=1, max_value=6),
    concurrency=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_pipeline_identical_across_backends(seed, wave_size, concurrency):
    def run(executor):
        fm = SimulatedFM(seed=seed, model="gpt-4")
        function_fm = SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo")
        tool = SmartFeat(
            fm=fm,
            function_fm=function_fm,
            downstream_model="decision_tree",
            executor=executor,
            wave_size=wave_size,
        )
        result = tool.fit_transform(
            small_frame(), target="Target", descriptions=dict(DESCRIPTIONS)
        )
        return (
            sorted(result.new_features),
            result.dropped,
            result.errors,
            result.rejections,
            fm.ledger.snapshot(),
            function_fm.ledger.snapshot(),
        )

    serial = run(SerialExecutor())
    with ThreadPoolFMExecutor(concurrency) as pool:
        threaded = run(pool)
    assert serial == threaded


# ----------------------------------------------------------------------
# Scripted schedules: adversarial mixes of valid, duplicate, and garbage
# responses at random positions must fail identically on both backends.
# ----------------------------------------------------------------------
def _binary_candidate(index: int) -> str:
    return json.dumps(
        {
            "operator": "-",
            "columns": ["Age", "Income"],
            "name": f"gap_{index}",
            "description": f"binary[-]: gap variant {index}",
        }
    )


GOOD_CODE = "```python\ndef transform(df):\n    return df['Age'] - df['Income']\n```"


@given(
    schedule=st.lists(
        st.sampled_from(["valid", "garbage", "duplicate"]), min_size=2, max_size=12
    ),
    wave_size=st.integers(min_value=1, max_value=5),
    concurrency=st.integers(min_value=2, max_value=6),
    error_threshold=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_scripted_schedules_identical_across_backends(
    schedule, wave_size, concurrency, error_threshold
):
    def responses():
        out = []
        for i, kind in enumerate(schedule):
            if kind == "valid":
                out.append(_binary_candidate(i))
            elif kind == "duplicate":
                out.append(_binary_candidate(0))
            else:
                out.append("garbage that parses to nothing")
        return out

    def run(executor):
        fm = ScriptedFM(responses())
        function_fm = ScriptedFM(lambda prompt: GOOD_CODE)
        tool = SmartFeat(
            fm=fm,
            function_fm=function_fm,
            downstream_model="decision_tree",
            operator_families=(OperatorFamily.BINARY,),
            sampling_budget=len(schedule),
            error_threshold=error_threshold,
            wave_size=wave_size,
            executor=executor,
        )
        result = tool.fit_transform(small_frame(), target="Target")
        return (
            sorted(result.new_features),
            result.errors,
            fm.ledger.n_calls,
            fm.ledger.snapshot(),
        )

    serial = run(SerialExecutor())
    with ThreadPoolFMExecutor(concurrency) as pool:
        threaded = run(pool)
    assert serial == threaded
