"""Property-based tests for core invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataAgenda
from repro.core.sandbox import run_transform
from repro.dataframe import DataFrame, Series
from repro.fm import default_knowledge
from repro.fm.codegen import generate_transform_source
from repro.fm.simulated import parse_agenda

identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9 _]{0,14}", fullmatch=True).map(str.strip).filter(bool)
descriptions = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz ,", min_size=0, max_size=40
).map(str.strip)


@settings(max_examples=40)
@given(
    st.dictionaries(identifiers, descriptions, min_size=1, max_size=6),
    descriptions,
)
def test_agenda_prompt_roundtrip(columns, title):
    """Whatever goes into the agenda comes back out of the simulator's
    prompt parser: names, kinds, and descriptions survive serialisation."""
    frame_data = {}
    for i, name in enumerate(columns):
        frame_data[name] = [float(i), float(i + 1), float(i + 2)]
    frame_data["__target__"] = [0, 1, 0]
    agenda = DataAgenda.from_dataframe(
        DataFrame(frame_data),
        target="__target__",
        descriptions=columns,
        title=title,
        model="rf",
    )
    view = parse_agenda(agenda.describe())
    assert set(view.features) == set(columns)
    for name, description in columns.items():
        assert view.features[name].description == description
    assert view.target == "__target__"


_TAGGED_DESCRIPTIONS = st.sampled_from(
    [
        "normalization[minmax]: rescale",
        "normalization[zscore]: rescale",
        "log_transform: squash",
        "squared: square",
        "is_missing: flag",
        "bucketization[age_generic]: bands",
        "bucketization[unheard_of_domain]: bands",
        "get_dummies: one-hot",
        "text_length: length",
        "mystery_operator: unknown fallback",
    ]
)


@settings(max_examples=60, deadline=None)
@given(
    _TAGGED_DESCRIPTIONS,
    st.lists(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        min_size=4,
        max_size=25,
    ),
)
def test_codegen_always_produces_runnable_code(description, values):
    """Every operator tag — including unknown ones — yields source that
    compiles, passes the sandbox, and returns a Series/DataFrame of the
    input length."""
    frame = DataFrame({"col": [str(v) if "dummies" in description or "length" in description else v for v in values]})
    source = generate_transform_source(
        "feat", ["col"], description, default_knowledge(), column_values={}
    )
    result = run_transform(source, frame)
    if isinstance(result, Series):
        assert len(result) == len(values)
    else:
        assert all(len(result[c]) == len(values) for c in result.columns)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_simulated_fm_deterministic_per_seed(seed):
    """Same seed + same call sequence → identical responses."""
    from repro.core import prompts
    from repro.fm import SimulatedFM

    frame = DataFrame({"Age": [20, 30, 40], "Income": [1.0, 2.0, 3.0], "y": [0, 1, 0]})
    agenda = DataAgenda.from_dataframe(frame, target="y", model="rf")
    prompt = prompts.binary_sampling_prompt(agenda)
    first = [SimulatedFM(seed=seed).complete(prompt, temperature=0.7).text for _ in range(1)]
    second = [SimulatedFM(seed=seed).complete(prompt, temperature=0.7).text for _ in range(1)]
    assert first == second
