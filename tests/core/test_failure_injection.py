"""Failure-injection tests: hostile or broken FM output must not crash
the pipeline, leak into results, or escape the sandbox."""

import json

import pytest

from repro.core import SmartFeat
from repro.core.types import OperatorFamily
from repro.dataframe import DataFrame
from repro.fm import ScriptedFM, SimulatedFM


@pytest.fixture
def frame():
    return DataFrame(
        {
            "Age": [20, 30, 40, 50] * 25,
            "Income": [10.0, 20.0, 30.0, 40.0] * 25,
            "y": [0, 1, 0, 1] * 25,
        }
    )


def scripted_tool(selector_responses, function_responses, **kwargs):
    return SmartFeat(
        fm=ScriptedFM(selector_responses),
        function_fm=ScriptedFM(function_responses),
        downstream_model="rf",
        operator_families=(OperatorFamily.BINARY,),
        sampling_budget=1,
        repair_retries=0,
        **kwargs,
    )


BINARY_JSON = json.dumps(
    {
        "operator": "-",
        "columns": ["Age", "Income"],
        "name": "gap",
        "description": "binary[-]: gap",
    }
)


class TestHostileCode:
    @pytest.mark.parametrize(
        "payload",
        [
            "```python\ndef transform(df):\n    import os\n    return df['Age']\n```",
            "```python\ndef transform(df):\n    open('/etc/passwd')\n    return df['Age']\n```",
            "```python\ndef transform(df):\n    __import__('subprocess')\n    return df['Age']\n```",
        ],
    )
    def test_forbidden_code_rejected_and_recorded(self, frame, payload):
        tool = scripted_tool([BINARY_JSON], [payload])
        result = tool.fit_transform(frame, target="y")
        assert result.new_features == {}
        assert "gap" in result.rejections
        assert "generation failed" in result.rejections["gap"]

    def test_infinite_loop_free_code_path(self, frame):
        # Code that *returns* quickly but with the wrong type.
        tool = scripted_tool([BINARY_JSON], ["```python\ndef transform(df):\n    return 42\n```"])
        result = tool.fit_transform(frame, target="y")
        assert result.new_features == {}


class TestMalformedOutput:
    def test_wrong_length_series_rejected(self, frame):
        code = "```python\ndef transform(df):\n    return df['Age'].head(3)\n```"
        tool = scripted_tool([BINARY_JSON], [code])
        result = tool.fit_transform(frame, target="y")
        assert result.new_features == {}
        assert any("length" in reason for reason in result.rejections.values())

    def test_json_with_wrong_types_counts_as_error(self, frame):
        bad = json.dumps({"operator": ["-"], "columns": "Age"})
        tool = scripted_tool([bad], [])
        result = tool.fit_transform(frame, target="y")
        assert result.errors["binary"] >= 1

    def test_truncated_json_counts_as_error(self, frame):
        tool = scripted_tool(['{"operator": "-", "columns": ["Age"'], [])
        result = tool.fit_transform(frame, target="y")
        assert result.errors["binary"] >= 1


class TestDegradedFm:
    @pytest.mark.parametrize("error_rate", [0.25, 0.75])
    def test_pipeline_survives_any_error_rate(self, frame, error_rate):
        tool = SmartFeat(
            fm=SimulatedFM(seed=1, error_rate=error_rate),
            downstream_model="rf",
            repair_retries=1,
        )
        result = tool.fit_transform(frame, target="y")
        assert "y" in result.frame.columns
        # Every accepted output column is real and full-length.
        for feature in result.new_features.values():
            for column in feature.output_columns:
                assert len(result.frame[column]) == len(frame)

    def test_results_deterministic_under_error_injection(self, frame):
        def run():
            tool = SmartFeat(
                fm=SimulatedFM(seed=5, error_rate=0.5), downstream_model="rf"
            )
            return sorted(tool.fit_transform(frame, target="y").new_features)

        assert run() == run()


class TestDateSplitPath:
    def test_date_column_produces_calendar_features(self):
        frame = DataFrame(
            {
                "signup_date": ["2024-01-15", "2023-06-02", "2024-03-09", "2022-12-31"] * 30,
                "amount": [10.0, 20.0, 30.0, 40.0] * 30,
                "y": [0, 1, 0, 1] * 30,
            }
        )
        tool = SmartFeat(
            fm=SimulatedFM(seed=0),
            downstream_model="rf",
            operator_families=(OperatorFamily.UNARY,),
        )
        result = tool.fit_transform(
            frame,
            target="y",
            descriptions={"signup_date": "Date the customer signed up", "amount": "Order amount"},
        )
        assert "date_split_signup_date" in result.new_features
        outputs = result.new_features["date_split_signup_date"].output_columns
        assert any("month" in c for c in outputs)
        assert any("dayofweek" in c for c in outputs)
