"""Out-of-core fitting: ``fit_transform_stream`` over a shard stream.

The search itself runs on a bounded, seeded reservoir sample — so the
out-of-core fit is **bit-identical** to an in-memory ``fit_transform``
over the same sample, whatever chunking produced the stream — and the
exported plan's group tables are then refreshed over the full stream.
"""

import json

import pytest

from repro.core import SmartFeat
from repro.dataframe.io import iter_frame_shards, reservoir_sample
from repro.eval.serving import make_serving_frame
from repro.fm import SimulatedFM
from repro.serve import frames_identical


def make_tool(**kwargs):
    return SmartFeat(
        fm=SimulatedFM(seed=0, model="gpt-4"),
        function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
        **kwargs,
    )


@pytest.fixture(scope="module")
def frame():
    return make_serving_frame(2000, seed=3)


class TestFitTransformStream:
    def test_matches_in_memory_fit_on_same_sample(self, frame):
        streamed = make_tool().fit_transform_stream(
            lambda: iter_frame_shards(frame, 257),
            "Target",
            fit_sample_rows=500,
            sample_seed=7,
        )
        sample, total = reservoir_sample(
            iter_frame_shards(frame, 257), 500, seed=7
        )
        assert total == len(frame)
        inmem = make_tool().fit_transform(sample, "Target")
        identical, detail = frames_identical(streamed.frame, inmem.frame)
        assert identical, detail
        assert sorted(streamed.new_features) == sorted(inmem.new_features)

    def test_sample_covering_stream_matches_full_fit(self, frame):
        """``fit_sample_rows >= total`` keeps every row in order, so the
        streamed fit equals fitting the whole table in memory."""
        streamed = make_tool().fit_transform_stream(
            lambda: iter_frame_shards(frame, 313),
            "Target",
            fit_sample_rows=10**6,
        )
        inmem = make_tool().fit_transform(frame, "Target")
        identical, detail = frames_identical(streamed.frame, inmem.frame)
        assert identical, detail

    def test_chunk_invariant_including_plan(self, frame):
        results = [
            make_tool(compile_plan=True).fit_transform_stream(
                lambda: iter_frame_shards(frame, chunk),
                "Target",
                fit_sample_rows=400,
                sample_seed=11,
            )
            for chunk in (101, 500)
        ]
        identical, detail = frames_identical(results[0].frame, results[1].frame)
        assert identical, detail
        assert results[0].plan.to_json() == results[1].plan.to_json()

    def test_stream_metadata_recorded(self, frame):
        result = make_tool(compile_plan=True).fit_transform_stream(
            lambda: iter_frame_shards(frame, 257),
            "Target",
            fit_sample_rows=500,
            sample_seed=7,
        )
        meta = result.plan.metadata["fit_stream"]
        assert meta["sample_rows"] == 500
        assert meta["requested_sample_rows"] == 500
        assert meta["total_rows"] == len(frame)
        assert meta["seed"] == 7
        assert meta["group_tables_refreshed"] >= 1

    def test_refresh_survives_plan_export(self, frame):
        """The refreshed group tables land in the exported JSON (they
        reflect all rows, not just the fitted sample)."""
        refreshed = make_tool(compile_plan=True).fit_transform_stream(
            lambda: iter_frame_shards(frame, 257),
            "Target",
            fit_sample_rows=500,
            sample_seed=7,
        )
        unrefreshed = make_tool(compile_plan=True).fit_transform_stream(
            lambda: iter_frame_shards(frame, 257),
            "Target",
            fit_sample_rows=500,
            sample_seed=7,
            refresh_group_tables=False,
        )
        assert unrefreshed.plan.metadata["fit_stream"]["group_tables_refreshed"] == 0
        a = json.loads(refreshed.plan.to_json())
        b = json.loads(unrefreshed.plan.to_json())
        assert a != b  # tables over 2000 rows vs over the 500-row sample

    def test_one_shot_iterator_with_refresh_raises(self, frame):
        with pytest.raises(ValueError, match="callable shard factory"):
            make_tool(compile_plan=True).fit_transform_stream(
                iter_frame_shards(frame, 257),
                "Target",
                fit_sample_rows=500,
            )

    def test_one_shot_iterator_without_refresh_ok(self, frame):
        result = make_tool(compile_plan=True).fit_transform_stream(
            iter_frame_shards(frame, 257),
            "Target",
            fit_sample_rows=500,
            sample_seed=7,
            refresh_group_tables=False,
        )
        assert result.plan.metadata["fit_stream"]["group_tables_refreshed"] == 0

    def test_bad_sample_rows_raises(self, frame):
        with pytest.raises(ValueError, match="fit_sample_rows"):
            make_tool().fit_transform_stream(
                lambda: iter_frame_shards(frame, 100), "Target", fit_sample_rows=0
            )

    def test_empty_stream_raises(self):
        with pytest.raises(ValueError, match="no rows"):
            make_tool().fit_transform_stream(lambda: iter(()), "Target")
