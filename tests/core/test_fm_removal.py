"""Tests for FM-driven feature removal (§3.2 future work)."""

import json

import pytest

from repro.core import SmartFeat
from repro.core.types import OperatorFamily
from repro.dataframe import DataFrame
from repro.fm import ScriptedFM, SimulatedFM


@pytest.fixture
def money_frame():
    """A MONEY column for which the FM proposes both log and normalization
    (DNN downstream) — a redundant monotone pair the removal stage trims."""
    return DataFrame(
        {
            "Income": [10.0, 50.0, 120.0, 80.0, 30.0, 60.0] * 20,
            "Age": [25, 35, 45, 55, 30, 40] * 20,
            "y": [0, 1, 1, 1, 0, 1] * 20,
        }
    )


def run(frame, removal, **kwargs):
    tool = SmartFeat(
        fm=SimulatedFM(seed=0),
        downstream_model="dnn",
        operator_families=(OperatorFamily.UNARY,),
        drop_heuristic=False,
        fm_feature_removal=removal,
        **kwargs,
    )
    return tool.fit_transform(
        frame,
        target="y",
        descriptions={"Income": "Annual income in dollars", "Age": "Age in years"},
    )


class TestFmRemoval:
    def test_off_by_default_keeps_redundant_pair(self, money_frame):
        result = run(money_frame, removal=False)
        assert "log_transform_Income" in result.frame.columns
        assert "normalization_Income" in result.frame.columns
        assert result.removed_by_fm == []

    def test_removal_trims_monotone_duplicates(self, money_frame):
        result = run(money_frame, removal=True)
        # The FM keeps the domain-preferred transform (log for money) and
        # removes the redundant one.
        assert "log_transform_Income" in result.frame.columns
        assert "normalization_Income" not in result.frame.columns
        assert "normalization_Income" in result.removed_by_fm

    def test_originals_and_target_never_removed(self, money_frame):
        result = run(money_frame, removal=True)
        assert "Income" in result.frame.columns
        assert "Age" in result.frame.columns
        assert "y" in result.frame.columns

    def test_new_features_registry_updated(self, money_frame):
        result = run(money_frame, removal=True)
        for feature in result.new_features.values():
            for column in feature.output_columns:
                assert column in result.frame.columns
        assert "normalization_Income" not in result.new_features

    def test_hostile_removal_payload_ignored(self, money_frame):
        """An FM trying to remove originals or the target is ignored."""
        unary = (
            "log_transform (certain): squash\n"
            "normalization[minmax] (high): rescale"
        )
        removal = json.dumps({"remove": ["Income", "y", "Age", "not_a_column"]})
        fm = ScriptedFM([unary, "none (certain): nothing", removal])
        function_fm = SimulatedFM(seed=1)
        tool = SmartFeat(
            fm=fm,
            function_fm=function_fm,
            downstream_model="dnn",
            operator_families=(OperatorFamily.UNARY,),
            drop_heuristic=False,
            fm_feature_removal=True,
        )
        result = tool.fit_transform(
            money_frame,
            target="y",
            descriptions={"Income": "Annual income in dollars", "Age": "Age in years"},
        )
        assert result.removed_by_fm == []
        assert "Income" in result.frame.columns
        assert "y" in result.frame.columns

    def test_garbled_removal_response_counts_error(self, money_frame):
        unary = "log_transform (certain): squash"
        fm = ScriptedFM([unary, "none (certain): nothing", "no json here"])
        tool = SmartFeat(
            fm=fm,
            function_fm=SimulatedFM(seed=1),
            downstream_model="dnn",
            operator_families=(OperatorFamily.UNARY,),
            drop_heuristic=False,
            fm_feature_removal=True,
        )
        result = tool.fit_transform(money_frame, target="y")
        assert result.errors.get("removal") == 1
