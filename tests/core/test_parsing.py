"""Unit tests for FM output parsers."""

import pytest

from repro.core.parsing import extract_code, parse_json_response, parse_proposals
from repro.fm.errors import FMParseError


class TestParseProposals:
    def test_basic_lines(self):
        text = (
            "bucketization[age_insurance] (certain): Age bands\n"
            "normalization[zscore] (medium): rescale"
        )
        out = parse_proposals(text)
        assert out[0] == ("bucketization[age_insurance]", "certain", "Age bands")
        assert out[1][1] == "medium"

    def test_skips_prose(self):
        text = "Here are my suggestions:\nlog_transform (high): squash\nHope this helps!"
        assert len(parse_proposals(text)) == 1

    def test_skips_none_tag(self):
        assert parse_proposals("none (certain): nothing applies") == []

    def test_empty_input(self):
        assert parse_proposals("") == []

    def test_invalid_confidence_skipped(self):
        assert parse_proposals("log_transform (sure!): squash") == []


class TestParseJson:
    def test_plain_object(self):
        assert parse_json_response('{"a": 1}') == {"a": 1}

    def test_fenced_object(self):
        assert parse_json_response('```json\n{"a": 1}\n```') == {"a": 1}

    def test_object_with_surrounding_prose(self):
        assert parse_json_response('Sure! {"a": 1} Let me know.') == {"a": 1}

    def test_nested_object(self):
        assert parse_json_response('{"a": {"b": 2}}') == {"a": {"b": 2}}

    def test_no_json_raises(self):
        with pytest.raises(FMParseError):
            parse_json_response("I'm sorry, I cannot do that.")

    def test_truncated_json_raises(self):
        with pytest.raises(FMParseError):
            parse_json_response('{"a": [1, 2')

    def test_non_object_raises(self):
        with pytest.raises(FMParseError):
            parse_json_response("[1, 2, 3]")


class TestExtractCode:
    def test_fenced_python(self):
        code = extract_code("```python\ndef transform(df):\n    return df['x']\n```")
        assert code.startswith("def transform")
        assert code.endswith("\n")

    def test_fence_without_language(self):
        assert "return" in extract_code("```\ndef transform(df):\n    return None\n```")

    def test_raw_transform_accepted(self):
        assert "def transform" in extract_code("def transform(df):\n    return df['x']")

    def test_raw_assignment_accepted(self):
        assert "df['x']" in extract_code("df['x'] = df['a'] / df['b']")

    def test_prose_raises(self):
        with pytest.raises(FMParseError):
            extract_code("I would suggest normalising the Age column.")
