"""Integration tests for the SmartFeat pipeline (incl. the motivating example)."""

import pytest

from repro.core import SmartFeat
from repro.core.types import OperatorFamily
from repro.dataframe import DataFrame
from repro.fm import ScriptedFM, SimulatedFM


def run_tool(frame, descriptions, **kwargs):
    tool = SmartFeat(
        fm=SimulatedFM(seed=0, model="gpt-4"),
        function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
        downstream_model=kwargs.pop("downstream_model", "decision_tree"),
        **kwargs,
    )
    return tool.fit_transform(
        frame,
        target="Safe",
        descriptions=descriptions,
        title="Car insurance policyholders (insurance claims)",
        target_description="1 = safe, unlikely to file a claim in the next 6 months",
    )


class TestMotivatingExample:
    """The paper's F1-F4 walk-through (Example 1.1 and Figure 2)."""

    @pytest.fixture(scope="class")
    def result(self):
        from tests.core.conftest import INSURANCE_DESCRIPTIONS, make_insurance_frame

        return run_tool(make_insurance_frame(), dict(INSURANCE_DESCRIPTIONS))

    def test_f1_bucketized_age(self, result):
        assert "bucketization_Age" in result.frame.columns

    def test_f1_bucket_uses_age_21_threshold(self, result):
        feature = result.new_features["bucketization_Age"]
        assert "21" in feature.source_code

    def test_f3_claim_probability_per_car_model(self, result):
        assert any(
            name.startswith("GroupBy_Make Model_mean_Claim")
            for name in result.new_features
        )

    def test_f4_city_population_density(self, result):
        assert "City_population_density" in result.frame.columns
        density = result.frame["City_population_density"]
        sf_rows = result.frame["City"] == "SF" if "City" in result.frame.columns else None
        assert density.nunique() == 3  # SF / LA / SEA

    def test_target_column_preserved(self, result):
        assert "Safe" in result.frame.columns

    def test_every_family_contributed(self, result):
        families = {f.family for f in result.new_features.values()}
        assert OperatorFamily.UNARY in families
        assert OperatorFamily.HIGH_ORDER in families
        assert OperatorFamily.EXTRACTOR in families

    def test_provenance_has_source_code(self, result):
        for feature in result.new_features.values():
            if feature.source_code != "<row-level FM completion>":
                assert "def transform" in feature.source_code

    def test_fm_usage_accounted(self, result):
        assert result.fm_usage["operator_selector"]["n_calls"] > 0
        assert result.fm_usage["function_generator"]["cost_usd"] >= 0

    def test_original_frame_untouched(self, insurance_frame, insurance_descriptions):
        before = insurance_frame.columns[:]
        run_tool(insurance_frame, insurance_descriptions)
        assert insurance_frame.columns == before


class TestConfiguration:
    def test_family_ablation_unary_only(self, insurance_frame, insurance_descriptions):
        result = run_tool(
            insurance_frame,
            insurance_descriptions,
            operator_families=(OperatorFamily.UNARY,),
        )
        families = {f.family for f in result.new_features.values()}
        assert families <= {OperatorFamily.UNARY}

    def test_family_ablation_binary_only(self, insurance_frame, insurance_descriptions):
        result = run_tool(
            insurance_frame,
            insurance_descriptions,
            operator_families=(OperatorFamily.BINARY,),
        )
        families = {f.family for f in result.new_features.values()}
        assert families <= {OperatorFamily.BINARY}

    def test_sampling_budget_bounds_features(self, insurance_frame, insurance_descriptions):
        narrow = run_tool(
            insurance_frame,
            insurance_descriptions,
            sampling_budget=1,
            operator_families=(OperatorFamily.HIGH_ORDER,),
        )
        assert len(narrow.new_features) <= 1

    def test_drop_heuristic_disabled_keeps_originals(
        self, insurance_frame, insurance_descriptions
    ):
        result = run_tool(insurance_frame, insurance_descriptions, drop_heuristic=False)
        assert result.dropped == []
        for column in ("Sex", "City", "Make Model"):
            assert column in result.frame.columns

    def test_invalid_row_policy_raises(self):
        with pytest.raises(ValueError):
            SmartFeat(fm=SimulatedFM(seed=0), row_level_policy="sometimes")

    def test_names_only_yields_fewer_features(
        self, insurance_frame, insurance_descriptions
    ):
        """The paper's description ablation: opaque context, weaker output."""
        renamed = insurance_frame.rename(
            columns={
                "Age": "A1",
                "Age of car": "A2",
                "Make Model": "M1",
                "Claim in last 6 months": "C1",
                "City": "X1",
                "Sex": "S1",
            }
        )
        with_desc = run_tool(insurance_frame, insurance_descriptions)
        names_only = SmartFeat(
            fm=SimulatedFM(seed=0), downstream_model="decision_tree"
        ).fit_transform(renamed, target="Safe")
        assert len(names_only.new_features) < len(with_desc.new_features)


class TestErrorHandling:
    def test_error_prone_fm_still_completes(self, insurance_frame, insurance_descriptions):
        tool = SmartFeat(
            fm=SimulatedFM(seed=0, error_rate=0.5),
            function_fm=SimulatedFM(seed=1, error_rate=0.5),
            downstream_model="decision_tree",
        )
        result = tool.fit_transform(
            insurance_frame, target="Safe", descriptions=insurance_descriptions
        )
        # Degraded but not crashed; errors recorded.
        assert sum(result.errors.values()) > 0

    def test_fully_broken_fm_yields_empty_result(self, insurance_frame):
        fm = ScriptedFM(lambda prompt: "I'm sorry, I can't help with that.")
        tool = SmartFeat(fm=fm, downstream_model="decision_tree")
        result = tool.fit_transform(insurance_frame, target="Safe")
        assert result.new_features == {}
        assert "Safe" in result.frame.columns

    def test_error_threshold_stops_sampling_early(self, insurance_frame):
        fm = ScriptedFM(lambda prompt: "garbage that parses to nothing")
        tool = SmartFeat(
            fm=fm,
            sampling_budget=10,
            error_threshold=2,
            operator_families=(OperatorFamily.BINARY,),
            downstream_model="decision_tree",
        )
        result = tool.fit_transform(insurance_frame, target="Safe")
        assert result.errors["binary"] == 2
        assert fm.ledger.n_calls == 2  # stopped at the threshold, not the budget
