"""Prompt-template contract tests.

The simulator dispatches on marker phrases inside each template; these
tests pin the contract so a template edit that breaks dispatch fails
loudly here rather than as silent fallback answers downstream.
"""

import pytest

from repro.core import DataAgenda, prompts
from repro.core.types import FeatureCandidate, OperatorFamily
from repro.dataframe import DataFrame
from repro.fm.simulated import SimulatedFM


@pytest.fixture
def agenda():
    frame = DataFrame({"Age": [20, 30, 40], "City": ["SF", "LA", "SF"], "y": [0, 1, 0]})
    return DataAgenda.from_dataframe(
        frame, target="y", descriptions={"Age": "Age in years", "City": "City of residence"},
        title="demo", model="rf",
    )


@pytest.fixture
def candidate():
    return FeatureCandidate(
        name="bucketization_Age",
        columns=["Age"],
        description="bucketization[age_generic]: bands",
        family=OperatorFamily.UNARY,
    )


MARKERS = {
    "unary": "Consider the unary operators on the attribute",
    "binary_sampling": "binary arithmetic operator",
    "binary_proposal": "List up to",
    "high_order": "Generate a groupby feature",
    "extractor": "Propose ONE extractor feature",
    "function": "Generate the optimal Python function",
    "repair": "Generate a corrected",
    "row": "Respond with the value only",
    "sources": "cannot be computed by a",
    "removal": "should be removed before training",
    "caafe": "You are an automated feature engineering assistant (CAAFE",
}


class TestDispatchMarkers:
    def test_each_template_carries_its_marker(self, agenda, candidate):
        built = {
            "unary": prompts.unary_proposal_prompt(agenda, "Age"),
            "binary_sampling": prompts.binary_sampling_prompt(agenda),
            "binary_proposal": prompts.binary_proposal_prompt(agenda, 5),
            "high_order": prompts.high_order_sampling_prompt(agenda),
            "extractor": prompts.extractor_sampling_prompt(agenda),
            "function": prompts.function_generation_prompt(agenda, candidate),
            "repair": prompts.function_repair_prompt(agenda, candidate, "def transform(df): ...", "boom"),
            "row": prompts.row_completion_prompt("f", {"City": "SF"}),
            "sources": prompts.source_suggestion_prompt(agenda, candidate),
            "removal": prompts.feature_removal_prompt(agenda),
            "caafe": prompts.caafe_prompt(agenda, "sample", 0),
        }
        for kind, text in built.items():
            assert MARKERS[kind] in text, kind

    def test_markers_are_mutually_exclusive(self, agenda, candidate):
        """No template accidentally contains another template's marker in a
        way that would shadow its dispatch (the simulator checks in a fixed
        order; earlier markers must not appear in later templates)."""
        function_prompt = prompts.function_generation_prompt(agenda, candidate)
        assert MARKERS["unary"] not in function_prompt
        assert MARKERS["high_order"] not in function_prompt
        removal_prompt = prompts.feature_removal_prompt(agenda)
        assert MARKERS["binary_sampling"] not in removal_prompt

    def test_every_template_gets_a_non_fallback_answer(self, agenda, candidate):
        fm = SimulatedFM(seed=0)
        fallback = "I am a language model"
        built = [
            prompts.unary_proposal_prompt(agenda, "Age"),
            prompts.binary_sampling_prompt(agenda),
            prompts.binary_proposal_prompt(agenda, 5),
            prompts.high_order_sampling_prompt(agenda),
            prompts.extractor_sampling_prompt(agenda),
            prompts.function_generation_prompt(agenda, candidate),
            prompts.row_completion_prompt("City_population_density", {"City": "SF"}),
            prompts.source_suggestion_prompt(agenda, candidate),
            prompts.feature_removal_prompt(agenda),
            prompts.caafe_prompt(agenda, "sample", 0),
        ]
        for prompt in built:
            answer = fm.complete(prompt, temperature=0.7).text
            assert fallback not in answer, prompt[:80]

    def test_agenda_embedded_in_every_contextual_template(self, agenda, candidate):
        for text in (
            prompts.unary_proposal_prompt(agenda, "Age"),
            prompts.binary_sampling_prompt(agenda),
            prompts.high_order_sampling_prompt(agenda),
            prompts.extractor_sampling_prompt(agenda),
            prompts.function_generation_prompt(agenda, candidate),
            prompts.feature_removal_prompt(agenda),
        ):
            assert "Dataset description: demo" in text
            assert "Prediction class: y" in text
