"""Tests for the error-correction loop and deferred row-plan completion."""

import pytest

from repro.core import FunctionGenerator, complete_row_plan
from repro.core.sandbox import TransformError
from repro.core.types import FeatureCandidate, OperatorFamily
from repro.core.function_generator import RealizedFeature
from repro.core.pipeline import SmartFeat
from repro.fm import ScriptedFM, SimulatedFM


GOOD_CODE = "```python\ndef transform(df):\n    return df['Age'] * 2\n```"
BROKEN_CODE = "```python\ndef transform(df):\n    return df['does_not_exist']\n```"
PROSE = "I'd suggest normalising the Age column, perhaps?"


def _candidate():
    return FeatureCandidate(
        name="double_age",
        columns=["Age"],
        description="squared: doubled age (test)",
        family=OperatorFamily.UNARY,
    )


class TestRepairLoop:
    def test_broken_then_fixed(self, insurance_agenda, insurance_frame):
        fm = ScriptedFM([BROKEN_CODE, GOOD_CODE])
        generator = FunctionGenerator(fm, repair_retries=1)
        realized = generator.realize(_candidate(), insurance_agenda, insurance_frame)
        assert isinstance(realized, RealizedFeature)
        assert realized.feature.fm_calls == 2
        assert fm.ledger.n_calls == 2

    def test_repair_prompt_carries_error_and_code(self, insurance_agenda, insurance_frame):
        fm = ScriptedFM([BROKEN_CODE, GOOD_CODE])
        fm.ledger.keep_history = True
        FunctionGenerator(fm, repair_retries=1).realize(
            _candidate(), insurance_agenda, insurance_frame
        )
        repair_prompt = fm.ledger.history[1][0]
        assert "Generate a corrected" in repair_prompt
        assert "does_not_exist" in repair_prompt
        assert "Error:" in repair_prompt

    def test_prose_then_fixed(self, insurance_agenda, insurance_frame):
        fm = ScriptedFM([PROSE, GOOD_CODE])
        generator = FunctionGenerator(fm, repair_retries=1)
        realized = generator.realize(_candidate(), insurance_agenda, insurance_frame)
        assert isinstance(realized, RealizedFeature)

    def test_retries_exhausted_raises_last_error(self, insurance_agenda, insurance_frame):
        fm = ScriptedFM([BROKEN_CODE, BROKEN_CODE])
        generator = FunctionGenerator(fm, repair_retries=1)
        with pytest.raises(TransformError):
            generator.realize(_candidate(), insurance_agenda, insurance_frame)

    def test_zero_retries_fails_immediately(self, insurance_agenda, insurance_frame):
        fm = ScriptedFM([BROKEN_CODE])
        generator = FunctionGenerator(fm, repair_retries=0)
        with pytest.raises(TransformError):
            generator.realize(_candidate(), insurance_agenda, insurance_frame)
        assert fm.ledger.n_calls == 1

    def test_simulated_fm_answers_repair_prompts(self, insurance_agenda, insurance_frame):
        # With heavy error injection, retries recover some generations.
        fm = SimulatedFM(seed=0, error_rate=0.45)
        with_retries = SmartFeat(fm=fm, downstream_model="rf", repair_retries=2)
        result = with_retries.fit_transform(
            insurance_frame, target="Safe",
        )
        no_retry_fm = SimulatedFM(seed=0, error_rate=0.45)
        without_retries = SmartFeat(fm=no_retry_fm, downstream_model="rf", repair_retries=0)
        baseline = without_retries.fit_transform(insurance_frame, target="Safe")
        assert len(result.new_features) >= len(baseline.new_features)


class TestRowPlanCompletion:
    @pytest.fixture
    def pending(self, insurance_frame, insurance_descriptions):
        tool = SmartFeat(
            fm=SimulatedFM(seed=0),
            downstream_model="rf",
            row_level_policy="never",
            row_limit=0,
        )
        # Force the density extractor down the row-level path by stripping
        # the City values from the agenda (high cardinality to the FM).
        frame = insurance_frame.copy()
        frame["City"] = [f"City{i % 40}" for i in range(len(frame))]
        result = tool.fit_transform(frame, target="Safe", descriptions=insurance_descriptions)
        return result

    def test_plan_created_for_large_table(self, pending):
        assert pending.row_plans, "expected a deferred row-level plan"
        plan = pending.row_plans[0]
        assert plan.estimated_calls == len(pending.frame)
        assert plan.estimated_cost_usd > 0

    def test_complete_row_plan_installs_column(self, pending):
        plan = pending.row_plans[0]
        fm = SimulatedFM(seed=3)
        complete_row_plan(pending, plan, fm)
        assert plan.name in pending.frame.columns
        assert plan.name in pending.new_features
        assert plan not in pending.row_plans
        assert fm.ledger.n_calls == len(pending.frame)

    def test_unknown_plan_raises(self, pending):
        from repro.core.types import RowCompletionPlan

        bogus = RowCompletionPlan(
            name="x", description="", preview=[], n_rows=1,
            estimated_calls=1, estimated_cost_usd=0.0, estimated_latency_s=0.0,
        )
        with pytest.raises(ValueError):
            complete_row_plan(pending, bogus, SimulatedFM(seed=0))

    def test_plan_records_relevant_columns(self, pending):
        plan = pending.row_plans[0]
        assert plan.relevant_columns  # selector metadata, not preview inference
        assert set(plan.relevant_columns) <= set(pending.frame.columns)

    def test_completion_uses_plan_metadata_columns(self, pending):
        plan = pending.row_plans[0]
        fm = SimulatedFM(seed=3)
        fm.ledger.keep_history = True
        complete_row_plan(pending, plan, fm)
        prompt = fm.ledger.history[0][0]
        for column in plan.relevant_columns:
            assert column in prompt
        irrelevant = set(pending.frame.columns) - set(plan.relevant_columns) - {plan.name}
        for column in irrelevant:
            assert f"{column}:" not in prompt
        assert pending.new_features[plan.name].input_columns == list(plan.relevant_columns)

    def test_legacy_plan_falls_back_to_preview_columns(self, pending):
        plan = pending.row_plans[0]
        plan.relevant_columns = []  # a plan recorded before the metadata existed
        assert plan.preview
        fm = SimulatedFM(seed=3)
        complete_row_plan(pending, plan, fm)
        assert plan.name in pending.frame.columns
        preview_columns = [
            c for c in pending.frame.columns if c in plan.preview[0][0]
        ]
        assert pending.new_features[plan.name].input_columns == preview_columns

    def test_explicit_override_wins(self, pending):
        plan = pending.row_plans[0]
        fm = SimulatedFM(seed=3)
        fm.ledger.keep_history = True
        complete_row_plan(pending, plan, fm, relevant_columns=["City"])
        assert pending.new_features[plan.name].input_columns == ["City"]

    def test_executor_batches_the_rows(self, pending):
        from repro.fm import ThreadPoolFMExecutor

        plan = pending.row_plans[0]
        fm = SimulatedFM(seed=3)
        executor = ThreadPoolFMExecutor(8)
        complete_row_plan(pending, plan, fm, executor=executor)
        assert fm.ledger.n_calls == len(pending.frame)
        stats = executor.stats
        assert stats.critical_path_s < stats.summed_latency_s


class TestParseScalar:
    def test_numeric(self):
        from repro.core.parsing import parse_scalar

        assert parse_scalar(" 12.5 ") == 12.5
        assert parse_scalar('"3"') == 3.0

    def test_text_passthrough(self):
        from repro.core.parsing import parse_scalar

        assert parse_scalar("downtown") == "downtown"

    def test_unknown_and_empty_are_missing(self):
        from repro.core.parsing import parse_scalar

        assert parse_scalar("unknown") is None
        assert parse_scalar("UNKNOWN") is None
        assert parse_scalar("   ") is None

    def test_generator_alias_delegates(self):
        from repro.core.function_generator import FunctionGenerator

        assert FunctionGenerator._parse_value("7") == 7.0
