"""Tests for run summaries and provenance export."""

import json

import pytest

from repro.core import SmartFeat
from repro.core.report import provenance_json, result_summary
from repro.fm import SimulatedFM


@pytest.fixture(scope="module")
def result():
    from tests.core.conftest import INSURANCE_DESCRIPTIONS, make_insurance_frame

    tool = SmartFeat(
        fm=SimulatedFM(seed=0, model="gpt-4"),
        function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
        downstream_model="decision_tree",
    )
    return tool.fit_transform(
        make_insurance_frame(),
        target="Safe",
        descriptions=dict(INSURANCE_DESCRIPTIONS),
        title="Car insurance policyholders (insurance claims)",
        target_description="1 = safe",
    )


class TestSummary:
    def test_counts_match(self, result):
        text = result_summary(result)
        assert f"{len(result.new_features)} features accepted" in text

    def test_families_listed(self, result):
        text = result_summary(result)
        assert "unary" in text
        assert "extractor" in text

    def test_fm_usage_lines(self, result):
        text = result_summary(result)
        assert "FM usage [operator_selector]" in text
        assert "$" in text


class TestProvenance:
    def test_valid_json_with_all_features(self, result):
        payload = json.loads(provenance_json(result))
        assert len(payload["features"]) == len(result.new_features)

    def test_feature_records_complete(self, result):
        payload = json.loads(provenance_json(result))
        for record in payload["features"]:
            assert record["name"]
            assert record["family"] in ("unary", "binary", "high_order", "extractor")
            assert isinstance(record["input_columns"], list)
            assert record["output_columns"]

    def test_source_code_included(self, result):
        payload = json.loads(provenance_json(result))
        coded = [r for r in payload["features"] if "def transform" in r["source_code"]]
        assert coded

    def test_usage_and_rejections_present(self, result):
        payload = json.loads(provenance_json(result))
        assert "fm_usage" in payload
        assert "rejections" in payload
