"""Property suites for the production transport features.

1. **Hedged backend identity** — with hedging *enabled*, serial, thread,
   and async pipelines over seeded clients stay bit-identical (frames,
   accepted-feature order, full ledger snapshots including the hedge
   counters, which must all read zero: seeded clients are stateful, so
   the hedge gate must never arm for them).
2. **Kill-and-resume equivalence** — killing a checkpointed run after a
   random number of FM calls and resuming yields the uninterrupted
   run's output bit-identically with zero extra FM calls, for every
   kill point Hypothesis finds.
"""

import threading

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SmartFeat
from repro.dataframe import DataFrame
from repro.fm import (
    AsyncFMExecutor,
    HedgePolicy,
    SerialExecutor,
    SimulatedFM,
    ThreadPoolFMExecutor,
)


def small_frame() -> DataFrame:
    return DataFrame(
        {
            "Age": [21, 35, 42, 22, 45, 56, 30, 28] * 6,
            "Income": [10.0, 25.0, 18.5, 40.0, 31.0, 22.0, 15.5, 60.0] * 6,
            "City": ["SF", "LA", "SEA", "SF", "SEA", "LA", "SF", "LA"] * 6,
            "Target": [0, 1, 1, 0, 1, 1, 0, 1] * 6,
        }
    )


DESCRIPTIONS = {
    "Age": "Age of the customer in years",
    "Income": "Annual income in thousands of dollars",
    "City": "City of residence",
}

#: An aggressive policy: zero-delay hedges from the first call.  If the
#: stateless gate ever leaked, this would perturb seeded clients
#: maximally — which is exactly why the identity property uses it.
EAGER_HEDGE = HedgePolicy(initial_delay_s=0.0, min_observations=1, min_delay_s=0.0)


def frame_fingerprint(frame) -> tuple:
    parts = []
    for column in frame.columns:
        values = frame[column].to_numpy()
        # Object arrays hold pointers: compare their elements, not bytes.
        blob = (
            tuple(values.tolist())
            if values.dtype.kind == "O"
            else values.tobytes()
        )
        parts.append((column, values.dtype.str, blob))
    return tuple(parts)


def run_pipeline(executor, seed: int, wave_size: int):
    fm = SimulatedFM(seed=seed, model="gpt-4")
    function_fm = SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo")
    tool = SmartFeat(
        fm=fm,
        function_fm=function_fm,
        downstream_model="decision_tree",
        executor=executor,
        wave_size=wave_size,
    )
    result = tool.fit_transform(
        small_frame(), target="Target", descriptions=dict(DESCRIPTIONS)
    )
    return (
        list(result.new_features),  # acceptance order, not just the set
        frame_fingerprint(result.frame),
        result.dropped,
        result.rejections,
        result.errors,
        fm.ledger.snapshot(),
        function_fm.ledger.snapshot(),
    )


@given(
    seed=st.integers(min_value=0, max_value=6),
    wave_size=st.integers(min_value=1, max_value=5),
    concurrency=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_hedged_pipeline_identical_across_backends(seed, wave_size, concurrency):
    serial = run_pipeline(SerialExecutor(hedge=EAGER_HEDGE), seed, wave_size)
    with ThreadPoolFMExecutor(concurrency, hedge=EAGER_HEDGE) as pool:
        threaded = run_pipeline(pool, seed, wave_size)
    with AsyncFMExecutor(concurrency, hedge=EAGER_HEDGE) as loop:
        asynced = run_pipeline(loop, seed, wave_size)
    assert serial == threaded == asynced
    # Seeded clients are stateful: the hedge gate must never have armed.
    ledger = serial[5]
    assert ledger["hedges_issued"] == 0
    assert ledger["hedge_wasted_cost_usd"] == 0.0


# ----------------------------------------------------------------------
# Kill-and-resume equivalence
# ----------------------------------------------------------------------
class KillSignal(BaseException):
    """A process kill: no except-Exception path can swallow it."""


def make_tool(seed: int, checkpoint=None, resume=False) -> SmartFeat:
    return SmartFeat(
        fm=SimulatedFM(seed=seed, model="gpt-4"),
        function_fm=SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo"),
        downstream_model="decision_tree",
        checkpoint=checkpoint,
        resume=resume,
    )


def fit(tool: SmartFeat):
    return tool.fit_transform(
        small_frame(), target="Target", descriptions=dict(DESCRIPTIONS)
    )


def install_kill_switch(tool: SmartFeat, kill_after: int) -> None:
    count = {"n": 0}
    lock = threading.Lock()
    for client in (tool.fm, tool.function_fm):
        original = client._complete_with_state

        def killer(prompt, temperature, state, _original=original):
            with lock:
                count["n"] += 1
                n = count["n"]
            if n > kill_after:
                raise KillSignal("simulated kill")
            return _original(prompt, temperature, state)

        client._complete_with_state = killer


_BASELINES: dict[int, tuple] = {}


def baseline_for(seed: int) -> tuple:
    if seed not in _BASELINES:
        tool = make_tool(seed)
        result = fit(tool)
        _BASELINES[seed] = (
            list(result.new_features),
            frame_fingerprint(result.frame),
            tool.fm.ledger.n_calls + tool.function_fm.ledger.n_calls,
        )
    return _BASELINES[seed]


@given(
    seed=st.integers(min_value=0, max_value=3),
    kill_fraction=st.floats(min_value=0.05, max_value=0.98),
)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_kill_and_resume_equivalence(tmp_path_factory, seed, kill_fraction):
    features, fingerprint, base_calls = baseline_for(seed)
    kill_after = max(1, int(base_calls * kill_fraction))
    path = tmp_path_factory.mktemp("ckpt") / "run.json"

    killed = make_tool(seed, checkpoint=str(path))
    install_kill_switch(killed, kill_after)
    if kill_after >= base_calls:
        result = fit(killed)  # kill point past the end: run completes
    else:
        try:
            fit(killed)
            raise AssertionError("kill switch did not fire")
        except KillSignal:
            pass
        resumed = make_tool(seed, checkpoint=str(path), resume=True)
        result = fit(resumed)
        total = resumed.fm.ledger.n_calls + resumed.function_fm.ledger.n_calls
        # Zero extra FM calls: restored stages were not re-bought.
        assert total == base_calls
    assert list(result.new_features) == features
    assert frame_fingerprint(result.frame) == fingerprint
