"""Unit tests for the generated-code sandbox."""

import pytest

from repro.core.sandbox import SandboxViolation, TransformError, run_script, run_transform
from repro.dataframe import DataFrame, Series


@pytest.fixture
def frame():
    return DataFrame({"a": [1.0, 2.0, 3.0], "b": [1.0, 0.0, 2.0]})


class TestRunTransform:
    def test_returns_series(self, frame):
        out = run_transform("def transform(df):\n    return df['a'] * 2\n", frame)
        assert isinstance(out, Series)
        assert out.tolist() == [2.0, 4.0, 6.0]

    def test_returns_dataframe(self, frame):
        src = "def transform(df):\n    return pd.get_dummies(df['a'].astype(str), prefix='a')\n"
        out = run_transform(src, frame)
        assert isinstance(out, DataFrame)

    def test_pd_np_math_available(self, frame):
        src = (
            "def transform(df):\n"
            "    return df['a'].apply(lambda v: math.log(v + np.e))\n"
        )
        assert run_transform(src, frame).notna().all()

    def test_syntax_error_raises_transform_error(self, frame):
        with pytest.raises(TransformError, match="compile"):
            run_transform("def transform(df)\n    return 1\n", frame)

    def test_missing_transform_raises(self, frame):
        with pytest.raises(TransformError, match="does not define"):
            run_transform("x = 1\n", frame)

    def test_runtime_error_raises(self, frame):
        with pytest.raises(TransformError, match="raised"):
            run_transform("def transform(df):\n    return df['missing_column']\n", frame)

    def test_wrong_return_type_raises(self, frame):
        with pytest.raises(TransformError, match="must return"):
            run_transform("def transform(df):\n    return 42\n", frame)

    @pytest.mark.parametrize(
        "bad",
        [
            "import os\ndef transform(df):\n    return df['a']\n",
            "def transform(df):\n    __import__('os')\n    return df['a']\n",
            "def transform(df):\n    open('/etc/passwd')\n    return df['a']\n",
            "def transform(df):\n    eval('1+1')\n    return df['a']\n",
            "def transform(df):\n    x = ().__class__.__subclasses__()\n    return df['a']\n",
        ],
    )
    def test_forbidden_constructs_rejected(self, frame, bad):
        with pytest.raises(SandboxViolation):
            run_transform(bad, frame)

    def test_original_frame_not_required_to_change(self, frame):
        run_transform("def transform(df):\n    return df['a'] + df['b']\n", frame)
        assert frame.columns == ["a", "b"]


class TestRunScript:
    def test_assignment_into_copy(self, frame):
        out = run_script("df['c'] = df['a'] / df['b']\n", frame)
        assert "c" in out.columns
        assert "c" not in frame.columns  # original untouched

    def test_division_by_zero_leaks_inf(self, frame):
        # CAAFE-style unguarded division: inf must survive so the paper's
        # Diabetes failure can reproduce downstream.
        out = run_script("df['c'] = df['a'] / df['b']\n", frame)
        import math

        assert math.isinf(out["c"][1])

    def test_script_error_raises(self, frame):
        with pytest.raises(TransformError):
            run_script("df['c'] = df['nope'] * 2\n", frame)

    def test_forbidden_rejected(self, frame):
        with pytest.raises(SandboxViolation):
            run_script("import subprocess\n", frame)
