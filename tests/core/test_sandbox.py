"""Unit tests for the generated-code sandbox."""

import pytest

from repro.core.sandbox import SandboxViolation, TransformError, run_script, run_transform
from repro.dataframe import DataFrame, Series


@pytest.fixture
def frame():
    return DataFrame({"a": [1.0, 2.0, 3.0], "b": [1.0, 0.0, 2.0]})


class TestRunTransform:
    def test_returns_series(self, frame):
        out = run_transform("def transform(df):\n    return df['a'] * 2\n", frame)
        assert isinstance(out, Series)
        assert out.tolist() == [2.0, 4.0, 6.0]

    def test_returns_dataframe(self, frame):
        src = "def transform(df):\n    return pd.get_dummies(df['a'].astype(str), prefix='a')\n"
        out = run_transform(src, frame)
        assert isinstance(out, DataFrame)

    def test_pd_np_math_available(self, frame):
        src = (
            "def transform(df):\n"
            "    return df['a'].apply(lambda v: math.log(v + np.e))\n"
        )
        assert run_transform(src, frame).notna().all()

    def test_syntax_error_raises_transform_error(self, frame):
        with pytest.raises(TransformError, match="compile"):
            run_transform("def transform(df)\n    return 1\n", frame)

    def test_missing_transform_raises(self, frame):
        with pytest.raises(TransformError, match="does not define"):
            run_transform("x = 1\n", frame)

    def test_runtime_error_raises(self, frame):
        with pytest.raises(TransformError, match="raised"):
            run_transform("def transform(df):\n    return df['missing_column']\n", frame)

    def test_wrong_return_type_raises(self, frame):
        with pytest.raises(TransformError, match="must return"):
            run_transform("def transform(df):\n    return 42\n", frame)

    @pytest.mark.parametrize(
        "bad",
        [
            "import os\ndef transform(df):\n    return df['a']\n",
            "def transform(df):\n    __import__('os')\n    return df['a']\n",
            "def transform(df):\n    open('/etc/passwd')\n    return df['a']\n",
            "def transform(df):\n    eval('1+1')\n    return df['a']\n",
            "def transform(df):\n    x = ().__class__.__subclasses__()\n    return df['a']\n",
        ],
    )
    def test_forbidden_constructs_rejected(self, frame, bad):
        with pytest.raises(SandboxViolation):
            run_transform(bad, frame)

    def test_original_frame_not_required_to_change(self, frame):
        run_transform("def transform(df):\n    return df['a'] + df['b']\n", frame)
        assert frame.columns == ["a", "b"]


class TestASTVetting:
    """The AST pass catches spellings the substring pre-filter misses."""

    @pytest.mark.parametrize(
        "bad",
        [
            # extra whitespace defeats the "import os" token
            "import  os\ndef transform(df):\n    return df['a']\n",
            "import os as o\ndef transform(df):\n    return df['a']\n",
            "from os import path\ndef transform(df):\n    return df['a']\n",
            "from os.path import join\ndef transform(df):\n    return df['a']\n",
            "from . import something\ndef transform(df):\n    return df['a']\n",
            # dunder attribute access without the __subclasses__ token
            "def transform(df):\n    x = df.__class__\n    return df['a']\n",
            "def transform(df):\n    x = (1).__add__(2)\n    return df['a']\n",
            # aliasing a forbidden name without calling it
            "def transform(df):\n    f = eval\n    return df['a']\n",
            "def transform(df):\n    g = getattr\n    return df['a']\n",
        ],
    )
    def test_adversarial_sources_rejected(self, frame, bad):
        with pytest.raises(SandboxViolation):
            run_transform(bad, frame)

    @pytest.mark.parametrize(
        "ok",
        [
            # re-importing the exposed modules is harmless and allowed
            "import math\ndef transform(df):\n    return df['a'].apply(lambda v: math.sqrt(v))\n",
            "import numpy\ndef transform(df):\n    return df['a'] * numpy.e\n",
            "from math import sqrt\ndef transform(df):\n    return df['a'].apply(lambda v: sqrt(v))\n",
        ],
    )
    def test_allowlisted_imports_still_run(self, frame, ok):
        out = run_transform(ok, frame)
        assert out.notna().all()

    def test_syntax_error_still_reports_as_transform_error(self, frame):
        # the AST pass must not convert unparsable source into a
        # SandboxViolation — compile() owns the syntax-error message
        with pytest.raises(TransformError, match="compile"):
            run_transform("def transform(df)\n    return 1\n", frame)


class TestRunScript:
    def test_assignment_into_copy(self, frame):
        out = run_script("df['c'] = df['a'] / df['b']\n", frame)
        assert "c" in out.columns
        assert "c" not in frame.columns  # original untouched

    def test_division_by_zero_leaks_inf(self, frame):
        # CAAFE-style unguarded division: inf must survive so the paper's
        # Diabetes failure can reproduce downstream.
        out = run_script("df['c'] = df['a'] / df['b']\n", frame)
        import math

        assert math.isinf(out["c"][1])

    def test_script_error_raises(self, frame):
        with pytest.raises(TransformError):
            run_script("df['c'] = df['nope'] * 2\n", frame)

    def test_forbidden_rejected(self, frame):
        with pytest.raises(SandboxViolation):
            run_script("import subprocess\n", frame)

    def test_del_df_raises_transform_error(self, frame):
        # regression: `del df` used to escape as a bare KeyError from the
        # namespace lookup instead of a typed TransformError
        with pytest.raises(TransformError, match="deleted or rebound"):
            run_script("del df\n", frame)

    def test_rebound_df_raises_transform_error(self, frame):
        with pytest.raises(TransformError, match="deleted or rebound"):
            run_script("df = 42\n", frame)
