"""The sandbox compile cache: repeated replays skip recompilation."""

import threading

import pytest

from repro.core import sandbox
from repro.core.sandbox import (
    SandboxViolation,
    TransformError,
    clear_compile_cache,
    run_script,
    run_transform,
)
from repro.dataframe import DataFrame
from repro.dataframe.series import Series


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


@pytest.fixture
def frame():
    return DataFrame({"x": Series([1.0, 2.0, 3.0])})


SOURCE = "def transform(df):\n    return df['x'] * 2\n"


class TestCompileCache:
    def test_repeat_run_hits_cache(self, frame):
        run_transform(SOURCE, frame)
        assert (("<fm-transform>", SOURCE)) in sandbox._COMPILE_CACHE
        code_first = sandbox._COMPILE_CACHE[("<fm-transform>", SOURCE)]
        run_transform(SOURCE, frame)
        assert sandbox._COMPILE_CACHE[("<fm-transform>", SOURCE)] is code_first

    def test_results_identical_across_cache_hits(self, frame):
        first = run_transform(SOURCE, frame)
        second = run_transform(SOURCE, frame)
        assert first.tolist() == second.tolist()

    def test_transform_and_script_keys_do_not_collide(self, frame):
        src = "def transform(df):\n    return df['x'] + 1\n"
        run_transform(src, frame)
        assert ("<fm-transform>", src) in sandbox._COMPILE_CACHE
        assert ("<fm-script>", src) not in sandbox._COMPILE_CACHE

    def test_violation_raises_every_call(self, frame):
        bad = "import os\ndef transform(df):\n    return df['x']\n"
        for _ in range(2):
            with pytest.raises(SandboxViolation):
                run_transform(bad, frame)
        assert ("<fm-transform>", bad) not in sandbox._COMPILE_CACHE

    def test_syntax_error_not_cached(self, frame):
        bad = "def transform(df)\n    return df['x']\n"
        with pytest.raises(TransformError, match="does not compile"):
            run_transform(bad, frame)
        assert ("<fm-transform>", bad) not in sandbox._COMPILE_CACHE

    def test_cache_is_bounded(self, frame):
        limit = sandbox._COMPILE_CACHE_LIMIT
        for i in range(limit + 10):
            run_transform(f"def transform(df):\n    return df['x'] + {i}\n", frame)
        assert len(sandbox._COMPILE_CACHE) <= limit

    def test_run_script_uses_cache(self, frame):
        src = "df['y'] = df['x'] + 1\n"
        out = run_script(src, frame)
        assert out["y"].tolist() == [2.0, 3.0, 4.0]
        assert ("<fm-script>", src) in sandbox._COMPILE_CACHE

    def test_clear_compile_cache(self, frame):
        run_transform(SOURCE, frame)
        clear_compile_cache()
        assert not sandbox._COMPILE_CACHE

    def test_concurrent_compilation_is_safe(self, frame):
        errors = []

        def worker(tag):
            try:
                for i in range(50):
                    src = f"def transform(df):\n    return df['x'] + {i % 7}\n"
                    out = run_transform(src, frame)
                    assert out.tolist() == [1.0 + i % 7, 2.0 + i % 7, 3.0 + i % 7]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
