"""Unit coverage for the stage-graph scheduler layer.

Graph hazard derivation, pipeline graph shape, schedule reporting,
per-stage view restriction, budget-aware planning decisions, and the
supporting pieces (Budget.headroom, StageTimer windows, Series grouping
cache, executor batch attribution).
"""

import numpy as np
import pytest

from repro.core import SmartFeat
from repro.core.scheduler import StageGraph, StageNode, WILDCARD
from repro.core.timing import StageTimer
from repro.core.types import OperatorFamily
from repro.dataframe import DataFrame, Series
from repro.eval import render_schedule
from repro.fm import (
    Budget,
    FMBudgetExceededError,
    SerialExecutor,
    SimulatedFM,
)


def _noop(ctx, node):
    del ctx, node


def _node(name, reads, writes, **kw):
    return StageNode(
        name=name,
        runner=_noop,
        reads=frozenset(reads),
        writes=frozenset(writes),
        timer_key=name,
        **kw,
    )


def small_frame() -> DataFrame:
    return DataFrame(
        {
            "Age": [21, 35, 42, 22, 45, 56, 30, 28] * 6,
            "Income": [10.0, 25.0, 18.5, 40.0, 31.0, 22.0, 15.5, 60.0] * 6,
            "City": ["SF", "LA", "SEA", "SF", "SEA", "LA", "SF", "LA"] * 6,
            "Target": [0, 1, 1, 0, 1, 1, 0, 1] * 6,
        }
    )


DESCRIPTIONS = {
    "Age": "Age of the customer in years",
    "Income": "Annual income in thousands of dollars",
    "City": "City of residence",
}


def run_smartfeat(**kwargs):
    fm = SimulatedFM(seed=0, model="gpt-4")
    function_fm = SimulatedFM(seed=1, model="gpt-3.5-turbo")
    tool = SmartFeat(fm=fm, function_fm=function_fm, **kwargs)
    result = tool.fit_transform(
        small_frame(), target="Target", descriptions=dict(DESCRIPTIONS)
    )
    return result, fm, function_fm, tool


# ----------------------------------------------------------------------
# StageGraph hazard derivation
# ----------------------------------------------------------------------
class TestStageGraph:
    def test_read_after_write_is_an_edge(self):
        graph = StageGraph(
            [_node("a", {"originals"}, {"unary"}), _node("b", {"unary"}, {"binary"})]
        )
        assert graph.dependencies() == {"a": (), "b": ("a",)}

    def test_disjoint_stages_are_independent(self):
        graph = StageGraph(
            [
                _node("a", {"originals"}, {"unary"}),
                _node("b", {"originals", "unary"}, {"binary"}),
                _node("c", {"originals", "unary"}, {"high_order"}),
            ]
        )
        deps = graph.dependencies()
        assert deps["b"] == ("a",)
        assert deps["c"] == ("a",)  # no edge to b: reads/writes disjoint

    def test_write_after_write_is_an_edge(self):
        graph = StageGraph(
            [_node("a", set(), {"x"}), _node("b", set(), {"x"})]
        )
        assert graph.dependencies()["b"] == ("a",)

    def test_write_after_read_is_an_edge(self):
        graph = StageGraph(
            [_node("a", {"x"}, {"y"}), _node("b", set(), {"x"})]
        )
        assert graph.dependencies()["b"] == ("a",)

    def test_wildcard_conflicts_with_everything(self):
        graph = StageGraph(
            [
                _node("a", {"originals"}, {"unary"}),
                _node("z", {WILDCARD}, {"originals"}),
            ]
        )
        assert graph.dependencies()["z"] == ("a",)

    def test_duplicate_node_name_rejected(self):
        graph = StageGraph([_node("a", set(), {"x"})])
        with pytest.raises(ValueError, match="duplicate"):
            graph.add(_node("a", set(), {"y"}))


# ----------------------------------------------------------------------
# Pipeline graph shape
# ----------------------------------------------------------------------
class TestPipelineGraph:
    def _graph(self, **kwargs):
        tool = SmartFeat(fm=SimulatedFM(seed=0), **kwargs)
        ctx = type("Ctx", (), {"original_features": ["a", "b", "c"]})()
        return tool.build_stage_graph(ctx)

    def test_default_graph_nodes_and_edges(self):
        graph = self._graph()
        assert [n.name for n in graph.nodes] == [
            "unary",
            "binary",
            "high_order",
            "extractor",
            "drop",
        ]
        deps = graph.dependencies()
        assert deps["binary"] == ("unary",)
        assert deps["high_order"] == ("unary",)  # independent of binary
        assert deps["extractor"] == ("unary",)
        assert set(deps["drop"]) == {"unary", "binary", "high_order", "extractor"}

    def test_fm_removal_is_optional_and_last(self):
        graph = self._graph(fm_feature_removal=True)
        assert graph.nodes[-1].name == "fm_removal"
        assert graph.nodes[-1].optional
        assert "drop" in graph.dependencies()["fm_removal"]

    def test_family_subsets_shrink_the_graph(self):
        graph = self._graph(
            operator_families=(OperatorFamily.BINARY,), drop_heuristic=False
        )
        assert [n.name for n in graph.nodes] == ["binary"]
        assert graph.dependencies()["binary"] == ()

    def test_sampling_nodes_are_shrinkable(self):
        graph = self._graph()
        assert not graph["unary"].shrinkable
        assert all(graph[n].shrinkable for n in ("binary", "high_order", "extractor"))


# ----------------------------------------------------------------------
# Schedule report
# ----------------------------------------------------------------------
class TestScheduleReport:
    def test_report_shape_and_timeline(self):
        result, *_ = run_smartfeat(stage_plan="overlap")
        schedule = result.fm_usage["execution"]["schedule"]
        assert schedule["plan"] == "overlap"
        assert schedule["dispatch_order"] == [
            "unary",
            "binary",
            "high_order",
            "extractor",
            "drop",
        ]
        names = [n["name"] for n in schedule["nodes"]]
        assert names == schedule["dispatch_order"]
        assert schedule["makespan_overlap_s"] <= schedule["makespan_serial_s"]
        assert schedule["overlap_speedup"] >= 1.0
        assert schedule["critical_path"][0] == "unary"
        for node in schedule["nodes"]:
            assert node["end_s"] >= node["start_s"]
            if node["name"] != "unary" and node["name"] != "drop":
                # post-unary stages all start when unary ends
                assert node["depends_on"] == ["unary"]

    def test_serial_plan_reports_chain_semantics(self):
        result, *_ = run_smartfeat(stage_plan="serial")
        schedule = result.fm_usage["execution"]["schedule"]
        assert schedule["plan"] == "serial"
        # Same graph, same hazard edges: the report still shows the DAG
        # (and what overlap would save) even when views were serial.
        assert schedule["makespan_overlap_s"] <= schedule["makespan_serial_s"]

    def test_per_node_attribution_sums_to_ledger(self):
        result, fm, function_fm, _ = run_smartfeat()
        schedule = result.fm_usage["execution"]["schedule"]
        per_node = sum(n["fm_calls"] for n in schedule["nodes"])
        assert per_node == fm.ledger.n_calls + function_fm.ledger.n_calls

    def test_dataplane_keys_unchanged(self):
        result, *_ = run_smartfeat()
        dataplane = result.fm_usage["execution"]["dataplane"]
        assert {"unary_stage", "binary_stage", "high_order_stage",
                "extractor_stage", "drop_heuristic"} <= set(dataplane)
        assert "transform_exec" in dataplane

    def test_render_schedule_smoke(self):
        result, *_ = run_smartfeat(stage_plan="overlap")
        text = render_schedule(result.fm_usage["execution"]["schedule"])
        assert "dispatch: unary -> binary -> high_order -> extractor -> drop" in text
        assert "critical path:" in text


# ----------------------------------------------------------------------
# View restriction under the overlap plan
# ----------------------------------------------------------------------
class TestOverlapViews:
    def _high_order_prompts(self, plan):
        fm = SimulatedFM(seed=0, model="gpt-4")
        fm.ledger.keep_history = True
        tool = SmartFeat(
            fm=fm,
            function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
            stage_plan=plan,
        )
        result = tool.fit_transform(
            small_frame(), target="Target", descriptions=dict(DESCRIPTIONS)
        )
        binary_features = [
            name
            for name, feature in result.new_features.items()
            if feature.family == OperatorFamily.BINARY
        ]
        prompts = [
            prompt
            for prompt, _ in fm.ledger.history
            if "Generate a groupby feature" in prompt
        ]
        return binary_features, prompts

    def test_high_order_view_excludes_binary_columns(self):
        binary_serial, serial_prompts = self._high_order_prompts("serial")
        binary_overlap, overlap_prompts = self._high_order_prompts("overlap")
        assert binary_serial and binary_serial == binary_overlap
        feature = binary_serial[0]
        # The chain's high-order prompts mention the binary feature; the
        # overlap plan's declared-reads view cuts it out.
        assert any(feature in p for p in serial_prompts)
        assert not any(feature in p for p in overlap_prompts)

    def test_serial_plan_views_are_shared_objects(self):
        # plan="serial" must hand stages the shared frame/agenda (the
        # legacy chain), not rebuilt views.
        tool = SmartFeat(fm=SimulatedFM(seed=0), stage_plan="serial")
        result = tool.fit_transform(small_frame(), target="Target")
        assert result.frame is not None  # ran through the graph end to end

    def test_invalid_stage_plan_rejected(self):
        with pytest.raises(ValueError, match="stage_plan"):
            SmartFeat(fm=SimulatedFM(seed=0), stage_plan="zigzag")


# ----------------------------------------------------------------------
# Budget-aware planning
# ----------------------------------------------------------------------
class TestBudgetPlanning:
    def test_without_planning_budget_error_propagates(self):
        with pytest.raises(FMBudgetExceededError):
            run_smartfeat(budget=Budget(max_calls=5))

    def test_planned_run_completes_and_records_decisions(self):
        result, fm, function_fm, tool = run_smartfeat(
            budget=Budget(max_calls=12), plan_budget=True, fm_feature_removal=True
        )
        schedule = result.fm_usage["execution"]["schedule"]
        assert schedule["plan_budget"] is True
        statuses = {n["name"]: n["status"] for n in schedule["nodes"]}
        assert statuses["fm_removal"] == "skipped"  # optional drops first
        assert schedule["degraded"]
        # drop heuristic is data-plane only: never budget-gated.
        assert statuses["drop"] == "ran"

    def test_shrunk_node_records_granted_draws(self):
        # Generous enough for unary, tight enough to shrink binary.
        result, *_ = run_smartfeat(budget=Budget(max_calls=16), plan_budget=True)
        nodes = {n["name"]: n for n in result.fm_usage["execution"]["schedule"]["nodes"]}
        shrunk = [n for n in nodes.values() if n["status"] == "shrunk"]
        assert shrunk
        for node in shrunk:
            assert 1 <= node["granted_draws"] < node["planned_draws"]

    def test_skipped_nodes_make_no_calls(self):
        result, *_ = run_smartfeat(budget=Budget(max_calls=8), plan_budget=True)
        for node in result.fm_usage["execution"]["schedule"]["nodes"]:
            if node["status"] == "skipped":
                assert node["fm_calls"] == 0

    def test_spend_overshoot_bounded_by_one_batch(self):
        budget = Budget(max_calls=6)
        result, fm, function_fm, _ = run_smartfeat(budget=budget, plan_budget=True)
        # Batch-granular enforcement (the PR 2 contract): the overshoot
        # is at most the in-flight batch, here the unary proposal batch.
        assert budget.spent_calls <= 6 + len(DESCRIPTIONS)

    def test_truncated_sampling_stage_still_records_errors(self):
        # Long function-generation completions make actual per-call
        # latency far exceed the planner's estimate, so the stage is
        # dispatched and then truncated by the meter mid-wave — its
        # error count must still land in result.errors.
        import json

        from repro.fm import ScriptedFM

        def candidate(i):
            return json.dumps(
                {
                    "operator": "-",
                    "columns": ["Age", "Income"],
                    "name": f"gap_{i}",
                    "description": f"binary[-]: gap variant {i}",
                }
            )

        padding = "\n".join(f"# padding line {i}" for i in range(120))
        code = (
            f"```python\n{padding}\ndef transform(df):\n"
            "    return df['Age'] - df['Income']\n```"
        )
        fm = ScriptedFM([candidate(i) for i in range(20)])
        function_fm = ScriptedFM(lambda prompt: code)
        tool = SmartFeat(
            fm=fm,
            function_fm=function_fm,
            budget=Budget(max_latency_s=20.0),
            plan_budget=True,
            operator_families=(OperatorFamily.BINARY,),
            drop_heuristic=False,
        )
        result = tool.fit_transform(small_frame(), target="Target")
        statuses = {
            n["name"]: n["status"]
            for n in result.fm_usage["execution"]["schedule"]["nodes"]
        }
        assert statuses["binary"] == "truncated"
        assert "binary" in result.errors

    def test_headroom_axes(self):
        budget = Budget(max_calls=10, max_cost_usd=1.0)
        budget.charge(cost_usd=0.25)
        head = budget.headroom()
        assert head["calls"] == 9
        assert head["cost_usd"] == pytest.approx(0.75)
        assert head["latency_s"] is None


# ----------------------------------------------------------------------
# Supporting pieces
# ----------------------------------------------------------------------
class TestStageTimerWindows:
    def test_windows_track_first_start_and_last_end(self):
        timer = StageTimer()
        with timer.time("a"):
            pass
        with timer.time("a"):
            pass
        with timer.time("b"):
            pass
        windows = timer.windows()
        assert set(windows) == {"a", "b"}
        first, last = windows["a"]
        assert 0.0 <= first <= last
        assert timer.snapshot()["a"]["calls"] == 2
        assert timer.seconds("missing") == 0.0


class TestSeriesGroupingCache:
    def test_grouping_is_cached(self):
        s = Series(["x", "y", "x", "z"] * 10, "key")
        first = s.grouping()
        assert first is s.grouping()
        order, starts, inverse = first
        assert not order.flags.writeable  # shared result is frozen

    def test_setitem_invalidates(self):
        s = Series(["x", "y", "x", "z"], "key")
        before = s.grouping()
        s[0] = "z"
        after = s.grouping()
        assert after is not before
        # Correctness after mutation: z,y,x,z -> segments reflect new data.
        frame = DataFrame({"key": ["z", "y", "x", "z"], "v": [1.0, 2.0, 3.0, 4.0]})
        expected = frame.groupby("key")["v"].transform("sum").tolist()
        frame2 = DataFrame({"key": ["x", "y", "x", "z"], "v": [1.0, 2.0, 3.0, 4.0]})
        frame2["key"][0] = "z"  # mutate through the cached Series
        got = frame2.groupby("key")["v"].transform("sum").tolist()
        assert got == expected

    def test_missing_keys_cache_the_hash_fallback(self):
        s = Series(["x", None, "x"], "key")
        assert s.grouping() is None
        assert s.grouping() is None  # cached negative

    def test_repeated_groupbys_share_the_index_arrays(self):
        frame = DataFrame({"key": ["a", "b", "a", "c"] * 25, "v": list(range(100))})
        g1 = frame.groupby("key")["v"].transform("mean")
        g2 = frame.groupby("key")["v"].transform("mean")
        assert g1.tolist() == g2.tolist()
        assert frame["key"].grouping() is frame["key"].grouping()


class TestExecutorBatchLog:
    def test_batches_attributed_to_stage_scope(self):
        from repro.fm import FMRequest

        fm = SimulatedFM(seed=0)
        executor = SerialExecutor()
        with executor.stage("alpha"):
            executor.run(fm, [FMRequest("p1"), FMRequest("p2")])
        executor.run(fm, [FMRequest("p3")])
        assert [b.stage for b in executor.batch_log] == ["alpha", None]
        assert executor.batch_log[0].n_calls == 2

    def test_stage_scopes_nest(self):
        executor = SerialExecutor()
        with executor.stage("outer"):
            with executor.stage("inner"):
                assert executor._stage_tag == "inner"
            assert executor._stage_tag == "outer"
        assert executor._stage_tag is None


# ----------------------------------------------------------------------
# Physical stage fan-out (stateless clients, concurrent executor)
# ----------------------------------------------------------------------
class _Ctx:
    """Minimal stage context for driving StageScheduler directly."""

    def __init__(self):
        self.timer = StageTimer()
        self.granted_draws = {}


def _stateless_client():
    from repro.fm import ScriptedTransport, TransportFMClient

    return TransportFMClient(ScriptedTransport([f"r{i}" for i in range(64)]))


class TestPhysicalOverlap:
    def _scheduler(self, executor, clients, **kwargs):
        from repro.core.scheduler import StageScheduler

        return StageScheduler(executor=executor, clients=clients, **kwargs)

    def test_detection_requires_overlap_concurrency_and_statelessness(self):
        from repro.fm import ThreadPoolFMExecutor

        stateless = (_stateless_client(),)
        seeded = (SimulatedFM(seed=0),)
        with ThreadPoolFMExecutor(2) as pool:
            assert self._scheduler(pool, stateless, plan="overlap")._physical_overlap()
            assert not self._scheduler(pool, stateless, plan="serial")._physical_overlap()
            assert not self._scheduler(pool, seeded, plan="overlap")._physical_overlap()
            assert not self._scheduler(
                pool, stateless, plan="overlap", physical="off"
            )._physical_overlap()
        assert not self._scheduler(
            SerialExecutor(), stateless, plan="overlap"
        )._physical_overlap()

    def test_independent_nodes_really_run_concurrently(self):
        """Two hazard-free nodes must pass a 2-party barrier — impossible
        under sequential dispatch."""
        import threading

        from repro.fm import ThreadPoolFMExecutor

        barrier = threading.Barrier(2, timeout=10)
        met: list[str] = []

        def meet(ctx, node):
            barrier.wait()
            met.append(node.name)

        graph = StageGraph(
            [
                StageNode(
                    name=name,
                    runner=meet,
                    reads=frozenset({"originals"}),
                    writes=frozenset({name}),
                    timer_key=name,
                    fm=False,
                )
                for name in ("left", "right")
            ]
        )
        with ThreadPoolFMExecutor(2) as pool:
            scheduler = self._scheduler(pool, (_stateless_client(),), plan="overlap")
            schedule = scheduler.execute(graph, _Ctx())
        assert schedule.physical
        assert sorted(met) == ["left", "right"]
        assert schedule.report()["physical_overlap"] is True

    def test_failure_stops_launches_and_reraises(self):
        from repro.fm import ThreadPoolFMExecutor

        ran: list[str] = []

        def ok(ctx, node):
            ran.append(node.name)

        def boom(ctx, node):
            raise RuntimeError("stage died")

        graph = StageGraph(
            [
                StageNode(
                    name="a",
                    runner=boom,
                    reads=frozenset({"originals"}),
                    writes=frozenset({"unary"}),
                    timer_key="a",
                    fm=False,
                ),
                StageNode(
                    name="b",
                    runner=ok,
                    reads=frozenset({"unary"}),
                    writes=frozenset({"binary"}),
                    timer_key="b",
                    fm=False,
                ),
            ]
        )
        with ThreadPoolFMExecutor(2) as pool:
            scheduler = self._scheduler(pool, (_stateless_client(),), plan="overlap")
            with pytest.raises(RuntimeError, match="stage died"):
                scheduler.execute(graph, _Ctx())
        assert ran == []  # b never launched: its dependency failed

    def test_physical_attribution_sums_to_ledger(self):
        """Batch-tag attribution must equal what ledger deltas would have
        said: per-node fm_calls/cost sum to the client ledger totals."""
        from repro.fm import FMRequest, ThreadPoolFMExecutor

        client = _stateless_client()

        def call_twice(ctx, node):
            # Runs on the node's own thread; the stage scope is set there.
            executor.run(client, [FMRequest(f"{node.name}-1"), FMRequest(f"{node.name}-2")])

        graph = StageGraph(
            [
                StageNode(
                    name=name,
                    runner=call_twice,
                    reads=frozenset({"originals"}),
                    writes=frozenset({name}),
                    timer_key=name,
                )
                for name in ("x", "y", "z")
            ]
        )
        with ThreadPoolFMExecutor(3) as executor:
            scheduler = self._scheduler(executor, (client,), plan="overlap")
            schedule = scheduler.execute(graph, _Ctx())
        assert schedule.physical
        by_name = {r.name: r for r in schedule.records}
        assert all(by_name[n].fm_calls == 2 for n in ("x", "y", "z"))
        assert sum(r.fm_calls for r in schedule.records) == client.ledger.n_calls
        assert sum(r.cost_usd for r in schedule.records) == pytest.approx(
            client.ledger.cost_usd
        )

    def test_budget_planner_skips_in_physical_mode(self):
        from repro.fm import ThreadPoolFMExecutor

        budget = Budget(max_calls=0)
        ran: list[str] = []

        def should_not_run(ctx, node):
            ran.append(node.name)

        graph = StageGraph(
            [
                StageNode(
                    name="fm_stage",
                    runner=should_not_run,
                    reads=frozenset({"originals"}),
                    writes=frozenset({"unary"}),
                    timer_key="fm_stage",
                    planned_draws=4,
                )
            ]
        )
        with ThreadPoolFMExecutor(2) as pool:
            scheduler = self._scheduler(
                pool,
                (_stateless_client(),),
                plan="overlap",
                budget=budget,
                plan_budget=True,
            )
            schedule = scheduler.execute(graph, _Ctx())
        assert ran == []
        assert schedule.records[0].status == "skipped"

    def test_pipeline_physical_run_schedules_and_completes(self):
        """End-to-end: SmartFeat over stateless transport clients with an
        overlap plan reports physical_overlap and produces features."""
        from repro.fm import (
            SimulatedHTTPTransport,
            ThreadPoolFMExecutor,
            TransportFMClient,
        )

        selector_server = SimulatedFM(seed=0, model="gpt-4")
        generator_server = SimulatedFM(seed=1, model="gpt-3.5-turbo")
        fm = TransportFMClient(
            SimulatedHTTPTransport(
                responder=lambda req: selector_server._complete_text(
                    req.prompt, req.temperature
                ),
                sleep=False,
            ),
            model="gpt-4",
        )
        function_fm = TransportFMClient(
            SimulatedHTTPTransport(
                responder=lambda req: generator_server._complete_text(
                    req.prompt, req.temperature
                ),
                sleep=False,
            ),
            model="gpt-3.5-turbo",
        )
        with ThreadPoolFMExecutor(4) as executor:
            tool = SmartFeat(
                fm=fm,
                function_fm=function_fm,
                executor=executor,
                wave_size=2,
                sampling_budget=4,
                stage_plan="overlap",
            )
            result = tool.fit_transform(
                small_frame(), target="Target", descriptions=dict(DESCRIPTIONS)
            )
        schedule = result.fm_usage["execution"]["schedule"]
        assert schedule["physical_overlap"] is True
        assert result.new_features
        total_calls = fm.ledger.n_calls + function_fm.ledger.n_calls
        assert (
            sum(n["fm_calls"] for n in schedule["nodes"]) == total_calls
        )
