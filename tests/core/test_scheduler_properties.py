"""Property-based serial/overlap equivalence over the stage scheduler.

The stage-graph contract, one level above the executor properties in
``test_concurrent_properties.py``: for *random* operator-family subsets,
wave sizes, concurrency levels, seeds, and injected rate-limit failures,
a seeded pipeline must produce identical results — frame values,
accepted-feature order, drop/rejection bookkeeping, and ledger call
counts — under ``stage_plan="serial"`` and ``stage_plan="overlap"``.

This is the proof that each stage's declared reads cover everything the
FM's answers actually depend on: the overlap plan cuts every stage's
prompts down to its declared view, so any hidden information flow would
change a draw and fail the property.  (Token totals legitimately differ
— narrower views mean shorter prompts — so ledgers are compared on call
counts, the quantity the §3.2 efficiency claim is about.)
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SmartFeat
from repro.core.types import OperatorFamily
from repro.dataframe import DataFrame
from repro.fm import (
    FMRateLimitError,
    RetryPolicy,
    ScriptedFM,
    SerialExecutor,
    SimulatedFM,
    ThreadPoolFMExecutor,
)

FAMILY_SUBSETS = [
    (
        OperatorFamily.UNARY,
        OperatorFamily.BINARY,
        OperatorFamily.HIGH_ORDER,
        OperatorFamily.EXTRACTOR,
    ),
    (OperatorFamily.UNARY, OperatorFamily.BINARY, OperatorFamily.HIGH_ORDER),
    (OperatorFamily.UNARY, OperatorFamily.HIGH_ORDER, OperatorFamily.EXTRACTOR),
    (OperatorFamily.BINARY, OperatorFamily.HIGH_ORDER, OperatorFamily.EXTRACTOR),
    (OperatorFamily.UNARY, OperatorFamily.EXTRACTOR),
    (OperatorFamily.BINARY, OperatorFamily.HIGH_ORDER),
]


def small_frame() -> DataFrame:
    return DataFrame(
        {
            "Age": [21, 35, 42, 22, 45, 56, 30, 28] * 6,
            "Income": [10.0, 25.0, 18.5, 40.0, 31.0, 22.0, 15.5, 60.0] * 6,
            "City": ["SF", "LA", "SEA", "SF", "SEA", "LA", "SF", "LA"] * 6,
            "Target": [0, 1, 1, 0, 1, 1, 0, 1] * 6,
        }
    )


DESCRIPTIONS = {
    "Age": "Age of the customer in years",
    "Income": "Annual income in thousands of dollars",
    "City": "City of residence",
}


def frame_values(frame: DataFrame) -> dict[str, list]:
    return {column: frame[column].tolist() for column in frame.columns}


def frames_equal(a: dict[str, list], b: dict[str, list]) -> bool:
    if list(a) != list(b):
        return False
    for column in a:
        if len(a[column]) != len(b[column]):
            return False
        for x, y in zip(a[column], b[column]):
            if x is None or y is None:
                if x is not y:
                    return False
            elif isinstance(x, float) and isinstance(y, float):
                if x != y and not (x != x and y != y):  # NaN == NaN here
                    return False
            elif x != y:
                return False
    return True


def fingerprint(result, clients) -> tuple:
    """Everything the equivalence contract covers, ready to compare."""
    return (
        list(result.new_features),  # accepted features, in acceptance order
        result.dropped,
        result.removed_by_fm,
        result.errors,
        result.rejections,
        [plan.name for plan in result.row_plans],
        [s.name for s in result.suggestions],
        [(c.ledger.n_calls, c.ledger.cache_hits) for c in clients],
    )


class RateLimitedSimulatedFM(SimulatedFM):
    """SimulatedFM that 429s once per *fail_every*-th reserved call.

    Failures key on the reserved counter value, so both plans (which
    issue the same call sequence) hit identical failures at identical
    positions; the retry reserves fresh state exactly like a real
    re-issued call.
    """

    def __init__(self, fail_every: int, **kwargs) -> None:
        super().__init__(**kwargs)
        self.fail_every = fail_every
        self._failed: set[int] = set()

    def _complete_with_state(self, prompt, temperature, state):
        if (
            isinstance(state, int)
            and state % self.fail_every == 0
            and state not in self._failed
        ):
            self._failed.add(state)
            raise FMRateLimitError(f"simulated 429 at call {state}")
        return super()._complete_with_state(prompt, temperature, state)


def run_plan(
    plan: str,
    seed: int,
    wave_size: int,
    concurrency: int,
    families,
    fail_every: int | None = None,
    fm_feature_removal: bool = False,
):
    if fail_every is not None:
        fm = RateLimitedSimulatedFM(fail_every, seed=seed, model="gpt-4")
        function_fm = RateLimitedSimulatedFM(
            fail_every, seed=seed + 1, model="gpt-3.5-turbo"
        )
        retry = RetryPolicy(max_attempts=3)
    else:
        fm = SimulatedFM(seed=seed, model="gpt-4")
        function_fm = SimulatedFM(seed=seed + 1, model="gpt-3.5-turbo")
        retry = None
    if concurrency == 1:
        executor = SerialExecutor(retry=retry)
    else:
        executor = ThreadPoolFMExecutor(concurrency, retry=retry)
    try:
        tool = SmartFeat(
            fm=fm,
            function_fm=function_fm,
            downstream_model="decision_tree",
            executor=executor,
            wave_size=wave_size,
            operator_families=families,
            stage_plan=plan,
            fm_feature_removal=fm_feature_removal,
        )
        result = tool.fit_transform(
            small_frame(), target="Target", descriptions=dict(DESCRIPTIONS)
        )
        return fingerprint(result, (fm, function_fm)), frame_values(result.frame)
    finally:
        if isinstance(executor, ThreadPoolFMExecutor):
            executor.close()


# ----------------------------------------------------------------------
# Core property: serial plan == overlap plan on seeded clients.
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=30),
    wave_size=st.integers(min_value=1, max_value=6),
    concurrency=st.sampled_from([1, 4, 8]),
    families=st.sampled_from(FAMILY_SUBSETS),
    removal=st.booleans(),
)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_serial_and_overlap_plans_identical(
    seed, wave_size, concurrency, families, removal
):
    serial_fp, serial_frame = run_plan(
        "serial", seed, wave_size, concurrency, families, fm_feature_removal=removal
    )
    overlap_fp, overlap_frame = run_plan(
        "overlap", seed, wave_size, concurrency, families, fm_feature_removal=removal
    )
    assert serial_fp == overlap_fp
    assert frames_equal(serial_frame, overlap_frame)


# ----------------------------------------------------------------------
# With injected 429s + retries: the schedule must stay equivalent.
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=10),
    wave_size=st.integers(min_value=1, max_value=4),
    fail_every=st.integers(min_value=3, max_value=9),
    concurrency=st.sampled_from([1, 4]),
)
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_plans_identical_under_rate_limits(seed, wave_size, fail_every, concurrency):
    families = FAMILY_SUBSETS[0]
    serial_fp, serial_frame = run_plan(
        "serial", seed, wave_size, concurrency, families, fail_every=fail_every
    )
    overlap_fp, overlap_frame = run_plan(
        "overlap", seed, wave_size, concurrency, families, fail_every=fail_every
    )
    assert serial_fp == overlap_fp
    assert frames_equal(serial_frame, overlap_frame)


# ----------------------------------------------------------------------
# Scripted adversarial schedules: garbage/duplicate mixes at random
# positions must fail identically under both plans.
# ----------------------------------------------------------------------
def _binary_candidate(index: int) -> str:
    return json.dumps(
        {
            "operator": "-",
            "columns": ["Age", "Income"],
            "name": f"gap_{index}",
            "description": f"binary[-]: gap variant {index}",
        }
    )


GOOD_CODE = "```python\ndef transform(df):\n    return df['Age'] - df['Income']\n```"


@given(
    schedule=st.lists(
        st.sampled_from(["valid", "garbage", "duplicate"]), min_size=2, max_size=10
    ),
    wave_size=st.integers(min_value=1, max_value=5),
    error_threshold=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_scripted_schedules_identical_across_plans(
    schedule, wave_size, error_threshold
):
    def responses():
        out = []
        for i, kind in enumerate(schedule):
            if kind == "valid":
                out.append(_binary_candidate(i))
            elif kind == "duplicate":
                out.append(_binary_candidate(0))
            else:
                out.append("garbage that parses to nothing")
        return out

    def run(plan):
        fm = ScriptedFM(responses())
        function_fm = ScriptedFM(lambda prompt: GOOD_CODE)
        tool = SmartFeat(
            fm=fm,
            function_fm=function_fm,
            downstream_model="decision_tree",
            operator_families=(OperatorFamily.BINARY,),
            sampling_budget=len(schedule),
            error_threshold=error_threshold,
            wave_size=wave_size,
            stage_plan=plan,
        )
        result = tool.fit_transform(small_frame(), target="Target")
        return (
            list(result.new_features),
            result.errors,
            fm.ledger.n_calls,
        ), frame_values(result.frame)

    serial_fp, serial_frame = run("serial")
    overlap_fp, overlap_frame = run("overlap")
    assert serial_fp == overlap_fp
    assert frames_equal(serial_frame, overlap_frame)
