"""Unit tests for the operator selector and the function generator."""

import pytest

from repro.core import FunctionGenerator, OperatorSelector
from repro.core.types import FeatureCandidate, OperatorFamily, RowCompletionPlan, SourceSuggestion
from repro.core.function_generator import RealizedFeature
from repro.dataframe import DataFrame
from repro.fm import FMParseError, ScriptedFM, SimulatedFM


class TestUnarySelection:
    def test_keeps_only_certain_and_high(self, insurance_agenda):
        fm = ScriptedFM(
            [
                "bucketization[age_insurance] (certain): bands\n"
                "normalization[zscore] (medium): rescale\n"
                "squared (low): squared"
            ]
        )
        selector = OperatorSelector(fm)
        candidates = selector.unary_candidates(insurance_agenda, "Age")
        assert [c.name for c in candidates] == ["bucketization_Age"]

    def test_name_follows_paper_scheme(self, insurance_agenda):
        fm = ScriptedFM(["log_transform (high): squash"])
        candidates = OperatorSelector(fm).unary_candidates(insurance_agenda, "Age")
        assert candidates[0].name == "log_transform_Age"
        assert candidates[0].columns == ["Age"]
        assert candidates[0].family == OperatorFamily.UNARY
        assert candidates[0].description.startswith("log_transform:")

    def test_unknown_attribute_raises(self, insurance_agenda):
        with pytest.raises(KeyError):
            OperatorSelector(ScriptedFM(["x"])).unary_candidates(insurance_agenda, "nope")

    def test_empty_response_gives_no_candidates(self, insurance_agenda):
        fm = ScriptedFM(["none (certain): nothing applies"])
        assert OperatorSelector(fm).unary_candidates(insurance_agenda, "Age") == []


class TestBinarySelection:
    def test_valid_payload(self, insurance_agenda):
        fm = ScriptedFM(
            ['{"operator": "-", "columns": ["Age", "Age of car"], "name": "diff", "description": "binary[-]: diff"}']
        )
        candidate = OperatorSelector(fm).sample_binary(insurance_agenda)
        assert candidate.name == "diff"
        assert candidate.params["operator"] == "-"

    def test_missing_column_raises_parse_error(self, insurance_agenda):
        fm = ScriptedFM(['{"operator": "-", "columns": ["Age", "Bogus"], "name": "d", "description": "x"}'])
        with pytest.raises(FMParseError):
            OperatorSelector(fm).sample_binary(insurance_agenda)

    def test_bad_operator_returns_none(self, insurance_agenda):
        fm = ScriptedFM(['{"operator": "^", "columns": ["Age", "Age of car"]}'])
        assert OperatorSelector(fm).sample_binary(insurance_agenda) is None

    def test_description_tag_enforced(self, insurance_agenda):
        fm = ScriptedFM(
            ['{"operator": "*", "columns": ["Age", "Age of car"], "name": "p", "description": "a product"}']
        )
        candidate = OperatorSelector(fm).sample_binary(insurance_agenda)
        assert candidate.description.startswith("binary[*]:")


class TestHighOrderSelection:
    def test_valid_payload_builds_paper_name(self, insurance_agenda):
        fm = ScriptedFM(
            ['{"groupby_col": ["Make Model"], "agg_col": "Claim in last 6 months", "function": "mean"}']
        )
        candidate = OperatorSelector(fm).sample_high_order(insurance_agenda)
        assert candidate.name == "GroupBy_Make Model_mean_Claim in last 6 months"
        assert candidate.params["function"] == "mean"
        assert "df.groupby" in candidate.description

    def test_string_groupby_col_accepted(self, insurance_agenda):
        fm = ScriptedFM(['{"groupby_col": "City", "agg_col": "Age", "function": "max"}'])
        candidate = OperatorSelector(fm).sample_high_order(insurance_agenda)
        assert candidate.params["groupby_col"] == ["City"]

    def test_invalid_function_returns_none(self, insurance_agenda):
        fm = ScriptedFM(['{"groupby_col": ["City"], "agg_col": "Age", "function": "median-ish"}'])
        assert OperatorSelector(fm).sample_high_order(insurance_agenda) is None

    def test_unknown_column_raises(self, insurance_agenda):
        fm = ScriptedFM(['{"groupby_col": ["Bogus"], "agg_col": "Age", "function": "mean"}'])
        with pytest.raises(FMParseError):
            OperatorSelector(fm).sample_high_order(insurance_agenda)


class TestExtractorSelection:
    def test_valid_payload(self, insurance_agenda):
        fm = ScriptedFM(
            ['{"name": "City_density", "columns": ["City"], "description": "knowledge_map[city_population_density]: d", "kind": "function"}']
        )
        candidate = OperatorSelector(fm).sample_extractor(insurance_agenda)
        assert candidate.kind == "function"

    def test_bad_kind_returns_none(self, insurance_agenda):
        fm = ScriptedFM(['{"name": "x", "columns": [], "description": "d", "kind": "teleport"}'])
        assert OperatorSelector(fm).sample_extractor(insurance_agenda) is None


class TestFunctionGenerator:
    def test_high_order_needs_no_fm_call(self, insurance_agenda, insurance_frame):
        fm = SimulatedFM(seed=0)
        generator = FunctionGenerator(fm)
        candidate = FeatureCandidate(
            name="GroupBy_City_mean_Age",
            columns=["City", "Age"],
            description="groupby[mean]: mean Age per City",
            family=OperatorFamily.HIGH_ORDER,
            params={"groupby_col": ["City"], "agg_col": "Age", "function": "mean"},
        )
        realized = generator.realize(candidate, insurance_agenda, insurance_frame)
        assert isinstance(realized, RealizedFeature)
        assert fm.ledger.n_calls == 0
        assert realized.feature.fm_calls == 0

    def test_function_path_single_call(self, insurance_agenda, insurance_frame):
        fm = SimulatedFM(seed=0)
        generator = FunctionGenerator(fm)
        candidate = FeatureCandidate(
            name="bucketization_Age",
            columns=["Age"],
            description="bucketization[age_insurance]: age bands",
            family=OperatorFamily.UNARY,
        )
        realized = generator.realize(candidate, insurance_agenda, insurance_frame)
        assert isinstance(realized, RealizedFeature)
        assert fm.ledger.n_calls == 1
        assert realized.values["bucketization_Age"].nunique() > 1

    def test_row_level_small_table_completes(self, insurance_agenda, insurance_frame):
        small = insurance_frame.head(10)
        generator = FunctionGenerator(SimulatedFM(seed=0), row_limit=50)
        candidate = FeatureCandidate(
            name="City_population_density",
            columns=["City"],
            description="approximate density",
            family=OperatorFamily.EXTRACTOR,
            kind="row_level",
        )
        realized = generator.realize(candidate, insurance_agenda, small)
        assert isinstance(realized, RealizedFeature)
        assert realized.feature.fm_calls == 10
        assert realized.values["City_population_density"][0] == 18630.0

    def test_row_level_large_table_returns_plan(self, insurance_agenda, insurance_frame):
        generator = FunctionGenerator(SimulatedFM(seed=0), row_limit=10, preview_rows=3)
        candidate = FeatureCandidate(
            name="City_population_density",
            columns=["City"],
            description="approximate density",
            family=OperatorFamily.EXTRACTOR,
            kind="row_level",
        )
        plan = generator.realize(candidate, insurance_agenda, insurance_frame)
        assert isinstance(plan, RowCompletionPlan)
        assert plan.n_rows == len(insurance_frame)
        assert len(plan.preview) == 3
        assert plan.estimated_cost_usd > 0
        assert plan.estimated_calls == len(insurance_frame)

    def test_source_suggestion(self, insurance_agenda, insurance_frame):
        generator = FunctionGenerator(SimulatedFM(seed=0))
        candidate = FeatureCandidate(
            name="historical_weather",
            columns=[],
            description="source[weather_history]: weather near each trap",
            family=OperatorFamily.EXTRACTOR,
            kind="source",
        )
        suggestion = generator.realize(candidate, insurance_agenda, insurance_frame)
        assert isinstance(suggestion, SourceSuggestion)
        assert suggestion.sources
