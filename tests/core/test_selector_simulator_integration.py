"""Property-based integration: selector + simulator over random schemas.

Whatever schema the agenda describes, every candidate the simulated FM
proposes must be *well-formed*: it references only existing columns,
carries a parseable operator tag, and realises into a full-length column.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataAgenda, FunctionGenerator, OperatorSelector
from repro.core.function_generator import RealizedFeature
from repro.dataframe import DataFrame
from repro.fm import SimulatedFM
from repro.fm.codegen import derivation_tag

_COLUMN_POOLS = {
    "Age": [23.0, 34.0, 45.0, 56.0, 67.0, 21.0],
    "Income": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
    "Glucose": [90.0, 120.0, 100.0, 140.0, 95.0, 180.0],
    "NumVisits": [1.0, 2.0, 0.0, 5.0, 3.0, 2.0],
    "City": ["SF", "LA", "SEA", "SF", "LA", "SEA"],
    "JobRole": ["eng", "sales", "eng", "ops", "sales", "eng"],
    "Score": [0.1, 0.5, 0.9, 0.3, 0.7, 0.2],
    "HasFlag": [0, 1, 0, 1, 1, 0],
}

subsets = st.sets(st.sampled_from(sorted(_COLUMN_POOLS)), min_size=2, max_size=6)


def _build(columns):
    data = {name: list(_COLUMN_POOLS[name]) * 10 for name in sorted(columns)}
    data["target"] = [0, 1, 0, 1, 1, 0] * 10
    frame = DataFrame(data)
    agenda = DataAgenda.from_dataframe(frame, target="target", model="rf")
    return frame, agenda


@settings(max_examples=25, deadline=None)
@given(subsets, st.integers(min_value=0, max_value=99))
def test_binary_candidates_reference_real_columns(columns, seed):
    frame, agenda = _build(columns)
    selector = OperatorSelector(SimulatedFM(seed=seed))
    candidate = selector.sample_binary(agenda)
    if candidate is None:
        return
    for column in candidate.columns:
        assert column in agenda
    assert derivation_tag(candidate.description) == "binary"


@settings(max_examples=25, deadline=None)
@given(subsets, st.integers(min_value=0, max_value=99))
def test_high_order_candidates_reference_real_columns(columns, seed):
    frame, agenda = _build(columns)
    selector = OperatorSelector(SimulatedFM(seed=seed))
    candidate = selector.sample_high_order(agenda)
    if candidate is None:
        return
    for column in candidate.columns:
        assert column in agenda
    assert candidate.params["function"] in ("mean", "max", "min", "sum", "count")


@settings(max_examples=15, deadline=None)
@given(subsets, st.integers(min_value=0, max_value=99))
def test_unary_candidates_realize_full_length(columns, seed):
    frame, agenda = _build(columns)
    fm = SimulatedFM(seed=seed)
    selector = OperatorSelector(fm)
    generator = FunctionGenerator(fm)
    attr = sorted(columns)[0]
    for candidate in selector.unary_candidates(agenda, attr):
        realized = generator.realize(candidate, agenda, frame)
        assert isinstance(realized, RealizedFeature)
        for series in realized.values.values():
            assert len(series) == len(frame)
