"""The ordered parallel map under the pipelined shard executor.

The contract under test, stage by stage: results come out in exactly
source order whatever the worker timing (re-sequencing), errors keep
sequential-prefix semantics (everything before the failing item is
emitted, then the ferried exception re-raises on the caller's thread),
backpressure bounds in-flight items at ``workers + prefetch``, closing
the generator early joins every thread, and the stats object records
per-stage time and queue depths.
"""

import threading
import time

import pytest

from repro.core.shard_pipeline import PipelineStats, pipeline_map


class TestOrdering:
    def test_results_in_source_order(self):
        out = list(pipeline_map(range(50), lambda x: x * x, workers=4))
        assert out == [x * x for x in range(50)]

    def test_order_survives_adversarial_timing(self):
        """Items whose transforms finish wildly out of order still emit
        in sequence — the re-sequencing buffer, not worker luck."""

        def slow_on_even(x):
            time.sleep(0.02 if x % 2 == 0 else 0.0)
            return x

        out = list(pipeline_map(range(24), slow_on_even, workers=6))
        assert out == list(range(24))

    def test_workers_1_still_pipelines(self):
        out = list(pipeline_map(range(10), lambda x: -x, workers=1))
        assert out == [-x for x in range(10)]

    def test_empty_source(self):
        assert list(pipeline_map([], lambda x: x, workers=3)) == []

    def test_single_item(self):
        assert list(pipeline_map([7], lambda x: x + 1, workers=3)) == [8]

    def test_generator_source_consumed_lazily(self):
        """Threads start on first ``next()`` — building the generator
        alone must not touch the source."""
        pulled = []

        def source():
            for i in range(5):
                pulled.append(i)
                yield i

        gen = pipeline_map(source(), lambda x: x, workers=2)
        assert pulled == []
        assert list(gen) == list(range(5))
        assert pulled == list(range(5))


class TestErrorSemantics:
    def test_transform_error_after_full_prefix(self):
        """Every result before the failing item is yielded first; the
        exception then raises at its sequence position."""

        def boom_at_5(x):
            if x == 5:
                raise ValueError("shard 5 failed")
            return x

        gen = pipeline_map(range(12), boom_at_5, workers=4)
        got = []
        with pytest.raises(ValueError, match="shard 5 failed"):
            for value in gen:
                got.append(value)
        assert got == [0, 1, 2, 3, 4]

    def test_producer_error_ferried_to_caller(self):
        def source():
            yield 0
            yield 1
            raise RuntimeError("decode failed")

        gen = pipeline_map(source(), lambda x: x * 10, workers=3)
        got = []
        with pytest.raises(RuntimeError, match="decode failed"):
            for value in gen:
                got.append(value)
        assert got == [0, 10]

    def test_error_on_first_item(self):
        def boom(x):
            raise KeyError("immediately")

        with pytest.raises(KeyError, match="immediately"):
            list(pipeline_map(range(3), boom, workers=2))

    def test_threads_joined_after_error(self):
        before = threading.active_count()
        with pytest.raises(ZeroDivisionError):
            list(
                pipeline_map(
                    range(8), lambda x: 1 / 0 if x == 2 else x, workers=3
                )
            )
        assert threading.active_count() == before


class TestBackpressure:
    def test_in_flight_bounded_by_workers_plus_prefetch(self):
        """With a deliberately stalled consumer, the producer may run at
        most ``workers + prefetch`` items ahead of the emit cursor."""
        workers, prefetch = 2, 3
        produced = []

        def source():
            for i in range(40):
                produced.append(i)
                yield i

        emitted = 0
        max_ahead = 0
        for _ in pipeline_map(source(), lambda x: x, workers=workers, prefetch=prefetch):
            time.sleep(0.002)  # stall the consumer so the producer races ahead
            emitted += 1
            max_ahead = max(max_ahead, len(produced) - emitted)
        assert emitted == 40
        assert max_ahead <= workers + prefetch

    def test_concurrent_transforms_bounded_by_workers(self):
        workers = 3
        lock = threading.Lock()
        active = 0
        peak = 0

        def track(x):
            nonlocal active, peak
            with lock:
                active += 1
                peak = max(peak, active)
            time.sleep(0.005)
            with lock:
                active -= 1
            return x

        assert list(pipeline_map(range(20), track, workers=workers)) == list(range(20))
        assert 1 <= peak <= workers

    def test_invalid_workers_and_prefetch(self):
        with pytest.raises(ValueError, match="workers"):
            pipeline_map([1], lambda x: x, workers=0)
        with pytest.raises(ValueError, match="prefetch"):
            list(pipeline_map([1], lambda x: x, workers=1, prefetch=0))


class TestShutdown:
    def test_early_close_joins_threads(self):
        before = threading.active_count()
        gen = pipeline_map(range(1000), lambda x: x, workers=4)
        assert next(gen) == 0
        gen.close()
        assert threading.active_count() == before

    def test_abandoned_unstarted_generator_spawns_nothing(self):
        before = threading.active_count()
        gen = pipeline_map(range(1000), lambda x: x, workers=4)
        del gen
        assert threading.active_count() == before


class TestStats:
    def test_counts_and_stage_times(self):
        stats = PipelineStats()
        out = list(
            pipeline_map(
                range(15),
                lambda x: (time.sleep(0.001), x)[1],
                workers=3,
                prefetch=2,
                stats=stats,
            )
        )
        assert out == list(range(15))
        payload = stats.to_dict()
        assert payload["runs"] == 1
        assert payload["workers"] == 3
        assert payload["prefetch"] == 2
        assert payload["shards_in"] == 15
        assert payload["shards_out"] == 15
        assert payload["wall_s"] > 0
        assert payload["stage_s"]["transform"] > 0
        assert payload["stage_s"]["produce"] >= 0
        assert payload["stage_s"]["emit_wait"] >= 0
        assert payload["queue_depth"]["max"] >= 1
        assert payload["queue_depth"]["mean"] > 0

    def test_one_instance_accumulates_runs(self):
        stats = PipelineStats()
        for _ in range(3):
            list(pipeline_map(range(4), lambda x: x, workers=2, stats=stats))
        payload = stats.to_dict()
        assert payload["runs"] == 3
        assert payload["shards_in"] == 12
        assert payload["shards_out"] == 12
