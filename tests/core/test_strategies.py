"""Tests for the proposal-vs-sampling strategy option (§3.2)."""

import pytest

from repro.core import OperatorSelector, SmartFeat
from repro.core.types import OperatorFamily
from repro.datasets import load_dataset
from repro.fm import ScriptedFM, SimulatedFM


@pytest.fixture(scope="module")
def tennis():
    return load_dataset("tennis", n_rows=300)


class TestBinaryProposal:
    def test_selector_parses_multiline_json(self, insurance_agenda):
        fm = ScriptedFM(
            [
                '{"operator": "-", "columns": ["Age", "Age of car"], "name": "d1", "description": "binary[-]: a"}\n'
                'not json at all\n'
                '{"operator": "*", "columns": ["Age", "Age of car"], "name": "p1", "description": "binary[*]: b"}'
            ]
        )
        candidates = OperatorSelector(fm).binary_candidates_proposal(insurance_agenda, k=5)
        assert [c.name for c in candidates] == ["d1", "p1"]

    def test_unknown_columns_skipped_not_raised(self, insurance_agenda):
        fm = ScriptedFM(
            ['{"operator": "-", "columns": ["Age", "Bogus"], "name": "d", "description": "x"}']
        )
        assert OperatorSelector(fm).binary_candidates_proposal(insurance_agenda) == []

    def test_k_truncates(self, insurance_agenda):
        line = '{"operator": "-", "columns": ["Age", "Age of car"], "name": "d%d", "description": "binary[-]: x"}'
        fm = ScriptedFM(["\n".join(line % i for i in range(10))])
        candidates = OperatorSelector(fm).binary_candidates_proposal(insurance_agenda, k=3)
        assert len(candidates) == 3

    def test_simulated_fm_answers_proposal(self, tennis):
        from repro.core import DataAgenda, prompts

        agenda = DataAgenda.from_dataframe(
            tennis.frame, target=tennis.target, descriptions=tennis.descriptions
        )
        fm = SimulatedFM(seed=0)
        candidates = OperatorSelector(fm).binary_candidates_proposal(agenda, k=6)
        assert 1 <= len(candidates) <= 6
        assert fm.ledger.n_calls == 1  # one call for the whole batch


class TestStrategyInPipeline:
    def test_invalid_strategy_raises(self):
        with pytest.raises(ValueError):
            SmartFeat(fm=SimulatedFM(seed=0), binary_strategy="guessing")

    def test_proposal_uses_fewer_fm_calls(self, tennis):
        def run(strategy):
            fm = SimulatedFM(seed=0)
            tool = SmartFeat(
                fm=fm,
                downstream_model="rf",
                operator_families=(OperatorFamily.BINARY,),
                binary_strategy=strategy,
                sampling_budget=8,
            )
            result = tool.fit_transform(
                tennis.frame, target=tennis.target, descriptions=tennis.descriptions
            )
            return result, fm.ledger.n_calls

        _, proposal_calls = run("proposal")
        _, sampling_calls = run("sampling")
        assert proposal_calls < sampling_calls

    def test_both_strategies_generate_binary_features(self, tennis):
        for strategy in ("proposal", "sampling"):
            tool = SmartFeat(
                fm=SimulatedFM(seed=0),
                downstream_model="rf",
                operator_families=(OperatorFamily.BINARY,),
                binary_strategy=strategy,
            )
            result = tool.fit_transform(
                tennis.frame, target=tennis.target, descriptions=tennis.descriptions
            )
            assert result.new_features, strategy

    def test_proposal_deterministic(self, tennis):
        def names(seed):
            tool = SmartFeat(
                fm=SimulatedFM(seed=seed),
                downstream_model="rf",
                operator_families=(OperatorFamily.BINARY,),
                binary_strategy="proposal",
            )
            result = tool.fit_transform(
                tennis.frame, target=tennis.target, descriptions=tennis.descriptions
            )
            return sorted(result.new_features)

        assert names(0) == names(1)  # top-k is seed-independent at temp 0