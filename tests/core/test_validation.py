"""Unit tests for the feature-quality screens."""

from repro.core import ValidationConfig, validate_output
from repro.dataframe import DataFrame, Series


class TestSeriesScreens:
    def test_good_feature_accepted(self):
        report = validate_output(Series([1, 2, 3], "f"), 3)
        assert report.ok
        assert "f" in report.accepted

    def test_highly_null_rejected(self):
        report = validate_output(Series([1.0, None, None], "f"), 3)
        assert not report.ok
        assert "highly null" in report.rejected["f"]

    def test_null_threshold_configurable(self):
        series = Series([1.0, None, 2.0, 3.0], "f")  # 25% missing
        strict = validate_output(series, 4, ValidationConfig(max_null_fraction=0.1))
        lenient = validate_output(series, 4, ValidationConfig(max_null_fraction=0.5))
        assert not strict.ok
        assert lenient.ok

    def test_single_valued_rejected(self):
        report = validate_output(Series([7, 7, 7], "f"), 3)
        assert report.rejected["f"] == "single-valued"

    def test_constant_allowed_when_configured(self):
        report = validate_output(
            Series([7, 7, 7], "f"), 3, ValidationConfig(reject_constant=False)
        )
        assert report.ok

    def test_length_mismatch_rejected(self):
        report = validate_output(Series([1, 2], "f"), 3)
        assert "length" in report.rejected["f"]

    def test_unnamed_series_uses_hint(self):
        report = validate_output(Series([1, 2]), 2, name_hint="myfeat")
        assert "myfeat" in report.accepted


class TestFrameScreens:
    def test_wide_dummy_expansion_rejected_whole(self):
        frame = DataFrame({f"c{i}": [0, 1] for i in range(20)})
        report = validate_output(frame, 2, ValidationConfig(max_dummy_columns=15))
        assert not report.ok
        assert all("high-cardinality" in r for r in report.rejected.values())

    def test_partial_acceptance(self):
        frame = DataFrame({"good": [1, 2], "constant": [5, 5]})
        report = validate_output(frame, 2)
        assert "good" in report.accepted
        assert "constant" in report.rejected

    def test_empty_dataframe(self):
        report = validate_output(DataFrame({"f": []}), 0)
        assert not report.ok
