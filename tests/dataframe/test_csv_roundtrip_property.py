"""Hypothesis property: the CSV round-trip contract over hostile cells.

``to_csv`` → ``read_csv``/``read_csv_shards`` is pinned against an
*independent* model of the cell contract (the strict parse grammar is
re-implemented here on purpose — loosening it in ``io.py`` without
updating this pin is a test failure, not a silent drift):

* booleans round-trip as booleans (``True``/``False`` spellings);
* ints and finite floats round-trip exactly (``repr`` round-trip);
* ``None``/NaN write as empty cells and read back as missing;
* strings survive verbatim **unless** they spell a strict numeric
  literal or a bool literal — ``"007"``-style numeric-looking strings
  coerce to numbers (the documented lossiness) — while NaN/inf
  spellings, underscore separators, and whitespace-padded numbers all
  stay strings (the PR-10 bugfixes);
* dtype fidelity: the frame read back coerces exactly like an in-memory
  frame built from the modelled cells, whatever the chunking, and every
  schema-pinned shard matches the whole-file dtypes.
"""

import re

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import DataFrame, Series, read_csv
from repro.dataframe.io import (
    concat_shards,
    iter_frame_shards,
    read_csv_shards,
    scan_csv_kinds,
    to_csv,
)

# ----------------------------------------------------------------------
# The contract model (independent re-statement of the strict grammar)
# ----------------------------------------------------------------------
_MODEL_INT = re.compile(r"[+-]?[0-9]+\Z")
_MODEL_FLOAT = re.compile(
    r"[+-]?(?:[0-9]+\.[0-9]*|\.[0-9]+|[0-9]+)(?:[eE][+-]?[0-9]+)?\Z"
)


def model_cell(value):
    """What one written cell must read back as, per the contract."""
    if value is None or (isinstance(value, float) and value != value):
        return None  # missing writes as an empty cell
    if isinstance(value, bool):
        return value  # "True"/"False" spellings round-trip
    if isinstance(value, (int, float)):
        return value  # repr round-trip is exact for finite numbers
    text = str(value)
    if text == "":
        return None  # empty string is indistinguishable from missing
    if _MODEL_INT.match(text):
        return int(text)  # documented lossiness: "007" -> 7
    if _MODEL_FLOAT.match(text):
        return float(text)
    if text == "True":
        return True
    if text == "False":
        return False
    return text  # everything else survives verbatim — incl. "nan", " 3 ", "1_000"


def expected_frame(columns: dict) -> DataFrame:
    return DataFrame(
        {name: Series([model_cell(v) for v in cells]) for name, cells in columns.items()}
    )


def assert_frames_equal(got: DataFrame, want: DataFrame) -> None:
    assert got.columns == want.columns
    for name in want.columns:
        a, b = got[name].values, want[name].values
        assert a.dtype == b.dtype, (name, a.dtype, b.dtype)
        assert np.array_equal(a, b, equal_nan=a.dtype.kind == "f"), name


# ----------------------------------------------------------------------
# Hostile cell strategies
# ----------------------------------------------------------------------
HOSTILE_STRINGS = [
    "nan", "NaN", "NAN", "inf", "-inf", "Infinity", "-Infinity",  # NaN/inf spellings
    "1_000", "1_0.5", "1e1_0",  # underscore separators
    " 3 ", "3 ", " 3", "\t7", "2.5 ",  # whitespace padding
    "007", "+7", "-0", "1e3", "5.", ".5", "2.5e-3",  # numeric-looking (coerce)
    "True", "False", "true", "FALSE",  # bool spellings (exact two coerce)
    "", "x", "0x10", "1.2.3", "--5", "+", ".", "e5", "a,b", 'q"uote',
]

cell = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10**12, 10**12),
    st.floats(allow_nan=True, allow_infinity=False),
    st.sampled_from(HOSTILE_STRINGS),
    st.text(
        alphabet="abcXYZ019 _.,+-eE\"'",
        max_size=8,
    ),
)


@st.composite
def hostile_table(draw):
    n_rows = draw(st.integers(1, 30))
    n_cols = draw(st.integers(1, 4))
    return {
        f"c{i}": draw(st.lists(cell, min_size=n_rows, max_size=n_rows))
        for i in range(n_cols)
    }


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(hostile_table())
def test_roundtrip_matches_the_model(tmp_path_factory, columns):
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    to_csv(DataFrame({k: Series(v) for k, v in columns.items()}), path)
    assert_frames_equal(read_csv(path), expected_frame(columns))


@settings(max_examples=60, deadline=None)
@given(hostile_table(), st.integers(1, 31))
def test_schema_pinned_shards_match_whole_file(tmp_path_factory, columns, chunk):
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    to_csv(DataFrame({k: Series(v) for k, v in columns.items()}), path)
    whole = read_csv(path)
    schema = scan_csv_kinds(path)
    shards = list(read_csv_shards(path, chunk, schema=schema))
    # every shard is bit-identical to the matching row slice, dtype included
    offset = 0
    for shard in shards:
        for name in whole.columns:
            expect = whole[name].values[offset : offset + len(shard)]
            got = shard.frame[name].values
            assert got.dtype == expect.dtype, (name, chunk, got.dtype, expect.dtype)
            assert np.array_equal(got, expect, equal_nan=got.dtype.kind == "f")
        offset += len(shard)
    assert_frames_equal(concat_shards(shards), whole)


@settings(max_examples=40, deadline=None)
@given(hostile_table(), st.integers(1, 17))
def test_chunked_append_writes_identical_bytes(tmp_path_factory, columns, chunk):
    base = tmp_path_factory.mktemp("csv")
    frame = DataFrame({k: Series(v) for k, v in columns.items()})
    whole_path, inc_path = base / "whole.csv", base / "inc.csv"
    to_csv(frame, whole_path)
    for i, shard in enumerate(iter_frame_shards(frame, chunk)):
        to_csv(shard.frame, inc_path, append=i > 0)
    assert inc_path.read_bytes() == whole_path.read_bytes()


def test_nonfinite_float_values_are_pinned_as_strings(tmp_path):
    """``inf`` has no strict-grammar spelling: a non-finite (non-NaN)
    float value writes as ``"inf"`` and reads back as the *string*
    ``"inf"`` (forcing the column to object) rather than silently
    re-becoming a float — the documented edge of the strict grammar."""
    path = tmp_path / "t.csv"
    to_csv(DataFrame({"f": Series([1.5, float("inf")])}), path)
    back = read_csv(path)
    assert back["f"].values.dtype == object
    assert back["f"].tolist() == [1.5, "inf"]
