"""Edge-case coverage for dataframe surface not exercised elsewhere."""

import math

import pytest

from repro.dataframe import DataFrame, Series
from repro.dataframe import pandas_facade as pd


class TestSeriesEdges:
    def test_head(self):
        assert Series([1, 2, 3, 4]).head(2).tolist() == [1, 2]

    def test_sample_without_replacement(self):
        s = Series(list(range(20)))
        out = s.sample(5, seed=3)
        assert len(out) == 5
        assert len(set(out.tolist())) == 5

    def test_sample_caps_at_length(self):
        assert len(Series([1, 2]).sample(10)) == 2

    def test_idxmin(self):
        assert Series([3.0, None, 1.0, 2.0]).idxmin() == 2

    def test_any_all(self):
        assert Series([0, 1, 0]).any()
        assert not Series([0, 0]).any()
        assert Series([1, 1]).all()

    def test_rank_with_missing(self):
        out = Series([2.0, None, 1.0]).rank()
        assert out[0] == 2.0
        assert math.isnan(out[1])
        assert out[2] == 1.0

    def test_quantile_interpolates(self):
        assert Series([0.0, 1.0]).quantile(0.25) == 0.25

    def test_empty_property(self):
        assert Series([]).empty
        assert not Series([1]).empty

    def test_repr_truncates(self):
        text = repr(Series(list(range(20)), name="long"))
        assert "..." in text

    def test_full_length_zero(self):
        assert Series.full(0, 1).tolist() == []

    def test_iter(self):
        assert list(Series([1, 2])) == [1, 2]

    def test_rename_copies(self):
        a = Series([1, 2], name="a")
        b = a.rename("b")
        b[0] = 9
        assert a[0] == 1


class TestFrameEdges:
    def test_index_is_range(self):
        assert list(DataFrame({"x": [1, 2, 3]}).index) == [0, 1, 2]

    def test_itertuples_yields_dicts(self):
        rows = list(DataFrame({"a": [1], "b": [2]}).itertuples())
        assert rows == [{"a": 1, "b": 2}]

    def test_empty_frame_length_zero(self):
        assert len(DataFrame()) == 0
        assert DataFrame().columns == []

    def test_iter_yields_column_names(self):
        assert list(DataFrame({"a": [1], "b": [2]})) == ["a", "b"]

    def test_non_string_column_assignment_rejected(self):
        frame = DataFrame({"a": [1]})
        with pytest.raises(TypeError):
            frame[3] = [1]

    def test_select_dtypes_bool(self):
        frame = DataFrame({"flag": [True, False], "x": [1, 2]})
        assert frame.select_dtypes("bool").columns == ["flag"]

    def test_select_dtypes_invalid(self):
        with pytest.raises(ValueError):
            DataFrame({"a": [1]}).select_dtypes("complex")

    def test_assign_does_not_mutate(self):
        frame = DataFrame({"a": [1]})
        frame.assign(b=[2])
        assert "b" not in frame


class TestPandasFacade:
    def test_scalar_isna(self):
        assert pd.isna(None)
        assert pd.isna(float("nan"))
        assert not pd.isna(0)
        assert pd.notna("x")

    def test_facade_exposes_core_functions(self):
        for name in ("DataFrame", "Series", "cut", "qcut", "get_dummies", "concat", "factorize"):
            assert hasattr(pd, name), name

    def test_cut_through_facade(self):
        out = pd.cut(Series([5, 15]), [0, 10, 20])
        assert out.tolist() == [0, 1]


class TestRenderTableEdges:
    def test_empty_rows(self):
        from repro.eval import render_table

        text = render_table(["a", "bb"], [])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 2  # header + rule only

    def test_wide_cells_set_width(self):
        from repro.eval import render_table

        text = render_table(["h"], [["very-long-cell"]])
        assert "very-long-cell" in text
