"""Unit tests for :mod:`repro.dataframe.frame`."""

import math

import numpy as np
import pytest

from repro.dataframe import DataFrame, Series


@pytest.fixture
def insurance():
    """The paper's Table 1 motivating dataset."""
    return DataFrame(
        {
            "Sex": ["M", "F", "M", "F", "M", "F"],
            "Age": [21, 35, 42, 22, 45, 56],
            "AgeOfCar": [6, 2, 8, 14, 3, 5],
            "MakeModel": [
                "Honda, Civic",
                "Toyota, Corolla",
                "Ford, Mustang",
                "Chevrolet, Cruze",
                "BMW, X5",
                "Volkswagen, Golf",
            ],
            "Claim": [1, 0, 0, 1, 0, 0],
            "City": ["SF", "LA", "SEA", "SF", "SEA", "LA"],
            "Safe": [0, 1, 1, 0, 1, 1],
        }
    )


class TestConstruction:
    def test_from_dict(self, insurance):
        assert insurance.shape == (6, 7)
        assert insurance.columns[0] == "Sex"

    def test_from_records(self):
        df = DataFrame([{"a": 1, "b": 2}, {"a": 3}])
        assert df.shape == (2, 2)
        assert df["b"].isna().tolist() == [False, True]

    def test_from_dataframe_copies(self, insurance):
        copy = DataFrame(insurance)
        copy["Age"][0] = 99
        assert insurance["Age"][0] == 21

    def test_empty(self):
        df = DataFrame()
        assert df.empty
        assert df.shape == (0, 0)

    def test_column_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_columns_selection_on_init(self):
        df = DataFrame({"a": [1], "b": [2]}, columns=["b"])
        assert df.columns == ["b"]

    def test_unknown_column_selection_raises(self):
        with pytest.raises(KeyError):
            DataFrame({"a": [1]}, columns=["z"])

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            DataFrame(42)


class TestIndexing:
    def test_getitem_column(self, insurance):
        assert isinstance(insurance["Age"], Series)
        assert insurance["Age"].name == "Age"

    def test_getitem_missing_column(self, insurance):
        with pytest.raises(KeyError):
            insurance["nope"]

    def test_getitem_column_list(self, insurance):
        sub = insurance[["Sex", "Age"]]
        assert sub.columns == ["Sex", "Age"]

    def test_boolean_mask(self, insurance):
        young = insurance[insurance["Age"] < 30]
        assert len(young) == 2
        assert young["Safe"].tolist() == [0, 0]

    def test_mask_length_mismatch_raises(self, insurance):
        with pytest.raises(ValueError):
            insurance[np.array([True])]

    def test_slice_rows(self, insurance):
        assert len(insurance[1:3]) == 2

    def test_setitem_series(self, insurance):
        insurance["AgeDoubled"] = insurance["Age"] * 2
        assert insurance["AgeDoubled"].tolist()[0] == 42.0

    def test_setitem_scalar_broadcasts(self, insurance):
        insurance["flag"] = 1
        assert insurance["flag"].tolist() == [1] * 6

    def test_setitem_wrong_length_raises(self, insurance):
        with pytest.raises(ValueError):
            insurance["bad"] = [1, 2]

    def test_setitem_renames_series(self, insurance):
        s = Series([0] * 6, name="other")
        insurance["mine"] = s
        assert insurance["mine"].name == "mine"

    def test_iloc_row(self, insurance):
        row = insurance.iloc[0]
        assert row["Sex"] == "M"
        assert row.Age == 21

    def test_iloc_slice(self, insurance):
        assert len(insurance.iloc[0:2]) == 2

    def test_iloc_list(self, insurance):
        assert insurance.iloc[[5, 0]]["Age"].tolist() == [56, 21]

    def test_contains(self, insurance):
        assert "Age" in insurance
        assert "nope" not in insurance


class TestStructure:
    def test_drop_single(self, insurance):
        out = insurance.drop(columns="Sex")
        assert "Sex" not in out
        assert "Sex" in insurance

    def test_drop_list(self, insurance):
        out = insurance.drop(columns=["Sex", "City"])
        assert out.shape == (6, 5)

    def test_drop_missing_raises(self, insurance):
        with pytest.raises(KeyError):
            insurance.drop(columns="nope")

    def test_drop_missing_ignore(self, insurance):
        out = insurance.drop(columns="nope", errors="ignore")
        assert out.shape == insurance.shape

    def test_drop_inplace_removes_without_copy(self, insurance):
        age = insurance["Age"]
        assert insurance.drop(columns="Sex", inplace=True) is None
        assert "Sex" not in insurance
        assert insurance["Age"] is age  # remaining columns not copied

    def test_drop_inplace_list(self, insurance):
        insurance.drop(columns=["Sex", "City"], inplace=True)
        assert insurance.shape[1] == 5

    def test_drop_inplace_missing_raises(self, insurance):
        with pytest.raises(KeyError):
            insurance.drop(columns="nope", inplace=True)
        insurance.drop(columns="nope", errors="ignore", inplace=True)  # no-op

    def test_rename(self, insurance):
        out = insurance.rename(columns={"Age": "age_years"})
        assert "age_years" in out

    def test_assign_value_and_callable(self, insurance):
        out = insurance.assign(one=1, double_age=lambda d: d["Age"] * 2)
        assert out["one"].tolist() == [1] * 6
        assert out["double_age"][1] == 70.0
        assert "one" not in insurance

    def test_head_tail(self, insurance):
        assert len(insurance.head(2)) == 2
        assert insurance.tail(1)["Age"].tolist() == [56]

    def test_sample_deterministic(self, insurance):
        a = insurance.sample(3, seed=1)
        b = insurance.sample(3, seed=1)
        assert a.equals(b)

    def test_sample_frac(self, insurance):
        assert len(insurance.sample(frac=0.5, seed=0)) == 3

    def test_sort_values_single(self, insurance):
        out = insurance.sort_values("Age")
        assert out["Age"].tolist() == sorted(insurance["Age"].tolist())

    def test_sort_values_multi_stable(self):
        df = DataFrame({"k": ["b", "a", "a"], "v": [1, 2, 1]})
        out = df.sort_values(["k", "v"])
        assert out["k"].tolist() == ["a", "a", "b"]
        assert out["v"].tolist() == [1, 2, 1]

    def test_sort_descending(self, insurance):
        out = insurance.sort_values("Age", ascending=False)
        assert out["Age"][0] == 56

    def test_copy_independent(self, insurance):
        c = insurance.copy()
        c["Age"][0] = 0
        assert insurance["Age"][0] == 21


class TestMissingData:
    def test_dropna(self):
        df = DataFrame({"a": [1, None, 3], "b": ["x", "y", None]})
        assert len(df.dropna()) == 1

    def test_dropna_subset(self):
        df = DataFrame({"a": [1, None, 3], "b": ["x", "y", None]})
        assert len(df.dropna(subset=["a"])) == 2

    def test_fillna_scalar(self):
        df = DataFrame({"a": [1.0, None]})
        assert df.fillna(0)["a"].tolist() == [1.0, 0.0]

    def test_fillna_dict(self):
        df = DataFrame({"a": [None], "b": [None]})
        out = df.fillna({"a": 1})
        assert out["a"].tolist() == [1.0]
        assert out["b"].isna().tolist() == [True]

    def test_isna_frame(self):
        df = DataFrame({"a": [1.0, None]})
        assert df.isna()["a"].tolist() == [False, True]


class TestApplyIteration:
    def test_apply_axis1_returns_series(self, insurance):
        out = insurance.apply(lambda row: row["Age"] + row["AgeOfCar"], axis=1)
        assert isinstance(out, Series)
        assert out[0] == 27

    def test_apply_axis1_row_mapping_access(self, insurance):
        out = insurance.apply(lambda row: f"{row['City']}-{row['Sex']}", axis=1)
        assert out[0] == "SF-M"

    def test_apply_axis0(self, insurance):
        means = insurance[["Age"]].apply(lambda s: s.mean(), axis=0)
        assert means["Age"] == pytest.approx(36.833, abs=1e-3)

    def test_iterrows(self, insurance):
        rows = list(insurance.iterrows())
        assert rows[0][0] == 0
        assert rows[2][1]["City"] == "SEA"

    def test_row_get_default(self, insurance):
        _, row = next(insurance.iterrows())
        assert row.get("nope", -1) == -1

    def test_to_dict_records(self, insurance):
        records = insurance.to_dict("records")
        assert records[0]["Sex"] == "M"

    def test_to_dict_invalid_orient(self, insurance):
        with pytest.raises(ValueError):
            insurance.to_dict("split")

    def test_to_numpy_numeric(self):
        df = DataFrame({"a": [1, 2], "b": [3.0, 4.0]})
        arr = df.to_numpy()
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64


class TestStatistics:
    def test_select_dtypes_number(self, insurance):
        nums = insurance.select_dtypes("number")
        assert set(nums.columns) == {"Age", "AgeOfCar", "Claim", "Safe"}

    def test_select_dtypes_object(self, insurance):
        objs = insurance.select_dtypes("object")
        assert set(objs.columns) == {"Sex", "MakeModel", "City"}

    def test_numeric_and_categorical_helpers(self, insurance):
        assert "Age" in insurance.numeric_columns()
        assert "City" in insurance.categorical_columns()

    def test_nunique(self, insurance):
        assert insurance.nunique()["City"] == 3

    def test_describe_has_eight_stats(self, insurance):
        desc = insurance.describe()
        assert len(desc) == 8
        assert "Age" in desc

    def test_corr_diagonal_is_one(self, insurance):
        corr = insurance.corr()
        age_idx = corr["column"].tolist().index("Age")
        assert corr["Age"][age_idx] == pytest.approx(1.0)

    def test_mean(self, insurance):
        assert insurance.mean()["Claim"] == pytest.approx(2 / 6)


class TestMerge:
    def test_left_merge(self):
        left = DataFrame({"k": ["a", "b", "c"], "v": [1, 2, 3]})
        right = DataFrame({"k": ["a", "b"], "w": [10, 20]})
        out = left.merge(right, on="k", how="left")
        assert out["w"].tolist()[:2] == [10.0, 20.0]
        assert out["w"].isna().tolist() == [False, False, True]

    def test_inner_merge(self):
        left = DataFrame({"k": ["a", "b", "c"], "v": [1, 2, 3]})
        right = DataFrame({"k": ["a"], "w": [10]})
        out = left.merge(right, on="k", how="inner")
        assert len(out) == 1

    def test_merge_duplicate_right_keys_expand(self):
        left = DataFrame({"k": ["a"], "v": [1]})
        right = DataFrame({"k": ["a", "a"], "w": [10, 20]})
        out = left.merge(right, on="k")
        assert out["w"].tolist() == [10, 20]

    def test_bad_how_raises(self):
        df = DataFrame({"k": ["a"]})
        with pytest.raises(ValueError):
            df.merge(df, on="k", how="outer")


class TestEqualsAndRender:
    def test_equals_with_nan(self):
        a = DataFrame({"x": [1.0, None]})
        b = DataFrame({"x": [1.0, None]})
        assert a.equals(b)

    def test_not_equals_different_values(self):
        assert not DataFrame({"x": [1]}).equals(DataFrame({"x": [2]}))

    def test_not_equals_different_columns(self):
        assert not DataFrame({"x": [1]}).equals(DataFrame({"y": [1]}))

    def test_to_string_contains_header(self, insurance):
        text = insurance.to_string()
        assert "Sex" in text and "Age" in text

    def test_to_string_truncates(self, insurance):
        text = insurance.to_string(max_rows=2)
        assert "6 rows total" in text
