"""Unit tests for :mod:`repro.dataframe.groupby`."""

import pytest

from repro.dataframe import DataFrame
from repro.dataframe.groupby import resolve_aggregator


@pytest.fixture
def cars():
    return DataFrame(
        {
            "model": ["civic", "civic", "golf", "golf", "golf"],
            "city": ["SF", "LA", "SF", "SF", "LA"],
            "claims": [1, 0, 0, 1, 1],
            "price": [10.0, 12.0, 20.0, 22.0, 24.0],
        }
    )


class TestTransform:
    def test_transform_mean_preserves_length_and_order(self, cars):
        out = cars.groupby("model")["claims"].transform("mean")
        assert len(out) == len(cars)
        assert out.tolist() == [0.5, 0.5, pytest.approx(2 / 3)] + [pytest.approx(2 / 3)] * 2

    def test_transform_is_the_paper_idiom(self, cars):
        # The high-order operator emits exactly this expression shape.
        out = cars.groupby("model")["claims"].transform("mean")
        assert out[0] == out[1]  # same group, same value

    def test_transform_max(self, cars):
        out = cars.groupby("model")["price"].transform("max")
        assert out.tolist() == [12.0, 12.0, 24.0, 24.0, 24.0]

    def test_transform_count(self, cars):
        out = cars.groupby("model")["price"].transform("count")
        assert out.tolist() == [2, 2, 3, 3, 3]

    def test_transform_callable(self, cars):
        out = cars.groupby("model")["price"].transform(lambda s: s.max() - s.min())
        assert out.tolist() == [2.0, 2.0, 4.0, 4.0, 4.0]

    def test_transform_numpy_style_callable(self, cars):
        import numpy as np

        out = cars.groupby("model")["price"].transform(np.mean)
        assert out[0] == pytest.approx(11.0)

    def test_multi_key_transform(self, cars):
        out = cars.groupby(["model", "city"])["claims"].transform("sum")
        assert out.tolist() == [1.0, 0.0, 1.0, 1.0, 1.0]


class TestAgg:
    def test_series_agg_returns_frame(self, cars):
        out = cars.groupby("model")["price"].agg("mean")
        assert set(out.columns) == {"model", "price"}
        assert len(out) == 2

    def test_agg_shortcuts(self, cars):
        assert cars.groupby("model")["price"].mean()["price"].tolist() == [11.0, 22.0]
        assert cars.groupby("model")["price"].max()["price"].tolist() == [12.0, 24.0]
        assert cars.groupby("model")["price"].min()["price"].tolist() == [10.0, 20.0]
        assert cars.groupby("model")["price"].sum()["price"].tolist() == [22.0, 66.0]
        assert cars.groupby("model")["price"].count()["price"].tolist() == [2, 3]

    def test_frame_agg_spec(self, cars):
        out = cars.groupby("model").agg({"claims": "sum", "price": "mean"})
        assert out["claims"].tolist() == [1, 2]
        assert out["price"].tolist() == [11.0, 22.0]

    def test_size(self, cars):
        out = cars.groupby("city").size()
        assert set(zip(out["city"].tolist(), out["size"].tolist())) == {("SF", 3), ("LA", 2)}

    def test_groups_property(self, cars):
        groups = cars.groupby("model").groups
        assert groups["civic"] == [0, 1]

    def test_len_is_group_count(self, cars):
        assert len(cars.groupby("model")) == 2

    def test_unknown_column_raises(self, cars):
        with pytest.raises(KeyError):
            cars.groupby("nope")
        with pytest.raises(KeyError):
            cars.groupby("model")["nope"]


class TestResolveAggregator:
    def test_known_names(self):
        from repro.dataframe import Series

        s = Series([1, 2, 3])
        assert resolve_aggregator("mean")(s) == 2.0
        assert resolve_aggregator("avg")(s) == 2.0
        assert resolve_aggregator("average")(s) == 2.0
        assert resolve_aggregator("SUM")(s) == 6.0
        assert resolve_aggregator("nunique")(s) == 3
        assert resolve_aggregator("first")(s) == 1
        assert resolve_aggregator("last")(s) == 3

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_aggregator("frobnicate")

    def test_mode_aggregator(self):
        from repro.dataframe import Series

        assert resolve_aggregator("mode")(Series(["a", "b", "b"])) == "b"
