"""Unit tests for :mod:`repro.dataframe.io`."""

import numpy as np
import pytest

from repro.dataframe import DataFrame, Series, read_csv
from repro.dataframe.io import _parse_cell, scan_csv_kinds, to_csv


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path):
        df = DataFrame({"name": ["a", "b"], "x": [1, 2], "y": [1.5, None]})
        path = tmp_path / "data.csv"
        to_csv(df, path)
        back = read_csv(path)
        assert back.columns == ["name", "x", "y"]
        assert back["x"].tolist() == [1, 2]
        assert back["y"].isna().tolist() == [False, True]

    def test_type_inference(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c\n1,2.5,hello\n2,3.5,world\n")
        df = read_csv(path)
        assert df["a"].tolist() == [1, 2]
        assert df["b"].tolist() == [2.5, 3.5]
        assert df["c"].tolist() == ["hello", "world"]

    def test_short_rows_padded(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1\n")
        df = read_csv(path)
        assert df["b"].isna().tolist() == [True]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        assert read_csv(path).empty


class TestStrictCellGrammar:
    """Regression suite for the ``_parse_cell`` grammar tightening.

    Python's ``int()``/``float()`` accept spellings CSV must not: digit
    underscores, NaN/inf words, and surrounding whitespace all used to
    coerce silently, corrupting string columns (``"1_000"`` became the
    int 1000; the literal string ``"nan"`` became missing).  The strict
    grammar only accepts plain decimal literals.
    """

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("42", 42),
            ("+7", 7),
            ("-0", 0),
            ("007", 7),  # documented lossiness: leading zeros coerce
            ("2.5", 2.5),
            ("5.", 5.0),
            (".5", 0.5),
            ("1e3", 1000.0),
            ("-2.5E-3", -0.0025),
            ("True", True),
            ("False", False),
            ("", None),
        ],
    )
    def test_strict_grammar_accepts(self, text, expected):
        got = _parse_cell(text)
        assert got == expected and type(got) is type(expected)

    @pytest.mark.parametrize(
        "text",
        [
            "1_000", "1_0.5", "1e1_0",  # underscore separators
            "nan", "NaN", "NAN", "inf", "-inf", "Inf", "Infinity", "-Infinity",
            " 3", "3 ", " 3 ", "\t7", "2.5 ", " 2.5",  # padded whitespace
            "true", "FALSE", "TRUE",  # only the exact repr spellings are bools
            "0x10", "1j", "--5", "++1", "+", "-", ".", "e5", "1.2.3",
        ],
    )
    def test_strict_grammar_keeps_strings(self, text):
        assert _parse_cell(text) == text

    def test_rejected_spellings_stay_strings_through_read_csv(self, tmp_path):
        """End to end: a column of once-coercing spellings reads back as
        the verbatim strings, as an object column."""
        path = tmp_path / "t.csv"
        path.write_text('s\nnan\n1_000\n" 3 "\nInfinity\n')
        back = read_csv(path)
        assert back["s"].values.dtype == object
        assert back["s"].tolist() == ["nan", "1_000", " 3 ", "Infinity"]

    def test_scan_kinds_agrees_with_parser(self, tmp_path):
        """``scan_csv_kinds`` must classify with the same grammar the
        parser uses — a NaN-spelling column is object, not float."""
        path = tmp_path / "t.csv"
        path.write_text("a,b\nnan,1\n1_000,2.5\n")
        kinds = scan_csv_kinds(path)
        assert kinds["a"] == "object"
        assert kinds["b"] == "float"


class TestBoolRoundtrip:
    """Regression suite for the bool serialization bugfix: ``to_csv``
    writes ``True``/``False`` and ``read_csv`` restores real bools."""

    def test_pure_bool_column(self, tmp_path):
        path = tmp_path / "t.csv"
        to_csv(DataFrame({"flag": Series([True, False, True])}), path)
        assert path.read_text() == "flag\nTrue\nFalse\nTrue\n"
        back = read_csv(path)
        assert back["flag"].values.dtype == np.dtype(bool)
        assert back["flag"].tolist() == [True, False, True]

    def test_bool_with_missing(self, tmp_path):
        path = tmp_path / "t.csv"
        to_csv(DataFrame({"flag": Series([True, None, False])}), path)
        back = read_csv(path)
        assert back["flag"].values.dtype == object
        assert back["flag"].tolist() == [True, None, False]

    def test_bool_mixed_with_numbers_coerces_like_memory(self, tmp_path):
        """A column mixing bools and ints round-trips to the same dtype
        the in-memory constructor picks (int, bools as 0/1)."""
        path = tmp_path / "t.csv"
        to_csv(DataFrame({"m": Series([True, 2, False])}), path)
        back = read_csv(path)
        want = Series([True, 2, False]).values
        assert back["m"].values.dtype == want.dtype
        assert np.array_equal(back["m"].values, want)

    def test_scan_kinds_bool_and_bool_missing(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("p,q\nTrue,True\nFalse,\n")
        kinds = scan_csv_kinds(path)
        assert kinds["p"] == "bool"
        assert kinds["q"] == "bool_missing"

    def test_numeric_looking_string_lossiness_pinned(self, tmp_path):
        """The documented round-trip edge: a *string* that spells a
        strict numeric literal cannot be told apart from the number once
        written, so it reads back as the number."""
        path = tmp_path / "t.csv"
        to_csv(DataFrame({"s": Series(["007", "x"])}), path)
        back = read_csv(path)
        assert back["s"].tolist() == [7, "x"]
