"""Unit tests for :mod:`repro.dataframe.io`."""

from repro.dataframe import DataFrame, read_csv
from repro.dataframe.io import to_csv


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path):
        df = DataFrame({"name": ["a", "b"], "x": [1, 2], "y": [1.5, None]})
        path = tmp_path / "data.csv"
        to_csv(df, path)
        back = read_csv(path)
        assert back.columns == ["name", "x", "y"]
        assert back["x"].tolist() == [1, 2]
        assert back["y"].isna().tolist() == [False, True]

    def test_type_inference(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c\n1,2.5,hello\n2,3.5,world\n")
        df = read_csv(path)
        assert df["a"].tolist() == [1, 2]
        assert df["b"].tolist() == [2.5, 3.5]
        assert df["c"].tolist() == ["hello", "world"]

    def test_short_rows_padded(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1\n")
        df = read_csv(path)
        assert df["b"].isna().tolist() == [True]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        assert read_csv(path).empty
