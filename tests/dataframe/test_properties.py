"""Property-based tests (hypothesis) for the dataframe substrate invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import DataFrame, Series, concat, factorize, get_dummies, qcut

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
small_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
keys = st.sampled_from(["a", "b", "c", "d"])


@given(st.lists(small_floats, min_size=1, max_size=50))
def test_mean_between_min_and_max(values):
    s = Series(values)
    assert s.min() - 1e-9 <= s.mean() <= s.max() + 1e-9


@given(st.lists(st.one_of(small_floats, st.none()), min_size=1, max_size=50))
def test_count_plus_missing_equals_length(values):
    s = Series(values)
    assert s.count() + int(s.isna().to_numpy().sum()) == len(s)


@given(st.lists(small_floats, min_size=1, max_size=30), small_floats)
def test_add_then_subtract_scalar_roundtrips(values, scalar):
    s = Series(values)
    back = (s + scalar) - scalar
    for orig, restored in zip(s.tolist(), back.tolist()):
        assert math.isclose(orig, restored, rel_tol=1e-6, abs_tol=1e-3)


@given(st.lists(st.text(alphabet="abcde", min_size=1, max_size=3), min_size=1, max_size=40))
def test_factorize_roundtrip(values):
    codes, uniques = factorize(Series(values))
    assert [uniques[c] for c in codes] == values
    assert len(set(uniques)) == len(uniques)


@given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=40))
def test_dummies_partition_of_unity(values):
    out = get_dummies(Series(values, name="c"))
    for i in range(len(values)):
        assert sum(out[c][i] for c in out.columns) == 1


@given(
    st.lists(keys, min_size=1, max_size=40),
    st.lists(small_floats, min_size=1, max_size=40),
)
def test_groupby_transform_preserves_length_and_group_constancy(group_keys, values):
    n = min(len(group_keys), len(values))
    df = DataFrame({"k": group_keys[:n], "v": values[:n]})
    out = df.groupby("k")["v"].transform("mean")
    assert len(out) == n
    by_key = {}
    for key, val in zip(df["k"].tolist(), out.tolist()):
        by_key.setdefault(key, val)
        assert math.isclose(by_key[key], val, rel_tol=1e-9, abs_tol=1e-9)


@given(
    st.lists(keys, min_size=1, max_size=40),
    st.lists(small_floats, min_size=1, max_size=40),
)
def test_groupby_sum_totals_match(group_keys, values):
    n = min(len(group_keys), len(values))
    df = DataFrame({"k": group_keys[:n], "v": values[:n]})
    agg = df.groupby("k")["v"].agg("sum")
    assert math.isclose(sum(agg["v"].tolist()), df["v"].sum(), rel_tol=1e-6, abs_tol=1e-3)


@given(st.lists(small_floats, min_size=4, max_size=60), st.integers(min_value=2, max_value=5))
def test_qcut_covers_all_non_missing(values, q):
    out = qcut(Series(values), q)
    assert out.notna().all()


@given(st.lists(st.booleans(), min_size=1, max_size=40))
def test_boolean_mask_selects_exactly_true_rows(mask):
    df = DataFrame({"i": list(range(len(mask))), "m": mask})
    out = df[df["m"]]
    assert len(out) == sum(mask)
    assert all(mask[i] for i in out["i"].tolist())


@given(
    st.lists(small_floats, min_size=1, max_size=20),
    st.lists(small_floats, min_size=1, max_size=20),
)
def test_concat_rows_length_additive(a_vals, b_vals):
    a = DataFrame({"x": a_vals})
    b = DataFrame({"x": b_vals})
    assert len(concat([a, b])) == len(a) + len(b)


@given(st.lists(small_floats, min_size=1, max_size=40))
def test_sort_values_is_ordered_permutation(values):
    s = Series(values)
    out = s.sort_values()
    assert sorted(values) == out.tolist()


@settings(max_examples=25)
@given(
    st.lists(
        st.fixed_dictionaries({"k": keys, "v": small_floats}),
        min_size=1,
        max_size=30,
    )
)
def test_dropna_never_increases_rows(records):
    df = DataFrame(records)
    assert len(df.dropna()) <= len(df)
