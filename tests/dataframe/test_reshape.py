"""Unit tests for :mod:`repro.dataframe.reshape`."""

import pytest

from repro.dataframe import DataFrame, Series, concat, cut, factorize, get_dummies, qcut


class TestGetDummies:
    def test_series_dummies(self):
        out = get_dummies(Series(["a", "b", "a"], name="col"))
        assert out.columns == ["col_a", "col_b"]
        assert out["col_a"].tolist() == [1, 0, 1]

    def test_prefix_override(self):
        out = get_dummies(Series(["x"], name="c"), prefix="p")
        assert out.columns == ["p_x"]

    def test_drop_first(self):
        out = get_dummies(Series(["a", "b", "c"], name="c"), drop_first=True)
        assert out.columns == ["c_b", "c_c"]

    def test_missing_rows_all_zero(self):
        out = get_dummies(Series(["a", None], name="c"))
        assert out["c_a"].tolist() == [1, 0]

    def test_frame_defaults_to_categoricals(self):
        df = DataFrame({"cat": ["x", "y"], "num": [1, 2]})
        out = get_dummies(df)
        assert "cat" not in out
        assert "num" in out
        assert "cat_x" in out

    def test_frame_selected_columns(self):
        df = DataFrame({"a": ["x", "y"], "b": ["p", "q"]})
        out = get_dummies(df, columns=["a"])
        assert "b" in out and "a_x" in out and "b_p" not in out

    def test_partition_of_unity(self):
        s = Series(["a", "b", "c", "a"], name="c")
        out = get_dummies(s)
        sums = [sum(out[c][i] for c in out.columns) for i in range(4)]
        assert sums == [1, 1, 1, 1]


class TestFactorize:
    def test_codes_and_uniques(self):
        codes, uniques = factorize(Series(["b", "a", "b"]))
        assert codes.tolist() == [0, 1, 0]
        assert uniques == ["b", "a"]

    def test_missing_is_minus_one(self):
        codes, _ = factorize(Series(["a", None]))
        assert codes.tolist() == [0, -1]

    def test_roundtrip(self):
        values = ["x", "y", "z", "y"]
        codes, uniques = factorize(Series(values))
        assert [uniques[c] for c in codes] == values


class TestCut:
    def test_labels(self):
        out = cut(Series([5, 25, 70]), [0, 21, 65, 120], labels=["minor", "adult", "senior"])
        assert out.tolist() == ["minor", "adult", "senior"]

    def test_integer_codes_when_no_labels(self):
        out = cut(Series([5, 25]), [0, 21, 65])
        assert out.tolist() == [0, 1]

    def test_left_edge_included_in_first_bin(self):
        out = cut(Series([0]), [0, 10])
        assert out.tolist() == [0]

    def test_out_of_range_is_missing(self):
        out = cut(Series([200]), [0, 10])
        assert out.isna().tolist() == [True]

    def test_right_false(self):
        out = cut(Series([10]), [0, 10, 20], right=False)
        assert out.tolist() == [1]

    def test_missing_passthrough(self):
        out = cut(Series([None, 5.0]), [0, 10])
        assert out.isna().tolist() == [True, False]

    def test_unsorted_edges_raise(self):
        with pytest.raises(ValueError):
            cut(Series([1]), [10, 0])

    def test_wrong_label_count_raises(self):
        with pytest.raises(ValueError):
            cut(Series([1]), [0, 1, 2], labels=["only-one"])


class TestQcut:
    def test_even_split(self):
        out = qcut(Series(list(range(8))), 4)
        counts = out.value_counts()
        assert all(v == 2 for v in counts.values())

    def test_labels(self):
        out = qcut(Series([1, 2, 3, 4]), 2, labels=["lo", "hi"])
        assert out.tolist() == ["lo", "lo", "hi", "hi"]

    def test_heavily_tied_data_collapses_bins(self):
        out = qcut(Series([1, 1, 1, 1, 2]), 4)
        assert out.notna().all()

    def test_all_missing(self):
        out = qcut(Series([None, None]), 2)
        assert out.isna().all()


class TestConcat:
    def test_rows(self):
        a = DataFrame({"x": [1], "y": ["a"]})
        b = DataFrame({"x": [2], "y": ["b"]})
        out = concat([a, b])
        assert out["x"].tolist() == [1, 2]

    def test_rows_with_missing_columns(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"y": [2]})
        out = concat([a, b])
        assert out["x"][0] == 1 and out["x"].isna().tolist() == [False, True]
        assert out["y"][1] == 2 and out["y"].isna().tolist() == [True, False]

    def test_columns(self):
        a = DataFrame({"x": [1, 2]})
        b = DataFrame({"y": [3, 4]})
        out = concat([a, b], axis=1)
        assert out.columns == ["x", "y"]

    def test_empty_input(self):
        assert concat([]).empty

    def test_none_entries_skipped(self):
        a = DataFrame({"x": [1]})
        assert concat([a, None])["x"].tolist() == [1]
