"""Unit tests for :mod:`repro.dataframe.series`."""

import math

import numpy as np
import pytest

from repro.dataframe import Series


class TestConstruction:
    def test_int_list_becomes_int64(self):
        s = Series([1, 2, 3])
        assert s.dtype == np.int64
        assert s.tolist() == [1, 2, 3]

    def test_float_list_becomes_float64(self):
        s = Series([1.5, 2.0])
        assert s.dtype == np.float64

    def test_missing_promotes_ints_to_float(self):
        s = Series([1, None, 3])
        assert s.dtype == np.float64
        assert math.isnan(s[1])

    def test_strings_become_object(self):
        s = Series(["a", "b"])
        assert s.dtype == object

    def test_mixed_becomes_object(self):
        s = Series(["a", 1])
        assert s.dtype == object

    def test_bool_list_becomes_bool(self):
        s = Series([True, False])
        assert s.dtype == bool

    def test_nan_string_mix_keeps_none(self):
        s = Series(["a", None])
        assert s.tolist() == ["a", None]

    def test_from_numpy_copies(self):
        arr = np.array([1.0, 2.0])
        s = Series(arr)
        arr[0] = 99.0
        assert s[0] == 1.0

    def test_from_series_copies(self):
        a = Series([1, 2], name="a")
        b = Series(a, name="b")
        b[0] = 5
        assert a[0] == 1
        assert b.name == "b"

    def test_2d_array_rejected(self):
        with pytest.raises(ValueError):
            Series(np.zeros((2, 2)))

    def test_full(self):
        s = Series.full(4, 7, name="sevens")
        assert s.tolist() == [7, 7, 7, 7]
        assert s.name == "sevens"


class TestIndexing:
    def test_scalar_get_unboxes_numpy(self):
        s = Series([1, 2, 3])
        assert isinstance(s[0], int)

    def test_boolean_mask(self):
        s = Series([1, 2, 3, 4])
        out = s[s > 2]
        assert out.tolist() == [3, 4]

    def test_mask_by_other_series(self):
        s = Series([10, 20, 30])
        mask = Series([True, False, True])
        assert s[mask].tolist() == [10, 30]

    def test_slice(self):
        s = Series([1, 2, 3, 4])
        assert s[1:3].tolist() == [2, 3]

    def test_fancy_index(self):
        s = Series([1, 2, 3, 4])
        assert s[[3, 0]].tolist() == [4, 1]

    def test_setitem_scalar(self):
        s = Series([1, 2, 3])
        s[1] = 9
        assert s.tolist() == [1, 9, 3]

    def test_setitem_float_into_int_promotes(self):
        s = Series([1, 2, 3])
        s[0] = 1.5
        assert s.dtype == np.float64
        assert s[0] == 1.5

    def test_setitem_none_into_int_promotes(self):
        s = Series([1, 2, 3])
        s[0] = None
        assert math.isnan(s[0])


class TestMissing:
    def test_isna_floats(self):
        s = Series([1.0, float("nan"), 3.0])
        assert s.isna().tolist() == [False, True, False]

    def test_isna_objects(self):
        s = Series(["a", None, "c"])
        assert s.isna().tolist() == [False, True, False]

    def test_dropna(self):
        s = Series([1.0, None, 3.0])
        assert s.dropna().tolist() == [1.0, 3.0]

    def test_fillna_numeric(self):
        s = Series([1.0, None])
        assert s.fillna(0).tolist() == [1.0, 0.0]

    def test_fillna_object(self):
        s = Series(["a", None])
        assert s.fillna("missing").tolist() == ["a", "missing"]

    def test_fillna_no_missing_is_copy(self):
        s = Series([1, 2])
        out = s.fillna(0)
        out[0] = 7
        assert s[0] == 1

    def test_count_excludes_missing(self):
        assert Series([1.0, None, 3.0]).count() == 2


class TestTransforms:
    def test_map_callable_skips_missing(self):
        s = Series([1.0, None, 3.0])
        out = s.map(lambda v: v * 2)
        assert out[0] == 2.0
        assert out.isna().tolist() == [False, True, False]

    def test_map_dict_unmapped_becomes_missing(self):
        s = Series(["a", "b"])
        out = s.map({"a": 1})
        assert out[0] == 1
        assert out.isna().tolist() == [False, True]

    def test_apply_sees_missing(self):
        s = Series([1.0, None])
        out = s.apply(lambda v: v is None or v != v)
        assert out.tolist() == [False, True]

    def test_astype_str(self):
        assert Series([1, 2]).astype(str).tolist() == ["1", "2"]

    def test_astype_float(self):
        assert Series(["1.5", "2"]).astype(float).tolist() == [1.5, 2.0]

    def test_clip(self):
        s = Series([1, 5, 10])
        assert s.clip(2, 8).tolist() == [2.0, 5.0, 8.0]

    def test_clip_keeps_nan(self):
        s = Series([1.0, None])
        assert s.clip(0, 10).isna().tolist() == [False, True]

    def test_replace(self):
        s = Series(["x", "y"])
        assert s.replace({"x": "z"}).tolist() == ["z", "y"]

    def test_shift_positive(self):
        s = Series([1, 2, 3])
        out = s.shift(1)
        assert out.isna()[0]
        assert out.tolist()[1:] == [1, 2]

    def test_shift_negative(self):
        s = Series([1, 2, 3])
        out = s.shift(-1)
        assert out.tolist()[:2] == [2, 3]

    def test_where(self):
        s = Series([1, 2, 3])
        out = s.where(s > 1, other=0)
        assert out.tolist() == [0, 2, 3]

    def test_round(self):
        assert Series([1.26]).round(1).tolist() == [1.3]

    def test_abs(self):
        assert Series([-2, 3]).abs().tolist() == [2.0, 3.0]

    def test_rank_average_ties(self):
        s = Series([10, 20, 20, 30])
        assert s.rank().tolist() == [1.0, 2.5, 2.5, 4.0]


class TestReductions:
    def test_mean_ignores_missing(self):
        assert Series([1.0, None, 3.0]).mean() == 2.0

    def test_median(self):
        assert Series([3, 1, 2]).median() == 2.0

    def test_std_sample(self):
        assert Series([1, 2, 3]).std() == pytest.approx(1.0)

    def test_min_max_numeric(self):
        s = Series([3, 1, 2])
        assert (s.min(), s.max()) == (1.0, 3.0)

    def test_min_max_strings(self):
        s = Series(["b", "a", None])
        assert (s.min(), s.max()) == ("a", "b")

    def test_sum_empty_is_zero(self):
        assert Series([]).sum() == 0.0

    def test_mean_empty_is_nan(self):
        assert math.isnan(Series([]).mean())

    def test_quantile(self):
        assert Series([0, 10]).quantile(0.5) == 5.0

    def test_unique_order_preserved(self):
        assert Series(["b", "a", "b", None]).unique() == ["b", "a"]

    def test_nunique(self):
        assert Series(["b", "a", "b", None]).nunique() == 2
        assert Series(["b", "a", "b", None]).nunique(dropna=False) == 3

    def test_mode(self):
        assert Series(["a", "b", "b"]).mode() == "b"

    def test_value_counts(self):
        vc = Series(["a", "b", "b"]).value_counts()
        assert vc == {"b": 2, "a": 1}

    def test_value_counts_normalized(self):
        vc = Series(["a", "b", "b", "b"]).value_counts(normalize=True)
        assert vc["b"] == pytest.approx(0.75)

    def test_idxmax_skips_nan(self):
        assert Series([1.0, None, 5.0, 2.0]).idxmax() == 2

    def test_corr_perfect(self):
        a = Series([1, 2, 3])
        assert a.corr(a * 2) == pytest.approx(1.0)

    def test_corr_constant_is_nan(self):
        assert math.isnan(Series([1, 1, 1]).corr(Series([1, 2, 3])))

    def test_cumsum(self):
        assert Series([1, 2, 3]).cumsum().tolist() == [1.0, 3.0, 6.0]

    def test_sort_values(self):
        assert Series([3, 1, 2]).sort_values().tolist() == [1, 2, 3]
        assert Series([3, 1, 2]).sort_values(ascending=False).tolist() == [3, 2, 1]


class TestArithmetic:
    def test_add_series(self):
        out = Series([1, 2]) + Series([10, 20])
        assert out.tolist() == [11.0, 22.0]

    def test_add_scalar(self):
        assert (Series([1, 2]) + 1).tolist() == [2.0, 3.0]

    def test_radd(self):
        assert (1 + Series([1, 2])).tolist() == [2.0, 3.0]

    def test_string_concat(self):
        out = Series(["a", "b"]) + "_x"
        assert out.tolist() == ["a_x", "b_x"]

    def test_sub_rsub(self):
        assert (Series([5]) - 2).tolist() == [3.0]
        assert (10 - Series([4])).tolist() == [6.0]

    def test_div_by_zero_gives_inf(self):
        out = Series([1.0]) / Series([0.0])
        assert math.isinf(out[0])

    def test_zero_div_zero_gives_nan(self):
        out = Series([0.0]) / Series([0.0])
        assert math.isnan(out[0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Series([1, 2]) + Series([1])

    def test_pow(self):
        assert (Series([2]) ** 3).tolist() == [8.0]

    def test_neg(self):
        assert (-Series([1, -2])).tolist() == [-1.0, 2.0]

    def test_mod(self):
        assert (Series([5]) % 3).tolist() == [2.0]

    def test_floordiv(self):
        assert (Series([7]) // 2).tolist() == [3.0]

    def test_nan_propagates_through_add(self):
        out = Series([1.0, None]) + 1
        assert out.isna().tolist() == [False, True]


class TestComparisons:
    def test_numeric_comparisons(self):
        s = Series([1, 2, 3])
        assert (s > 2).tolist() == [False, False, True]
        assert (s <= 2).tolist() == [True, True, False]

    def test_eq_string(self):
        s = Series(["a", "b"])
        assert (s == "a").tolist() == [True, False]

    def test_ne(self):
        s = Series(["a", "b"])
        assert (s != "a").tolist() == [False, True]

    def test_nan_compares_false(self):
        s = Series([1.0, None])
        assert (s > 0).tolist() == [True, False]

    def test_and_or_invert(self):
        a, b = Series([True, False]), Series([True, True])
        assert (a & b).tolist() == [True, False]
        assert (a | b).tolist() == [True, True]
        assert (~a).tolist() == [False, True]

    def test_isin(self):
        s = Series(["a", "b", None])
        assert s.isin(["a"]).tolist() == [True, False, False]

    def test_between(self):
        s = Series([1, 5, 10])
        assert s.between(2, 9).tolist() == [False, True, False]
        assert s.between(1, 10).tolist() == [True, True, True]


class TestStringAccessor:
    def test_lower_upper(self):
        s = Series(["Ab", None])
        assert s.str.lower().tolist() == ["ab", None]
        assert s.str.upper().tolist() == ["AB", None]

    def test_contains(self):
        s = Series(["Honda Civic", "Ford"])
        assert s.str.contains("Civic").tolist() == [True, False]

    def test_contains_case_insensitive(self):
        s = Series(["Honda"])
        assert s.str.contains("honda", case=False).tolist() == [True]

    def test_split_plain(self):
        s = Series(["a,b", "c"])
        assert s.str.split(",").tolist() == [["a", "b"], ["c"]]

    def test_split_expand(self):
        s = Series(["a,b", "c"])
        df = s.str.split(",", expand=True)
        assert df.shape == (2, 2)
        assert df["1"].tolist() == ["b", None]

    def test_get(self):
        s = Series(["abc"])
        assert s.str.get(1).tolist() == ["b"]

    def test_startswith_none_safe(self):
        s = Series(["ab", None])
        assert s.str.startswith("a").tolist() == [True, False]

    def test_len(self):
        assert Series(["abc", ""]).str.len().tolist() == [3, 0]

    def test_replace(self):
        assert Series(["a-b"]).str.replace("-", "_").tolist() == ["a_b"]

    def test_cat(self):
        out = Series(["a", "b"]).str.cat(Series(["x", "y"]), sep="-")
        assert out.tolist() == ["a-x", "b-y"]

    def test_slice(self):
        assert Series(["hello"]).str.slice(0, 2).tolist() == ["he"]


class TestDatetimeAccessor:
    def test_components_from_iso(self):
        s = Series(["2024-01-15", "2023-12-31"])
        assert s.dt.year.tolist() == [2024, 2023]
        assert s.dt.month.tolist() == [1, 12]
        assert s.dt.day.tolist() == [15, 31]

    def test_dayofweek(self):
        # 2024-01-15 is a Monday.
        assert Series(["2024-01-15"]).dt.dayofweek.tolist() == [0]

    def test_quarter(self):
        assert Series(["2024-05-01"]).dt.quarter.tolist() == [2]

    def test_none_passes_through(self):
        out = Series(["2024-01-15", None]).dt.year
        assert out[0] == 2024
        assert out.isna().tolist() == [False, True]

    def test_unparseable_raises(self):
        with pytest.raises(ValueError):
            Series(["not a date"]).dt.year

    def test_slash_format(self):
        assert Series(["2024/03/09"]).dt.month.tolist() == [3]
