"""The out-of-core substrate: shard iterators, concat, the seeded
reservoir, CSV shard streams, and streaming grouped aggregation.

The load-bearing invariants:

* ``concat_shards(iter_frame_shards(df, k)) == df`` bit-identically for
  every ``k`` — sharding is a pure re-chunking, never a coercion.
* ``reservoir_sample`` depends only on the row stream and seed, never on
  shard boundaries (the draw for global row *i* is a pure hash).
* ``read_csv_shards`` with a ``scan_csv_kinds`` schema yields shards
  bit-identical to row slices of ``read_csv``.
* ``StreamingGroupAgg`` is invariant to shard boundaries for every op,
  bit-exact against the one-shot kernels for everything except
  ``sum``/``mean`` (sequential fold vs pairwise: round-off only).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import DataFrame, Series, read_csv
from repro.dataframe.groupby import StreamingGroupAgg
from repro.dataframe.io import (
    Shard,
    concat_shards,
    iter_frame_shards,
    read_csv_shards,
    reservoir_sample,
    scan_csv_kinds,
    to_csv,
)


def mixed_frame(n=100, seed=0):
    rng = np.random.default_rng(seed)
    income = rng.normal(100.0, 30.0, n)
    income[rng.random(n) < 0.2] = np.nan
    return DataFrame(
        {
            "k": Series([f"g{i}" for i in rng.integers(0, 7, n)]),
            "i": Series(rng.integers(-50, 50, n).tolist()),
            "f": Series(income),
            "o": Series(
                [None if x < 0.15 else f"v{int(x * 10)}" for x in rng.random(n)]
            ),
        }
    )


def frames_equal(a: DataFrame, b: DataFrame) -> bool:
    if a.columns != b.columns or len(a) != len(b):
        return False
    for name in a.columns:
        va, vb = a[name].values, b[name].values
        if va.dtype != vb.dtype:
            return False
        if not np.array_equal(va, vb, equal_nan=va.dtype.kind == "f"):
            return False
    return True


class TestFrameShards:
    @pytest.mark.parametrize("chunk", [1, 7, 33, 100, 1000])
    def test_roundtrip_bit_identical(self, chunk):
        df = mixed_frame(100)
        shards = list(iter_frame_shards(df, chunk))
        assert sum(len(s) for s in shards) == len(df)
        assert [s.index for s in shards] == list(range(len(shards)))
        assert shards[0].start == 0
        assert frames_equal(concat_shards(shards), df)

    def test_shards_are_views_with_offsets(self):
        df = mixed_frame(50)
        shards = list(iter_frame_shards(df, 20))
        assert [s.start for s in shards] == [0, 20, 40]
        assert [len(s) for s in shards] == [20, 20, 10]
        # slice views share the parent buffer (no copy per shard)
        assert shards[1].frame["i"].values.base is not None

    def test_empty_frame_yields_nothing(self):
        assert list(iter_frame_shards(DataFrame({"a": Series([])}), 10)) == []

    def test_invalid_chunk_rows(self):
        with pytest.raises(ValueError):
            list(iter_frame_shards(mixed_frame(10), 0))

    def test_concat_accepts_plain_frames(self):
        df = mixed_frame(30)
        parts = [s.frame for s in iter_frame_shards(df, 11)]
        assert frames_equal(concat_shards(parts), df)

    def test_concat_column_mismatch_raises(self):
        with pytest.raises(ValueError):
            concat_shards(
                [DataFrame({"a": Series([1])}), DataFrame({"b": Series([1])})]
            )

    def test_concat_empty_input_is_empty_frame(self):
        assert len(concat_shards([])) == 0

    def test_concat_mixed_dtype_rebuilds_via_coercion(self):
        # int shard + float shard: the in-memory build of the same rows
        # coerces to float64, and so must the concat.
        a = DataFrame({"x": Series([1, 2])})
        b = DataFrame({"x": Series([1.5, np.nan])})
        merged = concat_shards([a, b])
        whole = DataFrame({"x": Series([1, 2, 1.5, None])})
        assert merged["x"].dtype == whole["x"].dtype
        assert np.array_equal(merged["x"].values, whole["x"].values, equal_nan=True)


class TestReservoirSample:
    def test_chunk_invariance(self):
        df = mixed_frame(500, seed=3)
        base, total = reservoir_sample(iter_frame_shards(df, 10**6), 64, seed=5)
        assert total == 500
        for chunk in (1, 9, 64, 499):
            sample, n = reservoir_sample(iter_frame_shards(df, chunk), 64, seed=5)
            assert n == 500
            assert frames_equal(sample, base)

    def test_seed_changes_sample(self):
        df = mixed_frame(500, seed=3)
        a, _ = reservoir_sample(iter_frame_shards(df, 100), 64, seed=0)
        b, _ = reservoir_sample(iter_frame_shards(df, 100), 64, seed=1)
        assert not frames_equal(a, b)

    def test_k_at_least_n_returns_whole_stream_in_order(self):
        df = mixed_frame(40)
        sample, total = reservoir_sample(iter_frame_shards(df, 7), 40, seed=9)
        assert total == 40
        assert frames_equal(sample, df)

    def test_rows_kept_in_original_order(self):
        df = DataFrame({"x": Series(list(range(200)))})
        sample, _ = reservoir_sample(iter_frame_shards(df, 17), 50, seed=2)
        values = sample["x"].tolist()
        assert values == sorted(values)
        assert len(set(values)) == 50

    def test_sample_is_unbiased_enough(self):
        # Not a statistical test — just that the hash draw isn't
        # degenerate (e.g. always keeping the first k rows).
        df = DataFrame({"x": Series(list(range(1000)))})
        sample, _ = reservoir_sample(iter_frame_shards(df, 100), 100, seed=0)
        assert max(sample["x"].tolist()) > 500


class TestCsvShards:
    def test_schema_scan_matches_read_csv_slices(self, tmp_path):
        df = mixed_frame(120, seed=1)
        path = tmp_path / "t.csv"
        to_csv(df, path)
        whole = read_csv(path)
        schema = scan_csv_kinds(path)
        for chunk in (1, 37, 5000):
            shards = list(read_csv_shards(path, chunk, schema=schema))
            merged = concat_shards(shards)
            assert frames_equal(merged, whole)
            # each shard individually matches the corresponding row slice
            offset = 0
            for shard in shards:
                for name in whole.columns:
                    expect = whole[name].values[offset : offset + len(shard)]
                    got = shard.frame[name].values
                    assert got.dtype == expect.dtype
                    assert np.array_equal(
                        got, expect, equal_nan=got.dtype.kind == "f"
                    )
                offset += len(shard)

    def test_schemaless_shards_concat_to_read_csv(self, tmp_path):
        df = mixed_frame(60, seed=2)
        path = tmp_path / "t.csv"
        to_csv(df, path)
        merged = concat_shards(list(read_csv_shards(path, 13)))
        assert frames_equal(merged, read_csv(path))

    def test_append_mode_writes_incrementally(self, tmp_path):
        df = mixed_frame(45, seed=4)
        whole_path = tmp_path / "whole.csv"
        inc_path = tmp_path / "inc.csv"
        to_csv(df, whole_path)
        for i, shard in enumerate(iter_frame_shards(df, 10)):
            to_csv(shard.frame, inc_path, append=i > 0)
        assert inc_path.read_bytes() == whole_path.read_bytes()


AGG_OPS = ("sum", "mean", "min", "max", "count", "size", "first", "last")


def streaming_result(frame, chunk, keys, agg_col, op):
    agg = StreamingGroupAgg(keys, agg_col, op)
    for shard in iter_frame_shards(frame, chunk):
        agg.update(shard.frame)
    return agg.result()


class TestStreamingGroupAgg:
    @pytest.mark.parametrize("op", AGG_OPS)
    @pytest.mark.parametrize("chunk", [1, 7, 100, 999])
    def test_chunk_invariance_every_op(self, op, chunk):
        frame = mixed_frame(200, seed=6)
        col = None if op == "size" else "f"
        base_labels, base_values = streaming_result(frame, 10**6, ["k"], col, op)
        labels, values = streaming_result(frame, chunk, ["k"], col, op)
        assert labels == base_labels
        assert values.dtype == base_values.dtype
        assert np.array_equal(
            values, base_values, equal_nan=values.dtype.kind == "f"
        )

    @pytest.mark.parametrize("op", ["min", "max", "count", "first", "last"])
    def test_non_sum_ops_bit_exact_vs_groupby(self, op):
        frame = mixed_frame(150, seed=7)
        labels, values = streaming_result(frame, 11, ["k"], "f", op)
        grouped = frame.groupby("k")["f"].agg(op)
        key_col, val_col = grouped.columns
        expect = dict(zip(grouped[key_col].tolist(), grouped[val_col].values))
        assert set(labels) == set(expect)
        for label, value in zip(labels, values):
            want = expect[label]
            if isinstance(want, float) and np.isnan(want):
                assert np.isnan(value)
            else:
                assert value == want

    def test_size_matches_python_counts(self):
        from collections import Counter

        frame = mixed_frame(150, seed=7)
        labels, values = streaming_result(frame, 11, ["k"], None, "size")
        assert dict(zip(labels, values)) == Counter(frame["k"].tolist())

    def test_sum_mean_close_to_one_shot(self):
        frame = mixed_frame(300, seed=8)
        for op in ("sum", "mean"):
            labels, values = streaming_result(frame, 23, ["k"], "f", op)
            grouped = frame.groupby("k")["f"].agg(op)
            key_col, val_col = grouped.columns
            expect = dict(zip(grouped[key_col].tolist(), grouped[val_col].values))
            for label, value in zip(labels, values):
                want = expect[label]
                if np.isnan(want):
                    assert np.isnan(value)
                else:
                    assert np.isclose(value, want, rtol=1e-12, atol=0.0)

    def test_labels_in_global_first_seen_order(self):
        frame = DataFrame(
            {"k": Series(["b", "a", "c", "a", "d"]), "v": Series([1.0] * 5)}
        )
        labels, _ = streaming_result(frame, 2, ["k"], "v", "sum")
        assert labels == ["b", "a", "c", "d"]

    def test_multi_key(self):
        frame = DataFrame(
            {
                "k1": Series(["a", "a", "b", "b"]),
                "k2": Series(["x", "y", "x", "x"]),
                "v": Series([1.0, 2.0, 3.0, 4.0]),
            }
        )
        labels, values = streaming_result(frame, 3, ["k1", "k2"], "v", "sum")
        assert labels == [("a", "x"), ("a", "y"), ("b", "x")]
        assert values.tolist() == [1.0, 2.0, 7.0]

    def test_all_nan_group_stays_nan_for_min_max_mean(self):
        frame = DataFrame(
            {
                "k": Series(["a", "a", "b"]),
                "v": Series([np.nan, np.nan, 1.0]),
            }
        )
        for op in ("min", "max", "mean"):
            labels, values = streaming_result(frame, 1, ["k"], "v", op)
            out = dict(zip(labels, values))
            assert np.isnan(out["a"])
            assert out["b"] == 1.0

    def test_missing_keys_raise(self):
        frame = DataFrame({"k": Series(["a", None]), "v": Series([1.0, 2.0])})
        agg = StreamingGroupAgg(["k"], "v", "sum")
        with pytest.raises(ValueError, match="hash path"):
            agg.update(frame)

    def test_unknown_agg_raises(self):
        with pytest.raises(ValueError, match="segmented form"):
            StreamingGroupAgg(["k"], "v", "median")

    def test_size_needs_no_agg_col(self):
        frame = DataFrame({"k": Series(["a", "b", "a"])})
        labels, values = streaming_result(frame, 2, ["k"], None, "size")
        assert dict(zip(labels, values)) == {"a": 2, "b": 1}

    def test_non_numeric_agg_col_raises_for_numeric_ops(self):
        frame = DataFrame({"k": Series(["a"]), "v": Series(["text"])})
        agg = StreamingGroupAgg(["k"], "v", "sum")
        with pytest.raises(ValueError):
            agg.update(frame)

    def test_first_last_preserve_object_dtype(self):
        frame = DataFrame(
            {"k": Series(["a", "a", "b"]), "v": Series(["x", "y", None])}
        )
        labels, firsts = streaming_result(frame, 1, ["k"], "v", "first")
        _, lasts = streaming_result(frame, 1, ["k"], "v", "last")
        assert dict(zip(labels, firsts)) == {"a": "x", "b": None}
        assert dict(zip(labels, lasts)) == {"a": "y", "b": None}


# ----------------------------------------------------------------------
# Property suite: shard-boundary invariance under hypothesis
# ----------------------------------------------------------------------
group_keys = st.lists(
    st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=60
)
agg_values = st.lists(
    st.one_of(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.just(float("nan")),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(group_keys, agg_values, st.integers(1, 61), st.sampled_from(AGG_OPS))
def test_streaming_agg_chunk_invariant(keys, values, chunk, op):
    n = min(len(keys), len(values))
    frame = DataFrame({"k": Series(keys[:n]), "v": Series(values[:n])})
    col = None if op == "size" else "v"
    base_labels, base_values = streaming_result(frame, n + 1, ["k"], col, op)
    labels, got = streaming_result(frame, chunk, ["k"], col, op)
    assert labels == base_labels
    assert got.dtype == base_values.dtype
    assert np.array_equal(got, base_values, equal_nan=got.dtype.kind == "f")


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.integers(-100, 100),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            st.just(float("nan")),
            st.sampled_from(["x", "y", ""]),
            st.none(),
        ),
        min_size=1,
        max_size=50,
    ),
    st.integers(1, 51),
)
def test_shard_roundtrip_any_column(values, chunk):
    frame = DataFrame({"c": Series(values)})
    merged = concat_shards(list(iter_frame_shards(frame, chunk)))
    assert merged["c"].dtype == frame["c"].dtype
    assert np.array_equal(
        merged["c"].values, frame["c"].values, equal_nan=frame["c"].dtype.kind == "f"
    )


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(1, 40), st.integers(1, 120))
def test_reservoir_chunk_invariant(seed, k, chunk):
    df = DataFrame({"x": Series(list(range(120)))})
    base, total = reservoir_sample(iter_frame_shards(df, 121), k, seed=seed)
    sample, n = reservoir_sample(iter_frame_shards(df, chunk), k, seed=seed)
    assert (total, n) == (120, 120)
    assert sample["x"].tolist() == base["x"].tolist()
    assert len(sample) == min(k, 120)
