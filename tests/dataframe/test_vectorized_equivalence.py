"""Property-based equivalence: vectorized data plane vs loop reference.

Mirrors ``tests/core/test_concurrent_properties.py`` one layer down: for
*random* mixed-type data — including ``None``/NaN, bools, negative and
tied values — every numpy fast path must produce the same values, dtype,
and missing-value handling as the retained element-loop implementations
in :mod:`repro.dataframe.reference`.

Equality contract: dtypes and missingness are exact; values are exact
except float accumulations (group sum/mean) and ``log``, where the
vectorized path's summation order / SIMD libm differ by a few ulp —
those compare with ``rtol=1e-12``.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import DataFrame, Series, cut, factorize, get_dummies
from repro.dataframe.reference import (
    REFERENCE_TRANSFORM_SOURCES,
    assert_frame_equivalent,
    assert_series_equivalent,
    reference_apply,
    reference_astype,
    reference_coerce_values,
    reference_cut,
    reference_factorize,
    reference_get_dummies,
    reference_groupby_agg,
    reference_groupby_transform,
    reference_isin,
    reference_map,
    reference_mode,
    reference_unique,
    reference_value_counts,
    reference_where,
)
from repro.dataframe.series import _is_missing_scalar

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
maybe_missing_floats = st.one_of(
    st.none(), st.just(float("nan")), st.floats(allow_nan=False, allow_infinity=False, width=32)
)
mixed_scalars = st.one_of(
    st.none(),
    st.just(float("nan")),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.sampled_from(["a", "bb", "C", "", "dd"]),
)
group_keys = st.one_of(
    st.sampled_from(["x", "y", "z", "w"]),
    st.integers(min_value=-3, max_value=3),
)
AGG_NAMES = ("mean", "sum", "min", "max", "count", "size", "first", "last", "median", "std")


# The equality contract itself (exact dtype/missingness, float values
# within a few ulp) is the shared helper pair in repro.dataframe.reference
# — the same one the bench_dataplane smoke gate enforces.
assert_series_equal = assert_series_equivalent
assert_frame_equal = assert_frame_equivalent


# ----------------------------------------------------------------------
# Series construction (single-pass coercion)
# ----------------------------------------------------------------------
@given(st.lists(mixed_scalars, max_size=60))
@settings(max_examples=200)
def test_coerce_matches_reference(values):
    new = Series(values).values
    ref = reference_coerce_values(values)
    assert new.dtype == ref.dtype
    assert_series_equal(Series._from_array(new), Series._from_array(ref))


# ----------------------------------------------------------------------
# Element-wise transforms
# ----------------------------------------------------------------------
@given(
    st.lists(mixed_scalars, max_size=50),
    st.dictionaries(
        st.one_of(st.integers(-5, 5), st.sampled_from(["a", "bb", "C", ""])),
        st.one_of(st.none(), st.integers(-9, 9), finite_floats, st.sampled_from(["u", "v"])),
        max_size=8,
    ),
)
@settings(max_examples=150)
def test_map_dict_matches_reference(values, mapping):
    s = Series(values)
    assert_series_equal(s.map(mapping), reference_map(s, mapping))


@given(st.lists(maybe_missing_floats, max_size=50))
@settings(max_examples=100)
def test_map_ufunc_matches_reference(values):
    s = Series(values)
    assert_series_equal(s.map(np.sign), reference_map(s, np.sign))


@given(st.lists(st.one_of(st.none(), st.just(float("nan")), finite_floats), max_size=50))
@settings(max_examples=100)
def test_apply_abs_matches_reference(values):
    s = Series(values)
    for func in (abs, np.abs):
        try:
            ref = reference_apply(s, func)
            ref_error = None
        except TypeError as exc:  # abs(None) on all-missing object columns
            ref, ref_error = None, exc
        try:
            new = s.apply(func)
            new_error = None
        except TypeError as exc:
            new, new_error = None, exc
        assert (ref_error is None) == (new_error is None)
        if ref is not None:
            assert_series_equal(new, ref)


@given(st.lists(finite_floats, max_size=50))
@settings(max_examples=100)
def test_apply_math_domain_errors_match(values):
    """math.sqrt on possibly-negative data: the vectorized dispatch must
    raise exactly what the element loop raised."""
    s = Series(values)
    try:
        ref = reference_apply(s, math.sqrt)
        ref_error = None
    except ValueError as exc:
        ref, ref_error = None, exc
    try:
        new = s.apply(math.sqrt)
        new_error = None
    except ValueError as exc:
        new, new_error = None, exc
    assert (ref_error is None) == (new_error is None)
    if ref is not None:
        assert_series_equal(new, ref)


@given(st.lists(mixed_scalars, max_size=50), st.sampled_from(["str", "float", "bool"]))
@settings(max_examples=150)
def test_astype_matches_reference(values, dtype):
    s = Series(values)
    try:
        ref = reference_astype(s, dtype)
        ref_error = None
    except (ValueError, TypeError) as exc:
        ref, ref_error = None, type(exc)
    try:
        new = s.astype(dtype)
        new_error = None
    except (ValueError, TypeError) as exc:
        new, new_error = None, type(exc)
    assert (ref_error is None) == (new_error is None)
    if ref is not None:
        assert_series_equal(new, ref)


@given(st.lists(st.one_of(st.integers(-50, 50), finite_floats, st.booleans()), max_size=50))
@settings(max_examples=100)
def test_astype_int_matches_reference(values):
    s = Series(values)
    try:
        ref = reference_astype(s, int)
        ref_error = None
    except (ValueError, OverflowError) as exc:  # NaN / out-of-range floats
        ref, ref_error = None, type(exc)
    try:
        new = s.astype(int)
        new_error = None
    except (ValueError, OverflowError) as exc:
        new, new_error = None, type(exc)
    assert new_error == ref_error
    if ref is not None:
        assert_series_equal(new, ref)


@given(
    st.lists(
        st.one_of(maybe_missing_floats, st.integers(-50, 50)), min_size=1, max_size=50
    ),
    st.lists(st.booleans(), min_size=1, max_size=50),
    st.one_of(st.none(), st.integers(-9, 9), finite_floats),
)
@settings(max_examples=200)
def test_where_matches_reference(values, mask, other):
    n = min(len(values), len(mask))
    s = Series(values[:n])
    cond = Series(mask[:n])
    assert_series_equal(s.where(cond, other), reference_where(s, cond, other))


@given(
    st.lists(mixed_scalars, max_size=50),
    st.lists(st.one_of(st.integers(-5, 5), finite_floats, st.sampled_from(["a", "bb"])), max_size=6),
)
@settings(max_examples=150)
def test_isin_matches_reference(values, lookup):
    s = Series(values)
    assert_series_equal(s.isin(lookup), reference_isin(s, lookup))


# ----------------------------------------------------------------------
# Uniques / counts / factorisation
# ----------------------------------------------------------------------
@given(st.lists(mixed_scalars, max_size=60))
@settings(max_examples=200)
def test_unique_counts_factorize_match_reference(values):
    s = Series(values)
    assert s.unique() == reference_unique(s)
    assert s.value_counts() == reference_value_counts(s)
    assert s.value_counts(normalize=True) == reference_value_counts(s, normalize=True)
    mode_new, mode_ref = s.mode(), reference_mode(s)
    assert (mode_new is None) == (mode_ref is None)
    if mode_ref is not None:
        assert mode_new == mode_ref
    codes_new, uniques_new = factorize(s)
    codes_ref, uniques_ref = reference_factorize(s)
    assert codes_new.tolist() == codes_ref.tolist()
    assert uniques_new == uniques_ref


@given(st.lists(st.sampled_from(["x", "y", "z", "w"]), max_size=40), st.booleans())
@settings(max_examples=100)
def test_get_dummies_matches_reference(values, drop_first):
    s = Series(values, name="c")
    assert_frame_equal(
        get_dummies(s, drop_first=drop_first),
        reference_get_dummies(s, drop_first=drop_first),
    )


@given(
    st.lists(st.one_of(st.none(), finite_floats), max_size=40),
    st.lists(st.integers(-20, 20), min_size=2, max_size=6, unique=True),
    st.booleans(),
    st.booleans(),
)
@settings(max_examples=150)
def test_cut_matches_reference(values, edges, right, with_labels):
    s = Series(values)
    edges = sorted(edges)
    labels = [f"bin{i}" for i in range(len(edges) - 1)] if with_labels else None
    assert_series_equal(
        cut(s, edges, labels=labels, right=right),
        reference_cut(s, edges, labels=labels, right=right),
    )


# ----------------------------------------------------------------------
# Group-by: segmented reductions vs per-group loops
# ----------------------------------------------------------------------
@given(
    st.lists(group_keys, min_size=1, max_size=60),
    st.lists(maybe_missing_floats, min_size=1, max_size=60),
    st.sampled_from(AGG_NAMES),
)
@settings(max_examples=200)
def test_groupby_single_key_matches_reference(keys, values, agg):
    n = min(len(keys), len(values))
    frame = DataFrame({"k": keys[:n], "v": values[:n]})
    assert_series_equal(
        frame.groupby("k")["v"].transform(agg),
        reference_groupby_transform(frame, "k", "v", agg),
    )
    assert_frame_equal(
        frame.groupby("k")["v"].agg(agg),
        reference_groupby_agg(frame, "k", "v", agg),
    )


@given(
    st.lists(group_keys, min_size=1, max_size=50),
    st.lists(st.sampled_from(["p", "q"]), min_size=1, max_size=50),
    st.lists(maybe_missing_floats, min_size=1, max_size=50),
    st.sampled_from(("mean", "sum", "min", "max", "count")),
)
@settings(max_examples=150)
def test_groupby_multi_key_matches_reference(keys_a, keys_b, values, agg):
    n = min(len(keys_a), len(keys_b), len(values))
    frame = DataFrame({"a": keys_a[:n], "b": keys_b[:n], "v": values[:n]})
    assert_series_equal(
        frame.groupby(["a", "b"])["v"].transform(agg),
        reference_groupby_transform(frame, ["a", "b"], "v", agg),
    )
    assert_frame_equal(
        frame.groupby(["a", "b"])["v"].agg(agg),
        reference_groupby_agg(frame, ["a", "b"], "v", agg),
    )


@given(
    st.lists(st.one_of(group_keys, st.none()), min_size=1, max_size=40),
    st.lists(maybe_missing_floats, min_size=1, max_size=40),
)
@settings(max_examples=100)
def test_groupby_missing_keys_fall_back_identically(keys, values):
    """None/NaN group keys route to the hash path — still reference-equal."""
    n = min(len(keys), len(values))
    frame = DataFrame({"k": keys[:n], "v": values[:n]})
    assert_series_equal(
        frame.groupby("k")["v"].transform("mean"),
        reference_groupby_transform(frame, "k", "v", "mean"),
    )


@given(
    st.lists(group_keys, min_size=1, max_size=40),
    st.lists(maybe_missing_floats, min_size=1, max_size=40),
)
@settings(max_examples=100)
def test_groupby_callable_matches_reference(keys, values):
    n = min(len(keys), len(values))
    frame = DataFrame({"k": keys[:n], "v": values[:n]})
    spread = lambda s: (s.max() or 0.0) - (s.min() or 0.0)  # noqa: E731
    assert_series_equal(
        frame.groupby("k")["v"].transform(spread),
        reference_groupby_transform(frame, "k", "v", spread),
    )


# ----------------------------------------------------------------------
# Generated transforms: vectorized emissions vs the retained loop sources
# ----------------------------------------------------------------------
@given(
    st.lists(st.one_of(st.none(), st.floats(min_value=-50, max_value=5000, width=32)), min_size=1, max_size=50),
    st.lists(st.one_of(st.none(), st.integers(-5, 5)), min_size=1, max_size=50),
)
@settings(max_examples=100)
def test_codegen_log_and_division_match_reference(amounts, divisors):
    from repro.core.sandbox import run_transform
    from repro.fm.codegen import generate_transform_source
    from repro.fm.knowledge import KnowledgeStore

    n = min(len(amounts), len(divisors))
    frame = DataFrame({"Income": amounts[:n], "Balance": divisors[:n]})
    knowledge = KnowledgeStore()
    new_log = run_transform(
        generate_transform_source("f", ["Income"], "log_transform: squash", knowledge), frame
    )
    ref_log = run_transform(
        REFERENCE_TRANSFORM_SOURCES["log_transform"].format(col="Income"), frame
    )
    assert_series_equal(new_log, ref_log)
    new_div = run_transform(
        generate_transform_source("g", ["Income", "Balance"], "binary[/]: ratio", knowledge),
        frame,
    )
    ref_div = run_transform(
        REFERENCE_TRANSFORM_SOURCES["binary_div"].format(a="Income", b="Balance"), frame
    )
    assert_series_equal(new_div, ref_div)


def test_codegen_knowledge_map_matches_reference():
    from repro.core.sandbox import run_transform
    from repro.fm.codegen import generate_transform_source
    from repro.fm.knowledge import KnowledgeStore

    knowledge = KnowledgeStore()
    frame = DataFrame({"City": ["SF", "LA", "SEA", None, "Nowhere", "SF"]})
    values = {"City": ["SF", "LA", "SEA"]}
    source = generate_transform_source(
        "density", ["City"], "knowledge_map[city_population_density]: d", knowledge, values
    )
    mapping = knowledge.mapping_for("city_population_density", values["City"])
    default = knowledge.default_for("city_population_density")
    entries = ", ".join(f"{k!r}: {v!r}" for k, v in mapping.items())
    ref_source = REFERENCE_TRANSFORM_SOURCES["knowledge_map"].format(
        entries="{%s}" % entries, col="City", default=default
    )
    assert_series_equal(run_transform(source, frame), run_transform(ref_source, frame))


# ----------------------------------------------------------------------
# Row iteration: one extraction, identical rows
# ----------------------------------------------------------------------
@given(st.lists(mixed_scalars, min_size=1, max_size=30), st.lists(mixed_scalars, min_size=1, max_size=30))
@settings(max_examples=50)
def test_row_tuples_match_iterrows(col_a, col_b):
    n = min(len(col_a), len(col_b))
    frame = DataFrame({"a": col_a[:n], "b": col_b[:n]})
    names, rows = frame.row_tuples()
    assert names == ["a", "b"]
    reconstructed = [dict(zip(names, vals)) for vals in rows]
    via_iterrows = [row.to_dict() for _, row in frame.iterrows()]
    assert len(reconstructed) == len(via_iterrows) == n
    for left, right in zip(reconstructed, via_iterrows):
        for key in names:
            x, y = left[key], right[key]
            if _is_missing_scalar(x) or _is_missing_scalar(y):
                assert _is_missing_scalar(x) and _is_missing_scalar(y)
            else:
                assert x == y
