"""Distributional sanity checks on the synthetic generators.

Beyond schema conformance (Table 3), a credible stand-in dataset needs
plausible marginals: bounded ranges, sensible prevalences, realistic
category balances.  These tests pin those properties.
"""

import numpy as np
import pytest

from repro.datasets import DATASET_NAMES, load_dataset

EXPECTED_PREVALENCE = {
    # Target positive rate by construction (generator prevalence settings).
    "diabetes": (0.25, 0.45),
    "heart": (0.12, 0.35),
    "bank": (0.06, 0.18),
    "adult": (0.18, 0.33),
    "housing": (0.4, 0.6),
    "lawschool": (0.7, 0.9),
    "west_nile": (0.06, 0.32),
    "tennis": (0.4, 0.6),
}


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_target_prevalence_plausible(name):
    bundle = load_dataset(name, n_rows=2000)
    rate = float(np.mean(bundle.frame[bundle.target].tolist()))
    low, high = EXPECTED_PREVALENCE[name]
    assert low <= rate <= high, (name, rate)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_numeric_ranges_finite_and_varied(name):
    bundle = load_dataset(name, n_rows=1000)
    for column in bundle.frame.numeric_columns():
        values = bundle.frame[column]._numeric()
        assert np.isfinite(values).all(), (name, column)
        if column != bundle.target:
            assert np.unique(values).size > 1, (name, column)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_no_degenerate_categoricals(name):
    bundle = load_dataset(name, n_rows=1000)
    for column in bundle.frame.categorical_columns():
        counts = bundle.frame[column].value_counts(normalize=True)
        assert len(counts) >= 2, (name, column)
        assert max(counts.values()) < 0.98, (name, column)


class TestSpecificMarginals:
    def test_diabetes_glucose_clinical_range(self):
        frame = load_dataset("diabetes", n_rows=1000).frame
        assert 90 <= frame["Glucose"].mean() <= 150

    def test_adult_capital_gain_heavy_tail(self):
        frame = load_dataset("adult", n_rows=3000).frame
        gains = frame["CapitalGain"]
        assert gains.median() == 0.0  # most workers record none
        assert gains.max() > 10_000  # but the tail is long

    def test_bank_pdays_999_sentinel(self):
        frame = load_dataset("bank", n_rows=2000).frame
        values = frame["DaysSincePrev"].value_counts()
        assert values.get(999, 0) > 1000  # "not previously contacted"

    def test_tennis_counts_scale_with_each_other(self):
        # The match-length confounder correlates winners with errors.
        frame = load_dataset("tennis", n_rows=900).frame
        assert frame["WNR.1"].corr(frame["UFE.1"]) > 0.5

    def test_housing_rooms_exceed_bedrooms(self):
        frame = load_dataset("housing", n_rows=1000).frame
        rooms = frame["TotalRooms"]._numeric()
        bedrooms = frame["TotalBedrooms"]._numeric()
        assert (rooms >= bedrooms).mean() > 0.99

    def test_west_nile_week_in_season(self):
        frame = load_dataset("west_nile", n_rows=1000).frame
        weeks = frame["WeekOfYear"]._numeric()
        assert weeks.min() >= 22 and weeks.max() <= 41
