"""Table 3 conformance tests for all eight synthetic datasets."""

import numpy as np
import pytest

from repro.datasets import DATASET_NAMES, dataset_info, list_datasets, load_dataset


def classify_columns(bundle):
    """Split feature columns per the Table 3 counting convention:
    categorical = strings + binary flags; numeric = continuous features
    plus the binary prediction class."""
    categorical, numeric = [], []
    for name in bundle.feature_columns():
        series = bundle.frame[name]
        if series.dtype == object:
            categorical.append(name)
        elif set(series.dropna().tolist()) <= {0, 1, 0.0, 1.0}:
            categorical.append(name)
        else:
            numeric.append(name)
    numeric.append(bundle.target)
    return categorical, numeric


SMALL = 400


class TestRegistry:
    def test_eight_datasets(self):
        assert len(DATASET_NAMES) == 8
        assert DATASET_NAMES == (
            "diabetes", "heart", "bank", "adult", "housing", "lawschool", "west_nile", "tennis",
        )

    def test_aliases(self):
        assert dataset_info("West Nile Virus").name == "west_nile"
        assert dataset_info("WNV").name == "west_nile"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            load_dataset("imagenet")

    def test_list_datasets_order(self):
        assert [s.name for s in list_datasets()] == list(DATASET_NAMES)


@pytest.mark.parametrize("name", DATASET_NAMES)
class TestEveryDataset:
    def test_schema_matches_table3(self, name):
        bundle = load_dataset(name, n_rows=SMALL)
        categorical, numeric = classify_columns(bundle)
        assert len(categorical) == bundle.spec.n_categorical, categorical
        assert len(numeric) == bundle.spec.n_numeric, numeric

    def test_full_size_row_count(self, name):
        spec = dataset_info(name)
        assert spec.n_rows > 0
        # Row-count fidelity is checked on the two small datasets at full
        # size (cheap); larger ones are exercised via n_rows overrides.
        if spec.n_rows <= 5000:
            assert len(load_dataset(name).frame) == spec.n_rows

    def test_binary_target_with_both_classes(self, name):
        bundle = load_dataset(name, n_rows=SMALL)
        values = set(bundle.frame[bundle.target].tolist())
        assert values == {0, 1}

    def test_deterministic_under_seed(self, name):
        a = load_dataset(name, seed=3, n_rows=SMALL)
        b = load_dataset(name, seed=3, n_rows=SMALL)
        assert a.frame.equals(b.frame)

    def test_seeds_differ(self, name):
        a = load_dataset(name, seed=1, n_rows=SMALL)
        b = load_dataset(name, seed=2, n_rows=SMALL)
        assert not a.frame.equals(b.frame)

    def test_descriptions_cover_all_features(self, name):
        bundle = load_dataset(name, n_rows=SMALL)
        assert set(bundle.descriptions) == set(bundle.feature_columns())

    def test_no_missing_values_after_generation(self, name):
        # The paper applies dropna before feature engineering; generators
        # emit clean frames directly.
        bundle = load_dataset(name, n_rows=SMALL)
        for column in bundle.frame.columns:
            assert bundle.frame[column].notna().all(), column

    def test_names_only_variant_strips_context(self, name):
        bundle = load_dataset(name, n_rows=SMALL)
        stripped = bundle.names_only()
        assert stripped.descriptions == {}
        assert stripped.title == ""
        assert stripped.frame is bundle.frame

    def test_field_label(self, name):
        assert dataset_info(name).field in (
            "Health", "Finance", "Society", "Education", "Disease", "Sports",
        )


class TestPlantedStructure:
    """Spot checks that the planted effects exist in the generated data."""

    def test_diabetes_insulin_zero_inflated(self):
        bundle = load_dataset("diabetes", n_rows=1000)
        zeros = (bundle.frame["Insulin"] == 0).to_numpy().mean()
        assert zeros > 0.3  # the divide-by-zero hazard for CAAFE

    def test_diabetes_glucose_signal(self):
        bundle = load_dataset("diabetes", n_rows=1000)
        frame = bundle.frame
        high = frame[frame["Glucose"] > 126]["Outcome"].mean()
        low = frame[frame["Glucose"] <= 100]["Outcome"].mean()
        assert high > low + 0.15

    def test_heart_pulse_pressure_signal(self):
        bundle = load_dataset("heart", n_rows=2000)
        frame = bundle.frame
        pulse = frame["SysBP"] - frame["DiaBP"]
        y = np.asarray(frame["TenYearCHD"].tolist())
        pp = pulse.to_numpy()
        assert np.corrcoef(pp, y)[0, 1] > 0.15

    def test_bank_duration_dominates(self):
        bundle = load_dataset("bank", n_rows=3000)
        corr = bundle.frame["CallDuration"].corr(bundle.frame["Subscribed"])
        assert corr > 0.25

    def test_adult_occupation_group_rates_spread(self):
        bundle = load_dataset("adult", n_rows=4000)
        rates = bundle.frame.groupby("Occupation")["HighIncome"].agg("mean")
        values = rates["HighIncome"].tolist()
        assert max(values) - min(values) > 0.25

    def test_housing_ratio_beats_raw(self):
        bundle = load_dataset("housing", n_rows=4000)
        frame = bundle.frame
        ratio = frame["TotalRooms"] / frame["Households"]
        raw = frame["TotalRooms"]
        target = frame["AboveMedianValue"]
        assert abs(ratio.corr(target)) > abs(raw.corr(target)) + 0.1

    def test_west_nile_city_density_signal(self):
        from repro.fm import default_knowledge

        bundle = load_dataset("west_nile", n_rows=4000)
        frame = bundle.frame
        knowledge = default_knowledge()
        density = frame["City"].map(
            lambda c: knowledge.lookup("city_population_density", c)
        )
        y = np.asarray(frame["WnvPresent"].tolist())
        assert np.corrcoef(np.log(density.to_numpy(float)), y)[0, 1] > 0.08

    def test_west_nile_species_rates_spread(self):
        bundle = load_dataset("west_nile", n_rows=4000)
        rates = bundle.frame.groupby("Species")["WnvPresent"].agg("mean")
        values = rates["WnvPresent"].tolist()
        assert max(values) - min(values) > 0.08

    def test_tennis_differential_beats_raw(self):
        bundle = load_dataset("tennis", n_rows=900)
        frame = bundle.frame
        diff = frame["WNR.1"] - frame["UFE.1"]
        target = frame["Result"]
        assert abs(diff.corr(target)) > abs(frame["WNR.1"].corr(target)) + 0.05

    def test_tennis_has_no_categoricals(self):
        bundle = load_dataset("tennis", n_rows=300)
        assert bundle.frame.categorical_columns() == []

    def test_lawschool_lsat_linear_signal(self):
        bundle = load_dataset("lawschool", n_rows=3000)
        assert bundle.frame["LSAT"].corr(bundle.frame["PassedBar"]) > 0.3
