"""Additional efficiency-model tests: the Figure 1 cost mechanics."""

import pytest

from repro.datasets import load_dataset
from repro.eval.efficiency import _row_level_cost
from repro.fm.cost import CostModel


class TestRowLevelCostModel:
    def test_calls_equal_rows(self):
        point = _row_level_cost(1234, record_tokens=50, cost_model=CostModel(model="gpt-4"))
        assert point.n_calls == 1234

    def test_cost_linear_in_rows(self):
        model = CostModel(model="gpt-4")
        small = _row_level_cost(100, 50, model)
        large = _row_level_cost(10_000, 50, model)
        assert large.cost_usd == pytest.approx(100 * small.cost_usd)
        assert large.latency_s == pytest.approx(100 * small.latency_s)

    def test_wider_records_cost_more(self):
        model = CostModel(model="gpt-4")
        narrow = _row_level_cost(1000, record_tokens=20, cost_model=model)
        wide = _row_level_cost(1000, record_tokens=200, cost_model=model)
        assert wide.cost_usd > narrow.cost_usd
        assert wide.tokens > narrow.tokens


class TestProfileIndependence:
    def test_smartfeat_profile_does_not_scale_with_rows(self):
        """The heart of Figure 1: the same dataset at 2× the rows yields an
        identical FM-call count (generation is feature-level)."""
        from repro.eval.efficiency import smartfeat_call_profile

        small = smartfeat_call_profile(load_dataset("housing", n_rows=200), seed=0)
        large = smartfeat_call_profile(load_dataset("housing", n_rows=400), seed=0)
        assert small["n_calls"] == large["n_calls"]

    def test_serial_profile_critical_path_equals_summed(self):
        from repro.eval.efficiency import smartfeat_call_profile

        profile = smartfeat_call_profile(load_dataset("housing", n_rows=200), seed=0)
        assert profile["critical_path_s"] == pytest.approx(
            profile["latency_s"], abs=0.01
        )


class TestConcurrencySpeedup:
    def test_threaded_execution_3x_faster_and_equivalent(self):
        """The concurrent-execution acceptance bar: at concurrency 8 the
        modelled critical path drops >= 3x while the accepted features
        and ledger totals match the serial run exactly."""
        from repro.eval.efficiency import concurrency_speedup_report

        report = concurrency_speedup_report(
            load_dataset("heart", n_rows=300), concurrency=8
        )
        assert report["identical_features"]
        assert report["identical_ledgers"]
        assert report["speedup"] >= 3.0
        assert report["concurrent_critical_path_s"] < report["serial_critical_path_s"]
        assert report["summed_latency_s"] == pytest.approx(
            report["serial_critical_path_s"]
        )
