"""Unit tests for the evaluation harness."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.eval.harness import NonFiniteFeaturesError, evaluate_models, feature_matrix


@pytest.fixture
def frame():
    return DataFrame(
        {
            "num": [1.0, 2.0, 3.0, 4.0] * 25,
            "cat": ["a", "b", "a", "c"] * 25,
            "y": [0, 1, 0, 1] * 25,
        }
    )


class TestFeatureMatrix:
    def test_factorises_categoricals(self, frame):
        X, y, names = feature_matrix(frame, "y")
        assert names == ["num", "cat"]
        assert set(np.unique(X[:, 1])) == {0.0, 1.0, 2.0}

    def test_target_excluded(self, frame):
        _, _, names = feature_matrix(frame, "y")
        assert "y" not in names

    def test_strict_rejects_infinity(self, frame):
        frame["bad"] = [float("inf")] + [0.0] * 99
        with pytest.raises(NonFiniteFeaturesError, match="bad"):
            feature_matrix(frame, "y")

    def test_strict_imputes_nan(self, frame):
        frame["gappy"] = [None, 1.0, 2.0, 3.0] * 25
        X, _, names = feature_matrix(frame, "y")
        column = X[:, names.index("gappy")]
        assert np.isfinite(column).all()
        assert column[0] == 2.0  # median of {1,2,3}

    def test_lenient_masks_everything(self, frame):
        frame["bad"] = [float("inf"), float("nan")] + [0.0] * 98
        X, _, _ = feature_matrix(frame, "y", strict=False)
        assert np.isfinite(X).all()

    def test_no_features_raises(self):
        with pytest.raises(ValueError):
            feature_matrix(DataFrame({"y": [0, 1]}), "y")


class TestEvaluateModels:
    def test_returns_percent_auc_per_model(self, frame):
        out = evaluate_models(frame, "y", models=("lr", "nb"), n_splits=3)
        assert set(out) == {"lr", "nb"}
        for value in out.values():
            assert 0.0 <= value <= 100.0

    def test_strong_signal_high_auc(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 200)
        frame = DataFrame({"x": (y * 3 + rng.normal(0, 0.3, 200)).tolist(), "y": y.tolist()})
        out = evaluate_models(frame, "y", models=("lr",), n_splits=3)
        assert out["lr"] > 95.0
