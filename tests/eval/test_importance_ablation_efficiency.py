"""Tests for the Table 6 / Table 7 / Figure 1 machinery."""

import pytest

from repro.datasets import load_dataset
from repro.eval.ablation import operator_ablation
from repro.eval.efficiency import interaction_cost_comparison, smartfeat_call_profile
from repro.eval.importance import importance_table, top_k_new_fraction


@pytest.fixture(scope="module")
def tennis():
    return load_dataset("tennis", n_rows=350)


class TestImportance:
    def test_fraction_bounds(self, tennis):
        from repro.core import SmartFeat
        from repro.fm import SimulatedFM

        result = SmartFeat(fm=SimulatedFM(seed=0), downstream_model="rf").fit_transform(
            tennis.frame,
            target=tennis.target,
            descriptions=tennis.descriptions,
            title=tennis.title,
        )
        ig, rfe, fi = top_k_new_fraction(
            result.frame, tennis.target, result.new_columns, k=10
        )
        for value in (ig, rfe, fi):
            assert 0.0 <= value <= 1.0

    def test_no_new_features_zero_fraction(self, tennis):
        ig, rfe, fi = top_k_new_fraction(tennis.frame, tennis.target, [], k=10)
        assert (ig, rfe, fi) == (0.0, 0.0, 0.0)

    def test_table_rows_for_two_methods(self, tennis):
        rows = importance_table(tennis, methods=("smartfeat", "featuretools"), k=10)
        by_method = {row.method: row for row in rows}
        assert by_method["featuretools"].n_generated > by_method["smartfeat"].n_generated
        assert by_method["smartfeat"].ig_at_k >= 0.0

    def test_unknown_method_raises(self, tennis):
        with pytest.raises(ValueError):
            importance_table(tennis, methods=("mystery",))


class TestAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        bundle = load_dataset("tennis", n_rows=350)
        return operator_ablation(bundle, models=("nb", "rf"), n_splits=3)

    def test_six_rows_in_paper_order(self, rows):
        assert [r.label for r in rows] == [
            "Initial", "+Unary", "+Binary", "+High-order", "+Extractor", "all",
        ]

    def test_initial_has_no_new_features(self, rows):
        assert rows[0].n_new_features == 0

    def test_high_order_empty_on_tennis(self, rows):
        # No categorical columns -> nothing to group by (Table 7's flat row).
        high_order = next(r for r in rows if r.label == "+High-order")
        assert high_order.n_new_features == 0

    def test_binary_beats_initial_for_nb(self, rows):
        initial = next(r for r in rows if r.label == "Initial")
        binary = next(r for r in rows if r.label == "+Binary")
        assert binary.auc_by_model["nb"] > initial.auc_by_model["nb"]

    def test_average_property(self, rows):
        row = rows[0]
        assert row.average == pytest.approx(
            sum(row.auc_by_model.values()) / len(row.auc_by_model)
        )


class TestEfficiency:
    def test_row_level_scales_with_rows(self, tennis):
        points = interaction_cost_comparison(tennis, row_counts=(100, 10_000))
        row_level = {p.n_rows: p for p in points if p.style == "row_level"}
        assert row_level[10_000].n_calls == 100 * row_level[100].n_calls
        assert row_level[10_000].cost_usd > 50 * row_level[100].cost_usd

    def test_feature_level_flat_in_rows(self, tennis):
        points = interaction_cost_comparison(tennis, row_counts=(100, 10_000))
        feature_level = [p for p in points if p.style == "feature_level"]
        assert feature_level[0].n_calls == feature_level[1].n_calls
        assert feature_level[0].cost_usd == feature_level[1].cost_usd

    def test_feature_level_cheaper_at_scale(self, tennis):
        points = interaction_cost_comparison(tennis, row_counts=(100_000,))
        by_style = {p.style: p for p in points}
        assert by_style["feature_level"].cost_usd < by_style["row_level"].cost_usd / 100

    def test_call_profile_positive(self, tennis):
        profile = smartfeat_call_profile(tennis)
        assert profile["n_calls"] > 0
        assert profile["cost_usd"] > 0
