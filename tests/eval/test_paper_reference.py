"""Tests for the paper-reference comparison machinery."""

import pytest

from repro.eval.paper_reference import (
    PAPER_TABLE4_AVG,
    PAPER_TABLE5_MEDIAN,
    PAPER_TABLE6_TENNIS,
    PAPER_TABLE7_TENNIS,
    delta_sign_agreement,
    render_paper_comparison,
)
from repro.eval.runner import MethodOutcome, SweepConfig, SweepResult


def _fake_sweep(smartfeat_delta: float) -> SweepResult:
    config = SweepConfig(datasets=("adult",), methods=("initial", "smartfeat"), models=("lr",))
    result = SweepResult(config=config)
    result.outcomes[("adult", "initial")] = MethodOutcome(
        dataset="adult", method="initial", auc_by_model={"lr": 76.81}
    )
    result.outcomes[("adult", "smartfeat")] = MethodOutcome(
        dataset="adult",
        method="smartfeat",
        auc_by_model={"lr": 76.81 * (1 + smartfeat_delta / 100)},
    )
    return result


class TestPaperNumbers:
    def test_tables_cover_all_methods_and_datasets(self):
        for table in (PAPER_TABLE4_AVG, PAPER_TABLE5_MEDIAN):
            assert set(table) == {"initial", "smartfeat", "caafe", "featuretools", "autofeat"}
            for row in table.values():
                assert len(row) == 8

    def test_known_failures_are_none(self):
        assert PAPER_TABLE4_AVG["caafe"]["diabetes"] is None
        assert PAPER_TABLE4_AVG["autofeat"]["bank"] is None
        assert PAPER_TABLE4_AVG["autofeat"]["adult"] is None

    def test_headline_numbers(self):
        assert PAPER_TABLE4_AVG["smartfeat"]["adult"] == 87.00
        assert PAPER_TABLE4_AVG["initial"]["adult"] == 76.81
        assert PAPER_TABLE7_TENNIS["+Extractor"]["nb"] == 90.00
        assert PAPER_TABLE6_TENNIS["autofeat"][0] == 1978


class TestAgreement:
    def test_matching_sign_counts(self):
        # Paper's adult smartfeat delta is +13.3%; ours +10% agrees.
        agreeing, comparable = delta_sign_agreement(_fake_sweep(+10.0))
        assert (agreeing, comparable) == (1, 1)

    def test_opposite_sign_disagrees(self):
        agreeing, comparable = delta_sign_agreement(_fake_sweep(-10.0))
        assert (agreeing, comparable) == (0, 1)

    def test_flat_agrees_with_flat(self):
        config = SweepConfig(datasets=("bank",), methods=("initial", "smartfeat"), models=("lr",))
        result = SweepResult(config=config)
        result.outcomes[("bank", "initial")] = MethodOutcome(
            dataset="bank", method="initial", auc_by_model={"lr": 91.46}
        )
        result.outcomes[("bank", "smartfeat")] = MethodOutcome(
            dataset="bank", method="smartfeat", auc_by_model={"lr": 91.20}
        )
        # Paper bank smartfeat delta ≈ 0; ours −0.3% — both flat -> agree.
        agreeing, comparable = delta_sign_agreement(result)
        assert (agreeing, comparable) == (1, 1)

    def test_failures_excluded(self):
        config = SweepConfig(datasets=("diabetes",), methods=("initial", "caafe"), models=("lr",))
        result = SweepResult(config=config)
        result.outcomes[("diabetes", "initial")] = MethodOutcome(
            dataset="diabetes", method="initial", auc_by_model={"lr": 80.0}
        )
        result.outcomes[("diabetes", "caafe")] = MethodOutcome(
            dataset="diabetes", method="caafe", status="failed"
        )
        # The paper cell is "-" too, so nothing is comparable.
        assert delta_sign_agreement(result) == (0, 0)


class TestRendering:
    def test_comparison_table_renders(self):
        text = render_paper_comparison(_fake_sweep(+10.0))
        assert "paper | ours" in text
        assert "+13.3 | +10.0" in text
        assert "Delta sign agreement: 1/1" in text
