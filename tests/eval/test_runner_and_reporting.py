"""Integration tests for the sweep runner and the table renderers."""

import pytest

from repro.eval import SweepConfig, render_auc_table, run_sweep
from repro.eval.runner import MethodOutcome, SweepResult


@pytest.fixture(scope="module")
def small_sweep():
    config = SweepConfig(
        datasets=("tennis",),
        methods=("initial", "smartfeat", "featuretools"),
        models=("lr", "nb"),
        n_rows=350,
        n_splits=3,
        time_limit_s=None,
    )
    return run_sweep(config)


class TestRunSweep:
    def test_all_cells_present(self, small_sweep):
        assert set(small_sweep.outcomes) == {
            ("tennis", "initial"),
            ("tennis", "smartfeat"),
            ("tennis", "featuretools"),
        }

    def test_initial_has_auc_for_every_model(self, small_sweep):
        outcome = small_sweep.get("tennis", "initial")
        assert set(outcome.auc_by_model) == {"lr", "nb"}
        assert outcome.status == "ok"

    def test_smartfeat_generates_features(self, small_sweep):
        outcome = small_sweep.get("tennis", "smartfeat")
        assert outcome.n_generated > 0
        assert outcome.fm_calls > 0
        assert outcome.fm_cost_usd > 0

    def test_average_and_median_consistent(self, small_sweep):
        outcome = small_sweep.get("tennis", "initial")
        values = sorted(outcome.auc_by_model.values())
        assert outcome.average_auc == pytest.approx(sum(values) / len(values))
        assert outcome.median_auc == pytest.approx((values[0] + values[1]) / 2)

    def test_modelled_time_extrapolates(self, small_sweep):
        outcome = small_sweep.get("tennis", "featuretools")
        assert outcome.modelled_s >= outcome.wall_s

    def test_tiny_time_limit_records_dnf(self):
        config = SweepConfig(
            datasets=("tennis",),
            methods=("autofeat",),
            models=("lr",),
            n_rows=300,
            n_splits=3,
            time_limit_s=0.001,
        )
        result = run_sweep(config)
        assert result.get("tennis", "autofeat").status == "dnf"

    def test_unknown_method_raises(self):
        config = SweepConfig(
            datasets=("tennis",), methods=("quantum",), models=("lr",), n_rows=300,
            time_limit_s=None,
        )
        with pytest.raises(ValueError):
            run_sweep(config)


class TestRendering:
    def test_table_shape(self, small_sweep):
        text = render_auc_table(small_sweep, "average")
        lines = text.splitlines()
        assert lines[0].startswith("Method")
        assert "tennis" in lines[0]
        assert lines[2].startswith("Initial AUC")
        assert any(line.startswith("smartfeat") for line in lines)

    def test_median_table(self, small_sweep):
        assert "Initial AUC" in render_auc_table(small_sweep, "median")

    def test_bad_aggregate_raises(self, small_sweep):
        with pytest.raises(ValueError):
            render_auc_table(small_sweep, "mode")

    def test_failed_renders_dash(self):
        config = SweepConfig(datasets=("d",), methods=("initial", "caafe"), models=("lr",))
        result = SweepResult(config=config)
        result.outcomes[("d", "initial")] = MethodOutcome(
            dataset="d", method="initial", auc_by_model={"lr": 80.0}
        )
        result.outcomes[("d", "caafe")] = MethodOutcome(
            dataset="d", method="caafe", status="failed"
        )
        text = render_auc_table(result)
        caafe_line = next(line for line in text.splitlines() if line.startswith("caafe"))
        assert "-" in caafe_line

    def test_dnf_renders_dnf(self):
        config = SweepConfig(datasets=("d",), methods=("initial", "autofeat"), models=("lr",))
        result = SweepResult(config=config)
        result.outcomes[("d", "initial")] = MethodOutcome(
            dataset="d", method="initial", auc_by_model={"lr": 80.0}
        )
        result.outcomes[("d", "autofeat")] = MethodOutcome(
            dataset="d", method="autofeat", status="dnf"
        )
        assert "DNF" in render_auc_table(result)
