"""The parallel sweep engine: serial/parallel equality, per-cell fault
isolation, and budget degradation.

The contract: cells are independent jobs, so a thread-pool sweep must
reproduce the serial sweep cell for cell (statuses, AUCs, ledger
totals — timing fields excepted, since they measure real wall clock),
one crashing method must cost exactly its own cells, and an exhausted FM
budget must cost exactly the offending cell.
"""

import pytest

import repro.eval.runner as runner_module
from repro.eval import (
    SerialSweepExecutor,
    SweepConfig,
    ThreadPoolSweepExecutor,
    render_auc_table,
    render_sweep_summary,
    run_sweep,
)

ALL_METHODS = ("initial", "smartfeat", "caafe", "featuretools", "autofeat")


def outcome_fingerprint(result):
    """Everything that must match across backends (no timing fields)."""
    return {
        cell: (
            outcome.status,
            dict(outcome.model_status),
            {model: round(auc, 9) for model, auc in outcome.auc_by_model.items()},
            outcome.n_generated,
            outcome.n_selected,
            outcome.fm_calls,
            round(outcome.fm_cost_usd, 9),
            outcome.detail,
        )
        for cell, outcome in result.outcomes.items()
    }


@pytest.fixture(scope="module")
def matrix_config():
    return SweepConfig(
        datasets=("tennis", "heart"),
        methods=ALL_METHODS,
        models=("lr", "nb"),
        n_rows=180,
        n_splits=3,
        time_limit_s=None,  # measured-time DNFs would be scheduler noise
    )


@pytest.fixture(scope="module")
def serial_and_parallel(matrix_config):
    serial = run_sweep(matrix_config)
    parallel = run_sweep(matrix_config, sweep_concurrency=4)
    return serial, parallel


class TestSerialParallelEquality:
    def test_full_matrix_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert outcome_fingerprint(serial) == outcome_fingerprint(parallel)

    def test_cells_assembled_in_config_order(self, serial_and_parallel, matrix_config):
        serial, parallel = serial_and_parallel
        expected = [
            (dataset, method)
            for dataset in matrix_config.datasets
            for method in matrix_config.methods
        ]
        assert list(serial.outcomes) == expected
        assert list(parallel.outcomes) == expected

    def test_no_cell_crashed_or_tripped_budget(self, serial_and_parallel):
        """Without a budget configured, only the paper's own outcome
        vocabulary appears (CAAFE's divide-by-zero on small samples is a
        legitimate ``partial``, not an engine failure)."""
        _, parallel = serial_and_parallel
        statuses = set(parallel.status_counts())
        assert statuses <= {"ok", "partial"}
        assert parallel.status_counts().get("ok", 0) >= len(parallel.outcomes) - 1

    def test_progress_lines_identical_as_sets(self, matrix_config):
        serial_lines, parallel_lines = [], []
        run_sweep(matrix_config, progress=serial_lines.append)
        run_sweep(matrix_config, progress=parallel_lines.append, sweep_concurrency=3)
        assert sorted(serial_lines) == sorted(parallel_lines)

    def test_injected_executor_is_used_and_not_closed(self, matrix_config):
        class CountingExecutor(SerialSweepExecutor):
            def __init__(self):
                self.jobs = 0
                self.closed = False

            def map(self, fn, items):
                self.jobs += len(items)
                return super().map(fn, items)

            def close(self):
                self.closed = True

        executor = CountingExecutor()
        result = run_sweep(matrix_config, sweep_executor=executor)
        assert executor.jobs == len(result.outcomes)
        assert not executor.closed  # caller keeps ownership

    def test_injected_executor_concurrency_reflected_in_result(self):
        config = SweepConfig(
            datasets=("tennis",),
            methods=("initial", "featuretools"),
            models=("lr",),
            n_rows=150,
            time_limit_s=None,
        )
        with ThreadPoolSweepExecutor(5) as executor:
            result = run_sweep(config, sweep_executor=executor)
        # modelled_wall_s / the summary must describe the backend that ran.
        assert result.config.sweep_concurrency == 5


class TestFaultIsolation:
    def test_one_crashing_method_costs_only_its_cells(
        self, matrix_config, monkeypatch, serial_and_parallel
    ):
        baseline, _ = serial_and_parallel

        def boom(self, frame, target, deadline=None):
            raise RuntimeError("featuretools exploded")

        monkeypatch.setattr(runner_module.FeaturetoolsDFS, "fit_transform", boom)
        result = run_sweep(matrix_config, sweep_concurrency=4)
        for (dataset, method), outcome in result.outcomes.items():
            if method == "featuretools":
                assert outcome.status == "error"
                assert "RuntimeError: featuretools exploded" in outcome.detail
                assert outcome.auc_by_model == {}
            else:
                # Every other cell is exactly what the healthy sweep produced.
                reference = baseline.get(dataset, method)
                assert outcome.status == reference.status, (dataset, method, outcome.detail)
                assert outcome.auc_by_model == reference.auc_by_model

    def test_crash_parity_between_backends(self, matrix_config, monkeypatch):
        def boom(self, frame, target, deadline=None):
            raise ValueError("autofeat exploded")

        monkeypatch.setattr(runner_module.AutoFeatLike, "fit_transform", boom)
        serial = run_sweep(matrix_config)
        parallel = run_sweep(matrix_config, sweep_concurrency=4)
        assert outcome_fingerprint(serial) == outcome_fingerprint(parallel)
        assert serial.status_counts()["error"] == len(matrix_config.datasets)

    def test_error_cells_render_err(self, matrix_config, monkeypatch):
        def boom(self, frame, target, deadline=None):
            raise RuntimeError("nope")

        monkeypatch.setattr(runner_module.FeaturetoolsDFS, "fit_transform", boom)
        result = run_sweep(matrix_config)
        table = render_auc_table(result)
        featuretools_row = next(
            line for line in table.splitlines() if line.startswith("featuretools")
        )
        assert "ERR" in featuretools_row


class TestBudgetDegradation:
    @pytest.fixture(scope="class")
    def budget_result(self):
        config = SweepConfig(
            datasets=("tennis",),
            methods=ALL_METHODS,
            models=("lr", "nb"),
            n_rows=180,
            time_limit_s=None,
            max_fm_calls=5,  # tight: any FM-driven method blows through it
        )
        return run_sweep(config)

    def test_only_fm_methods_degrade(self, budget_result):
        by_method = {method: o for (_, method), o in budget_result.outcomes.items()}
        assert by_method["smartfeat"].status == "budget"
        assert by_method["caafe"].status == "budget"
        # FM-free cells are untouched by an FM budget.
        assert by_method["initial"].status == "ok"
        assert by_method["featuretools"].status == "ok"
        assert by_method["autofeat"].status == "ok"

    def test_budget_detail_names_the_axis(self, budget_result):
        outcome = budget_result.get("tennis", "smartfeat")
        assert "FM budget exceeded on calls" in outcome.detail
        assert set(outcome.model_status.values()) == {"budget"}

    def test_budget_is_per_cell_not_per_sweep(self, budget_result):
        """Each cell gets a fresh budget: smartfeat exhausting its own
        does not starve caafe's."""
        smartfeat = budget_result.get("tennis", "smartfeat")
        caafe = budget_result.get("tennis", "caafe")
        # Both spent against their own meter (> 0 each), proving caafe
        # was not pre-exhausted by smartfeat's overrun.
        assert smartfeat.fm_calls > 0
        assert caafe.fm_calls > 0
        assert caafe.status == "budget"

    def test_budget_cells_report_their_real_spend(self, budget_result):
        """A tripped cell's accounting comes from the budget meter: the
        spend that crossed the line is reported, not silently zeroed."""
        outcome = budget_result.get("tennis", "smartfeat")
        assert outcome.fm_calls > 5  # the crossing batch is counted too
        assert outcome.fm_cost_usd > 0
        assert budget_result.total_fm_calls >= outcome.fm_calls

    def test_budget_parity_between_backends(self):
        config = SweepConfig(
            datasets=("tennis",),
            methods=("initial", "smartfeat", "featuretools"),
            models=("lr",),
            n_rows=180,
            time_limit_s=None,
            max_fm_calls=5,
        )
        serial = run_sweep(config)
        parallel = run_sweep(config, sweep_concurrency=3)
        assert outcome_fingerprint(serial) == outcome_fingerprint(parallel)

    def test_generous_budget_is_invisible(self):
        base = SweepConfig(
            datasets=("tennis",),
            methods=("initial", "smartfeat"),
            models=("lr",),
            n_rows=180,
            time_limit_s=None,
        )
        unbudgeted = run_sweep(base)
        budgeted = run_sweep(
            SweepConfig(
                **{**base.__dict__, "max_fm_calls": 10**9, "max_cost_usd": 1e9}
            )
        )
        assert outcome_fingerprint(unbudgeted) == outcome_fingerprint(budgeted)

    def test_budget_cells_render_budget(self, budget_result):
        table = render_auc_table(budget_result)
        smartfeat_row = next(
            line for line in table.splitlines() if line.startswith("smartfeat")
        )
        assert "BUDGET" in smartfeat_row
        summary = render_sweep_summary(budget_result)
        assert "2 budget" in summary


class TestSweepAccounting:
    def test_modelled_serial_is_cell_sum(self, serial_and_parallel):
        serial, _ = serial_and_parallel
        assert serial.modelled_serial_s == pytest.approx(
            sum(o.modelled_s for o in serial.outcomes.values())
        )

    def test_modelled_wall_bounded_by_sum_and_max(self, serial_and_parallel):
        serial, _ = serial_and_parallel
        longest = max(o.modelled_s for o in serial.outcomes.values())
        for concurrency in (2, 4, 8):
            makespan = serial.modelled_wall_s(concurrency)
            assert longest <= makespan <= serial.modelled_serial_s + 1e-9

    def test_sweep_wall_recorded(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert serial.wall_s > 0
        assert parallel.wall_s > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            run_sweep(SweepConfig(datasets=("tennis",), sweep_concurrency=0))

    def test_concurrency_and_executor_conflict_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            run_sweep(
                SweepConfig(datasets=("tennis",)),
                sweep_concurrency=8,
                sweep_executor=SerialSweepExecutor(),
            )

    def test_thread_pool_executor_validation_and_order(self):
        with pytest.raises(ValueError):
            ThreadPoolSweepExecutor(0)
        with ThreadPoolSweepExecutor(3) as executor:
            assert executor.map(lambda x: x * x, list(range(20))) == [
                x * x for x in range(20)
            ]
