"""AIMD adaptive concurrency: controller math, gates, executor wiring.

The controller must be a pure function of the observed event sequence
(never wall-clock), collapse multiplicatively on 429/5xx, recover
additively on success, and drive both the thread gate and the async
gate's admission decisions.  The executor integration tests prove the
feedback loop end to end: a rate-limit storm through a transport client
shrinks the limit; clean traffic restores it.
"""

import threading
import time

import pytest

from repro.fm import (
    AIMDController,
    AsyncFMExecutor,
    ConcurrencyGate,
    FMRequest,
    RetryPolicy,
    SerialExecutor,
    SimulatedFM,
    SimulatedHTTPTransport,
    ThreadPoolFMExecutor,
    TransportFMClient,
)
from repro.fm.adaptive import is_backpressure
from repro.fm.errors import (
    FMConnectionError,
    FMRateLimitError,
    FMServerError,
    FMTimeoutError,
)


# ----------------------------------------------------------------------
# Backpressure classification
# ----------------------------------------------------------------------
def test_backpressure_is_429_and_5xx_only():
    assert is_backpressure(FMRateLimitError("429"))
    assert is_backpressure(FMServerError("503"))
    # Timeouts and resets are a network-path signal, not load shedding.
    assert not is_backpressure(FMTimeoutError("deadline"))
    assert not is_backpressure(FMConnectionError("reset"))
    assert not is_backpressure(ValueError("unrelated"))


# ----------------------------------------------------------------------
# Controller math
# ----------------------------------------------------------------------
def test_controller_starts_at_ceiling():
    controller = AIMDController(ceiling=8)
    assert controller.limit == 8


def test_multiplicative_decrease_halves():
    controller = AIMDController(ceiling=16)
    controller.on_backpressure()
    assert controller.limit == 8
    controller.on_backpressure()
    assert controller.limit == 4


def test_limit_never_drops_below_floor():
    controller = AIMDController(ceiling=8, floor=2)
    for _ in range(20):
        controller.on_backpressure()
    assert controller.limit == 2


def test_additive_increase_recovers_about_one_per_window():
    controller = AIMDController(ceiling=8, start=4)
    # Each success adds increase/limit, so a bit over one window of
    # successes at limit≈4 raises the integer limit by one.
    for _ in range(5):
        controller.on_success()
    assert controller.limit == 5


def test_limit_never_exceeds_ceiling():
    controller = AIMDController(ceiling=4)
    for _ in range(100):
        controller.on_success()
    assert controller.limit == 4


def test_observe_routes_outcomes():
    controller = AIMDController(ceiling=8)
    controller.observe(FMRateLimitError("429"))
    assert controller.limit == 4
    assert controller.n_backpressure == 1
    controller.observe(None)
    assert controller.n_successes == 1
    # Non-backpressure errors leave the limit untouched.
    controller.observe(FMTimeoutError("deadline"))
    assert controller.n_backpressure == 1


def test_deterministic_for_a_fixed_event_sequence():
    events = [None, None, FMRateLimitError("429"), None, FMServerError("503"), None]

    def drive() -> list[int]:
        controller = AIMDController(ceiling=8)
        trace = []
        for event in events:
            controller.observe(event)
            trace.append(controller.limit)
        return trace

    assert drive() == drive()


def test_controller_validation():
    with pytest.raises(ValueError):
        AIMDController(ceiling=4, floor=0)
    with pytest.raises(ValueError):
        AIMDController(ceiling=1, floor=2)
    with pytest.raises(ValueError):
        AIMDController(ceiling=4, decrease=1.0)
    with pytest.raises(ValueError):
        AIMDController(ceiling=4, increase=0.0)


def test_snapshot_reports_state():
    controller = AIMDController(ceiling=8)
    controller.on_backpressure()
    controller.on_success()
    snap = controller.snapshot()
    assert snap["ceiling"] == 8
    assert snap["n_backpressure"] == 1
    assert snap["n_successes"] == 1
    assert snap["limit"] == max(snap["floor"], int(snap["limit_raw"]))


# ----------------------------------------------------------------------
# Thread gate
# ----------------------------------------------------------------------
def test_gate_admits_up_to_limit_then_blocks():
    controller = AIMDController(ceiling=2)
    gate = ConcurrencyGate(controller)
    gate.acquire()
    gate.acquire()
    assert gate.active == 2
    blocked = threading.Event()
    entered = threading.Event()

    def third():
        blocked.set()
        gate.acquire()
        entered.set()

    thread = threading.Thread(target=third, daemon=True)
    thread.start()
    blocked.wait(timeout=2.0)
    time.sleep(0.02)
    assert not entered.is_set()
    gate.release()
    assert entered.wait(timeout=2.0)
    gate.release()
    gate.release()
    thread.join(timeout=2.0)


def test_gate_rereads_limit_after_decrease():
    controller = AIMDController(ceiling=4)
    gate = ConcurrencyGate(controller)
    gate.acquire()
    gate.acquire()
    controller.on_backpressure()  # limit 4 -> 2: gate is now full
    assert controller.limit == 2
    admitted = threading.Event()

    def extra():
        gate.acquire()
        admitted.set()

    thread = threading.Thread(target=extra, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not admitted.is_set()
    # One running call draining frees a slot under the collapsed limit.
    gate.release()
    assert admitted.wait(timeout=2.0)
    gate.release()
    gate.release()
    thread.join(timeout=2.0)


def test_gate_wakes_waiters_when_limit_rises():
    controller = AIMDController(ceiling=4, start=1)
    gate = ConcurrencyGate(controller)
    gate.acquire()
    admitted = threading.Event()

    def waiter():
        gate.acquire()
        admitted.set()

    thread = threading.Thread(target=waiter, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not admitted.is_set()
    # A window of successes raises the integer limit; the subscription
    # notifies the gate, which must wake the blocked waiter.
    for _ in range(2):
        controller.on_success()
    assert admitted.wait(timeout=2.0)
    gate.release()
    gate.release()
    thread.join(timeout=2.0)


# ----------------------------------------------------------------------
# Executor wiring
# ----------------------------------------------------------------------
def _storm_client(seed: int = 3) -> TransportFMClient:
    return TransportFMClient(
        SimulatedHTTPTransport(
            rate_limit_rate=0.5, retry_after_s=0.0, sleep=False, seed=seed
        )
    )


def _clean_client(seed: int = 3) -> TransportFMClient:
    return TransportFMClient(SimulatedHTTPTransport(sleep=False, seed=seed))


RETRY = RetryPolicy(max_attempts=6, backoff_s=0.0)


@pytest.mark.parametrize(
    "make_executor",
    [
        # Serial concurrency is 1, so it shares an explicitly sized
        # controller; thread/async build one from their own concurrency.
        lambda: SerialExecutor(retry=RETRY, adaptive=AIMDController(ceiling=8)),
        lambda: ThreadPoolFMExecutor(4, retry=RETRY, adaptive=True),
        lambda: AsyncFMExecutor(4, retry=RETRY, adaptive=True),
    ],
    ids=["serial", "thread", "async"],
)
def test_storm_shrinks_limit_clean_traffic_recovers(make_executor):
    executor = make_executor()
    try:
        assert executor.adaptive is not None
        ceiling = executor.adaptive.ceiling
        requests = [FMRequest(f"p{i}") for i in range(24)]
        executor.run(_storm_client(), requests)
        after_storm = executor.adaptive.limit
        assert executor.adaptive.n_backpressure > 0
        assert after_storm < ceiling
        executor.run(_clean_client(), [FMRequest(f"q{i}") for i in range(64)])
        assert executor.adaptive.limit > after_storm
    finally:
        close = getattr(executor, "close", None)
        if close:
            close()


def test_adaptive_true_builds_controller_bounded_by_concurrency():
    with ThreadPoolFMExecutor(6, adaptive=True) as executor:
        assert isinstance(executor.adaptive, AIMDController)
        assert executor.adaptive.ceiling == 6


def test_shared_controller_across_executors():
    controller = AIMDController(ceiling=8)
    serial = SerialExecutor(retry=RETRY, adaptive=controller)
    with ThreadPoolFMExecutor(4, retry=RETRY, adaptive=controller) as pool:
        serial.run(_storm_client(), [FMRequest(f"p{i}") for i in range(12)])
        shrunk = controller.limit
        assert shrunk < 8
        # The pool reads the same collapsed limit and its clean traffic
        # recovers it for both parties.
        pool.run(_clean_client(), [FMRequest(f"q{i}") for i in range(64)])
        assert controller.limit > shrunk


def test_adaptive_does_not_perturb_seeded_results():
    def run(adaptive):
        fm = SimulatedFM(seed=11)
        with ThreadPoolFMExecutor(4, adaptive=adaptive) as executor:
            results = executor.run(
                fm, [FMRequest(f"Propose a feature {i}", 0.7) for i in range(10)]
            )
            return [r.unwrap().text for r in results], fm.ledger.snapshot()

    assert run(None) == run(True)


def test_policy_snapshot_exposes_adaptive_state():
    executor = SerialExecutor(retry=RETRY, adaptive=True)
    executor.run(_storm_client(), [FMRequest("p")])
    snap = executor.policy_snapshot()
    assert snap["adaptive"] is not None
    assert snap["adaptive"]["ceiling"] == 1
    assert snap["hedge"] is None
