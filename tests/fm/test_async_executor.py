"""Event-loop hygiene for :class:`AsyncFMExecutor`.

The async backend owns its event loop, so its lifecycle is its problem:
these tests pin that it shuts down cleanly under pytest (no leaked
threads, tasks, or loops), works when the calling thread already has a
running loop, survives reuse after close, and that cancelling a run
mid-flight (closing the executor under a blocked ``fit_transform``)
leaves no orphaned in-flight requests behind.
"""

import asyncio
import threading
import time

import pytest

from repro.core import SmartFeat
from repro.dataframe import DataFrame
from repro.fm import (
    AsyncFMExecutor,
    FMError,
    FMRequest,
    ScriptedFM,
    SimulatedFM,
    Transport,
    TransportFMClient,
    TransportRequest,
    TransportResponse,
)

LOOP_THREAD_NAME = "fm-async-executor"


def _loop_threads() -> list[threading.Thread]:
    return [
        thread
        for thread in threading.enumerate()
        if thread.name.startswith(LOOP_THREAD_NAME)
    ]


class TestLifecycle:
    def test_no_thread_until_first_batch(self):
        executor = AsyncFMExecutor(2)
        assert not _loop_threads()
        executor.run(SimulatedFM(seed=0), [FMRequest("p")])
        assert len(_loop_threads()) == 1
        executor.close()
        assert not _loop_threads()

    def test_close_is_idempotent_and_safe_before_use(self):
        executor = AsyncFMExecutor(2)
        executor.close()
        executor.close()
        with AsyncFMExecutor(2) as scoped:
            scoped.run(SimulatedFM(seed=0), [FMRequest("p")])
        scoped.close()
        assert not _loop_threads()

    def test_reusable_after_close(self):
        fm = ScriptedFM([f"r{i}" for i in range(4)])
        executor = AsyncFMExecutor(2)
        first = executor.run(fm, [FMRequest("a"), FMRequest("b")])
        executor.close()
        second = executor.run(fm, [FMRequest("c"), FMRequest("d")])
        executor.close()
        assert [r.response.text for r in first + second] == ["r0", "r1", "r2", "r3"]
        assert not _loop_threads()

    def test_results_preserve_request_order(self):
        fm = ScriptedFM([f"r{i}" for i in range(8)])
        with AsyncFMExecutor(4) as executor:
            results = executor.run(fm, [FMRequest(f"p{i}") for i in range(8)])
        assert [r.response.text for r in results] == [f"r{i}" for i in range(8)]
        assert executor.stats.n_calls == 8
        assert executor.stats.n_batches == 1

    def test_concurrency_validated(self):
        with pytest.raises(ValueError):
            AsyncFMExecutor(0)


class TestRunningLoopInterop:
    def test_run_works_inside_a_running_event_loop(self):
        """Calling run() from a coroutine must not collide with the
        caller's loop — the executor dispatches on its own loop.  (The
        call still blocks the calling coroutine, like any sync call.)"""
        fm = SimulatedFM(seed=0)

        async def driver():
            with AsyncFMExecutor(2) as executor:
                return executor.run(fm, [FMRequest("p0"), FMRequest("p1")])

        results = asyncio.run(driver())
        assert all(r.ok for r in results)
        assert not _loop_threads()

    def test_two_threads_share_one_executor(self):
        """Concurrent run() calls from different threads share the loop
        and the in-flight bound; results stay per-batch coherent."""
        executor = AsyncFMExecutor(4)
        fm = SimulatedFM(seed=0)
        outcomes: dict[str, list] = {}

        def batch(name: str) -> None:
            outcomes[name] = executor.run(
                fm, [FMRequest(f"{name}-{i}") for i in range(6)]
            )

        threads = [threading.Thread(target=batch, args=(n,)) for n in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        executor.close()
        assert all(r.ok for r in outcomes["a"] + outcomes["b"])
        assert [r.request.prompt for r in outcomes["a"]] == [
            f"a-{i}" for i in range(6)
        ]
        assert executor.stats.n_calls == 12
        assert not _loop_threads()


class BlockingTransport(Transport):
    """asend blocks on an event that is never set; send answers fast.

    ``started`` fires once the first request is in flight, so tests can
    close the executor at a known-bad moment.
    """

    def __init__(self) -> None:
        self.started = threading.Event()
        self.n_in_flight = 0
        self._lock = threading.Lock()

    def send(self, request: TransportRequest) -> TransportResponse:
        return TransportResponse(status=200, text="sync ok")

    async def asend(self, request: TransportRequest) -> TransportResponse:
        with self._lock:
            self.n_in_flight += 1
        self.started.set()
        try:
            await asyncio.Event().wait()  # blocks until cancelled
            raise AssertionError("unreachable")
        finally:
            with self._lock:
                self.n_in_flight -= 1


class TestCancellation:
    def test_close_cancels_in_flight_requests(self):
        transport = BlockingTransport()
        client = TransportFMClient(transport)
        executor = AsyncFMExecutor(4)
        error: list[BaseException] = []

        def blocked_run() -> None:
            try:
                executor.run(client, [FMRequest(f"p{i}") for i in range(3)])
            except BaseException as exc:  # noqa: BLE001 - asserted below
                error.append(exc)

        worker = threading.Thread(target=blocked_run)
        worker.start()
        assert transport.started.wait(timeout=10)
        executor.close()
        worker.join(timeout=10)
        assert not worker.is_alive()
        assert error and isinstance(error[0], FMError)
        # No orphans: every in-flight request was cancelled and unwound
        # (the finally ran), the loop thread is gone, the loop is closed.
        assert transport.n_in_flight == 0
        assert not _loop_threads()
        assert client.ledger.n_calls == 0  # nothing half-recorded

    def test_cancelled_fit_transform_leaves_no_orphans(self):
        """Closing the executor under a blocked fit_transform surfaces a
        clean error on the pipeline thread and strands nothing."""
        transport = BlockingTransport()
        frame = DataFrame(
            {
                "Age": [21, 35, 42, 22] * 4,
                "Income": [10.0, 25.0, 18.5, 40.0] * 4,
                "Target": [0, 1, 1, 0] * 4,
            }
        )
        executor = AsyncFMExecutor(4)
        tool = SmartFeat(
            fm=TransportFMClient(transport),
            function_fm=TransportFMClient(BlockingTransport()),
            executor=executor,
        )
        error: list[BaseException] = []

        def run_pipeline() -> None:
            try:
                tool.fit_transform(frame, target="Target")
            except BaseException as exc:  # noqa: BLE001 - asserted below
                error.append(exc)

        worker = threading.Thread(target=run_pipeline)
        worker.start()
        assert transport.started.wait(timeout=10)
        time.sleep(0.05)  # let the batch get fully in flight
        executor.close()
        worker.join(timeout=10)
        assert not worker.is_alive()
        assert error and isinstance(error[0], FMError)
        assert transport.n_in_flight == 0
        assert not _loop_threads()

    def test_no_tasks_survive_a_normal_batch(self):
        executor = AsyncFMExecutor(4)
        executor.run(SimulatedFM(seed=0), [FMRequest(f"p{i}") for i in range(5)])
        loop, _ = executor._ensure_loop()
        tasks = asyncio.run_coroutine_threadsafe(
            _snapshot_tasks(), loop
        ).result(timeout=10)
        executor.close()
        # Only the snapshot helper itself may be visible.
        assert tasks <= 1
        assert not _loop_threads()


async def _snapshot_tasks() -> int:
    return len(asyncio.all_tasks())
