"""Budget enforcement: ledger charging, executor granularity, pipeline
propagation.  The contract under test: the crossing call is charged (its
cost is real), :class:`FMBudgetExceededError` then stops further spend,
cache hits stay free, and enforcement is batch-granular so serial and
threaded backends issue exactly the same calls."""

import pytest

from repro.core import SmartFeat
from repro.datasets import load_dataset
from repro.fm import (
    Budget,
    FMBudgetExceededError,
    FMCache,
    FMRequest,
    RetryPolicy,
    ScriptedFM,
    SerialExecutor,
    SimulatedFM,
    ThreadPoolFMExecutor,
)


class TestBudgetPrimitive:
    def test_negative_limit_rejected(self):
        for kwargs in ({"max_cost_usd": -0.1}, {"max_calls": -1}, {"max_latency_s": -2.0}):
            with pytest.raises(ValueError):
                Budget(**kwargs)

    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        for _ in range(100):
            budget.charge(cost_usd=10.0, latency_s=10.0)
        budget.check()

    def test_crossing_charge_raises_with_diagnostics(self):
        budget = Budget(max_cost_usd=1.0)
        budget.charge(cost_usd=0.8)
        with pytest.raises(FMBudgetExceededError) as exc_info:
            budget.charge(cost_usd=0.5)
        err = exc_info.value
        assert err.axis == "cost_usd"
        assert err.limit == pytest.approx(1.0)
        assert err.spent == pytest.approx(1.3)
        # The crossing charge was applied: the meter reads what was spent.
        assert budget.spent_cost_usd == pytest.approx(1.3)

    def test_check_raises_at_the_limit_not_before(self):
        budget = Budget(max_calls=2)
        budget.check()
        budget.charge()
        budget.check()  # 1 of 2: headroom remains
        budget.charge()
        with pytest.raises(FMBudgetExceededError):
            budget.check()  # 2 of 2: the next call could only overshoot
        assert budget.exhausted()

    def test_latency_axis(self):
        budget = Budget(max_latency_s=5.0)
        with pytest.raises(FMBudgetExceededError) as exc_info:
            budget.charge(latency_s=6.0)
        assert exc_info.value.axis == "latency_s"

    def test_snapshot_reports_limits_and_spend(self):
        budget = Budget(max_calls=10, max_cost_usd=2.0)
        budget.charge(cost_usd=0.25, latency_s=1.5)
        snap = budget.snapshot()
        assert snap["max_calls"] == 10
        assert snap["spent_calls"] == 1
        assert snap["spent_cost_usd"] == pytest.approx(0.25)
        assert snap["max_latency_s"] is None


class TestLedgerIntegration:
    def test_single_call_path_trips_and_counts(self):
        fm = SimulatedFM(seed=0, budget=Budget(max_calls=3))
        for i in range(3):
            fm.complete(f"p{i}")
        with pytest.raises(FMBudgetExceededError):
            fm.complete("p3")
        # Pre-flight check stopped the 4th call before it executed.
        assert fm.ledger.n_calls == 3

    def test_shared_budget_caps_combined_spend(self):
        budget = Budget(max_calls=4)
        selector = SimulatedFM(seed=0, budget=budget)
        generator = SimulatedFM(seed=1)
        generator.ledger.budget = budget
        selector.complete("a")
        generator.complete("b")
        selector.complete("c")
        generator.complete("d")
        with pytest.raises(FMBudgetExceededError):
            selector.complete("e")
        assert selector.ledger.n_calls + generator.ledger.n_calls == 4

    def test_cache_hits_are_free(self):
        cache = FMCache()
        fm = SimulatedFM(seed=0, budget=Budget(max_calls=2))
        fm.cache = cache
        fm.complete("p0", temperature=0.0)
        fm.complete("p1", temperature=0.0)
        # Budget is exhausted, but replays of paid-for prompts still work.
        assert fm.complete("p0", temperature=0.0).text
        assert fm.ledger.cache_hits == 1
        with pytest.raises(FMBudgetExceededError):
            fm.complete("p2", temperature=0.0)


class TestExecutorGranularity:
    @pytest.mark.parametrize("make_executor", [SerialExecutor, lambda: ThreadPoolFMExecutor(4)])
    def test_batch_crossing_budget_is_fully_accounted(self, make_executor):
        budget = Budget(max_calls=5)
        fm = SimulatedFM(seed=0)
        fm.ledger.budget = budget
        executor = make_executor()
        with pytest.raises(FMBudgetExceededError):
            executor.run(fm, [FMRequest(f"q{i}") for i in range(8)])
        # The batch was in flight when the limit tripped: every executed
        # call is on the ledger and the meter, none are lost.
        assert fm.ledger.n_calls == 8
        assert budget.spent_calls == 8
        assert executor.stats.n_calls == 8

    def test_serial_and_threaded_issue_identical_calls_under_budget(self):
        ledgers = []
        for executor in (SerialExecutor(), ThreadPoolFMExecutor(4)):
            budget = Budget(max_calls=5)
            fm = SimulatedFM(seed=0)
            fm.ledger.budget = budget
            with pytest.raises(FMBudgetExceededError):
                executor.run(fm, [FMRequest(f"q{i}") for i in range(8)])
            # An exhausted budget blocks the next batch outright.
            with pytest.raises(FMBudgetExceededError):
                executor.run(fm, [FMRequest("next")])
            ledgers.append(fm.ledger.snapshot())
        assert ledgers[0] == ledgers[1]

    def test_exhausted_budget_blocks_batch_before_any_reservation(self):
        budget = Budget(max_calls=0)
        fm = ScriptedFM(["never used"])
        fm.ledger.budget = budget
        with pytest.raises(FMBudgetExceededError):
            SerialExecutor().run(fm, [FMRequest("p")])
        assert fm.ledger.n_calls == 0
        # The scripted cursor never moved: no state was reserved.
        assert fm._reserve_state("p", 0.0) == 0

    def test_budget_error_is_never_retried(self):
        policy = RetryPolicy(max_attempts=5)
        assert not policy.should_retry(FMBudgetExceededError("over"), attempt=1)

    @pytest.mark.parametrize("make_executor", [SerialExecutor, lambda: ThreadPoolFMExecutor(4)])
    def test_fully_cached_batch_served_after_exhaustion(self, make_executor):
        """Cache hits are free, so a batch answerable entirely from cache
        succeeds even when the budget has no headroom left."""
        cache = FMCache()
        fm = SimulatedFM(seed=0)
        fm.cache = cache
        requests = [FMRequest(f"p{i}", 0.0) for i in range(4)]
        SerialExecutor().run(fm, requests)  # pay once, warm the cache
        fm.ledger.budget = Budget(max_calls=0)  # now fully exhausted
        executor = make_executor()
        results = executor.run(fm, requests)
        assert all(r.cached for r in results)
        # But one uncached request in the batch trips the pre-flight check.
        with pytest.raises(FMBudgetExceededError):
            executor.run(fm, requests + [FMRequest("uncached", 0.0)])


class TestPipelinePropagation:
    def test_fit_transform_raises_budget_error(self):
        bundle = load_dataset("tennis", n_rows=120)
        tool = SmartFeat(
            fm=SimulatedFM(seed=0, model="gpt-4"),
            function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
            budget=Budget(max_calls=6),
        )
        with pytest.raises(FMBudgetExceededError):
            tool.fit_transform(
                bundle.frame,
                target=bundle.target,
                descriptions=bundle.descriptions,
                title=bundle.title,
            )
        combined = tool.fm.ledger.n_calls + tool.function_fm.ledger.n_calls
        # Batch-granular enforcement: the in-flight batch completes, the
        # next one never starts, so overshoot is bounded by one batch.
        assert combined >= 6
        assert tool.budget.spent_calls == combined

    def test_budget_attaches_to_both_client_ledgers(self):
        budget = Budget(max_cost_usd=1.0)
        fm = SimulatedFM(seed=0)
        function_fm = SimulatedFM(seed=1)
        tool = SmartFeat(fm=fm, function_fm=function_fm, budget=budget)
        assert fm.ledger.budget is budget
        assert function_fm.ledger.budget is budget
        assert tool.budget is budget

    def test_generous_budget_changes_nothing(self):
        from tests.core.conftest import INSURANCE_DESCRIPTIONS, make_insurance_frame

        insurance_frame = make_insurance_frame()
        insurance_descriptions = INSURANCE_DESCRIPTIONS

        def run(budget):
            fm = SimulatedFM(seed=0, model="gpt-4")
            function_fm = SimulatedFM(seed=1, model="gpt-3.5-turbo")
            tool = SmartFeat(
                fm=fm,
                function_fm=function_fm,
                downstream_model="decision_tree",
                budget=budget,
            )
            result = tool.fit_transform(
                insurance_frame.copy(),
                target="Safe",
                descriptions=dict(insurance_descriptions),
            )
            return sorted(result.new_features), fm.ledger.snapshot()

        unbudgeted = run(None)
        budgeted = run(Budget(max_cost_usd=1e9, max_calls=10**9))
        assert unbudgeted == budgeted
