"""Tests for the temperature-0 FM cache (LRU, persistence, integration)."""

import threading

import pytest

from repro.fm import FMCache, FMRequest, ScriptedFM, SerialExecutor, SimulatedFM
from repro.fm import ThreadPoolFMExecutor


class TestCachePolicy:
    def test_roundtrip_at_temperature_zero(self):
        cache = FMCache()
        client = SimulatedFM(seed=0)
        response = client.build_response("p", "answer text")
        cache.put("gpt-4", "p", 0.0, response)
        hit = cache.get("gpt-4", "p", 0.0)
        assert hit is not None
        assert hit.text == "answer text"
        assert hit.cost_usd == response.cost_usd

    def test_sampling_temperature_never_cached(self):
        cache = FMCache()
        client = SimulatedFM(seed=0)
        cache.put("gpt-4", "p", 0.7, client.build_response("p", "x"))
        assert len(cache) == 0
        assert cache.get("gpt-4", "p", 0.7) is None
        assert cache.misses == 0  # sampling lookups bypass the stats too

    def test_model_is_part_of_the_key(self):
        cache = FMCache()
        client = SimulatedFM(seed=0)
        cache.put("gpt-4", "p", 0.0, client.build_response("p", "four"))
        assert cache.get("gpt-3.5-turbo", "p", 0.0) is None

    def test_lru_eviction(self):
        cache = FMCache(max_entries=2)
        client = SimulatedFM(seed=0)
        for name in ("a", "b", "c"):
            cache.put("m", name, 0.0, client.build_response(name, name))
        assert cache.get("m", "a", 0.0) is None  # oldest evicted
        assert cache.get("m", "c", 0.0) is not None
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = FMCache(max_entries=2)
        client = SimulatedFM(seed=0)
        cache.put("m", "a", 0.0, client.build_response("a", "a"))
        cache.put("m", "b", 0.0, client.build_response("b", "b"))
        cache.get("m", "a", 0.0)  # a becomes most recent
        cache.put("m", "c", 0.0, client.build_response("c", "c"))
        assert cache.get("m", "a", 0.0) is not None
        assert cache.get("m", "b", 0.0) is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FMCache(max_entries=0)


class TestPersistence:
    def test_save_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = FMCache(path=path)
        client = SimulatedFM(seed=0)
        cache.put("gpt-4", "prompt", 0.0, client.build_response("prompt", "cached answer"))
        cache.save()
        warm = FMCache(path=path)
        hit = warm.get("gpt-4", "prompt", 0.0)
        assert hit is not None and hit.text == "cached answer"

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            FMCache().save()


class TestClientIntegration:
    def test_second_call_hits_without_rerunning(self):
        fm = ScriptedFM(["first"], model="scripted")
        fm.cache = FMCache()
        a = fm.complete("p", temperature=0.0)
        b = fm.complete("p", temperature=0.0)  # would exhaust the script
        assert a.text == b.text == "first"
        assert fm.ledger.n_calls == 1
        assert fm.ledger.cache_hits == 1

    def test_hits_add_no_cost_or_latency(self):
        fm = SimulatedFM(seed=0)
        fm.cache = FMCache()
        fm.complete("deterministic prompt", temperature=0.0)
        snap_cold = fm.ledger.snapshot()
        fm.complete("deterministic prompt", temperature=0.0)
        snap_warm = fm.ledger.snapshot()
        assert snap_warm["n_calls"] == snap_cold["n_calls"]
        assert snap_warm["cost_usd"] == snap_cold["cost_usd"]
        assert snap_warm["latency_s"] == snap_cold["latency_s"]
        assert snap_warm["cache_hits"] == 1

    def test_cache_shared_across_clients_keyed_by_model(self):
        cache = FMCache()
        a = SimulatedFM(seed=0, model="gpt-4")
        b = SimulatedFM(seed=0, model="gpt-4")
        a.cache = cache
        b.cache = cache
        a.complete("shared prompt", temperature=0.0)
        b.complete("shared prompt", temperature=0.0)
        assert b.ledger.n_calls == 0
        assert b.ledger.cache_hits == 1

    def test_executor_batches_use_the_cache(self):
        fm = SimulatedFM(seed=0)
        fm.cache = FMCache()
        requests = [FMRequest(f"p{i}", 0.0) for i in range(6)]
        SerialExecutor().run(fm, requests)
        executor = ThreadPoolFMExecutor(4)
        results = executor.run(fm, requests)
        assert all(r.cached for r in results)
        assert executor.stats.cache_hits == 6
        assert executor.stats.critical_path_s == 0.0

    def test_warm_cache_keeps_sampling_trajectory(self):
        """Cache hits consume the simulator's counter, so a warm rerun
        draws the same sampling sequence as the cold run."""

        def run(cache):
            fm = SimulatedFM(seed=3)
            fm.cache = cache
            fm.complete("deterministic a", temperature=0.0)
            drawn = fm.complete("sampled", temperature=0.9).text
            fm.complete("deterministic b", temperature=0.0)
            return drawn

        cache = FMCache()
        cold = run(cache)
        warm = run(cache)
        assert cold == warm


class TestThreadSafety:
    def test_concurrent_puts_and_gets(self):
        cache = FMCache(max_entries=64)
        client = SimulatedFM(seed=0)

        def hammer(k: int):
            for i in range(100):
                name = f"t{k} p{i % 8}"
                cache.put("m", name, 0.0, client.build_response(name, name))
                cache.get("m", name, 0.0)

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 64
        snap = cache.snapshot()
        assert snap["puts"] == 600


class TestCapacityBoundaries:
    """LRU behaviour exactly at the capacity edge, where off-by-ones live."""

    def _fill(self, cache, n, prefix="k"):
        client = SimulatedFM(seed=0)
        for i in range(n):
            name = f"{prefix}{i}"
            cache.put("m", name, 0.0, client.build_response(name, name))

    def test_filling_to_exact_capacity_evicts_nothing(self):
        cache = FMCache(max_entries=3)
        self._fill(cache, 3)
        assert len(cache) == 3
        assert cache.evictions == 0
        assert all(cache.get("m", f"k{i}", 0.0) is not None for i in range(3))

    def test_one_past_capacity_evicts_exactly_one(self):
        cache = FMCache(max_entries=3)
        self._fill(cache, 4)
        assert len(cache) == 3
        assert cache.evictions == 1
        assert cache.get("m", "k0", 0.0) is None  # the oldest went
        assert all(cache.get("m", f"k{i}", 0.0) is not None for i in (1, 2, 3))

    def test_capacity_one(self):
        cache = FMCache(max_entries=1)
        self._fill(cache, 5)
        assert len(cache) == 1
        assert cache.evictions == 4
        assert cache.get("m", "k4", 0.0) is not None

    def test_overwriting_existing_key_does_not_evict(self):
        cache = FMCache(max_entries=2)
        client = SimulatedFM(seed=0)
        self._fill(cache, 2)
        cache.put("m", "k1", 0.0, client.build_response("k1", "updated"))
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("m", "k1", 0.0).text == "updated"
        assert cache.get("m", "k0", 0.0) is not None

    def test_load_trims_to_capacity(self, tmp_path):
        path = tmp_path / "cache.json"
        big = FMCache(max_entries=10, path=path)
        self._fill(big, 10)
        big.save()
        small = FMCache(max_entries=4, path=path)
        assert len(small) == 4
        assert small.evictions == 6


class TestCorruptStores:
    """A damaged persistent store must cost a cold start, never a crash."""

    def _saved_store(self, tmp_path, n=4):
        path = tmp_path / "cache.json"
        cache = FMCache(path=path)
        client = SimulatedFM(seed=0)
        for i in range(n):
            cache.put("m", f"p{i}", 0.0, client.build_response(f"p{i}", f"text {i}"))
        cache.save()
        return path

    def test_truncated_store_recovers_empty_with_warning(self, tmp_path, capsys):
        path = self._saved_store(tmp_path)
        payload = path.read_text()
        path.write_text(payload[: len(payload) // 2])
        cache = FMCache(path=path)
        assert len(cache) == 0
        assert "ignoring unreadable FM cache" in capsys.readouterr().err
        # The survivor is fully functional: put, get, save all work.
        client = SimulatedFM(seed=0)
        cache.put("m", "fresh", 0.0, client.build_response("fresh", "fresh"))
        assert cache.get("m", "fresh", 0.0) is not None
        cache.save()
        assert len(FMCache(path=path)) == 1

    def test_garbage_bytes_recover_empty_with_warning(self, tmp_path, capsys):
        path = tmp_path / "cache.json"
        path.write_text("not json at all {{{")
        cache = FMCache(path=path)
        assert len(cache) == 0
        assert "ignoring unreadable FM cache" in capsys.readouterr().err

    def test_wrong_toplevel_shape_recovers_empty(self, tmp_path, capsys):
        import json as json_module

        path = tmp_path / "cache.json"
        for payload in ([1, 2, 3], {"entries": "not a dict"}):
            path.write_text(json_module.dumps(payload))
            cache = FMCache(path=path)
            assert len(cache) == 0
        assert "ignoring unreadable FM cache" in capsys.readouterr().err

    def test_malformed_entries_are_skipped_not_fatal(self, tmp_path):
        import json as json_module

        path = self._saved_store(tmp_path, n=2)
        payload = json_module.loads(path.read_text())
        payload["entries"]["poison1"] = {"text": "missing fields"}
        payload["entries"]["poison2"] = {
            "text": 42,  # wrong type
            "prompt_tokens": 1,
            "completion_tokens": 1,
            "latency_s": 0.1,
            "cost_usd": 0.0,
            "model": "m",
        }
        path.write_text(json_module.dumps(payload))
        cache = FMCache(path=path)
        assert len(cache) == 2  # the two healthy entries survived
        assert cache.get("m", "p0", 0.0) is not None

    def test_roundtrip_preserves_every_response_field(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = FMCache(path=path)
        client = SimulatedFM(seed=0, model="gpt-4")
        original = client.build_response("prompt text", "completion text")
        cache.put("gpt-4", "prompt text", 0.0, original)
        cache.save()
        restored = FMCache(path=path).get("gpt-4", "prompt text", 0.0)
        assert restored == original


class TestAtomicSave:
    """A crash mid-``save()`` must never corrupt the persistent store."""

    def _warm_store(self, tmp_path, n=3):
        path = tmp_path / "cache.json"
        cache = FMCache(path=path)
        client = SimulatedFM(seed=0)
        for i in range(n):
            cache.put("m", f"p{i}", 0.0, client.build_response(f"p{i}", f"a{i}"))
        cache.save()
        return path

    def test_save_goes_through_tmp_and_rename(self, tmp_path, monkeypatch):
        import os as os_module

        path = self._warm_store(tmp_path)
        replaced = []
        real_replace = os_module.replace
        monkeypatch.setattr(
            "repro.fm.cache.os.replace",
            lambda src, dst: (replaced.append((str(src), str(dst))), real_replace(src, dst))[1],
        )
        cache = FMCache(path=path)
        cache.save()
        assert replaced and replaced[0][0].endswith(".tmp")
        assert replaced[0][1] == str(path)
        assert not path.with_name(path.name + ".tmp").exists()

    def test_interrupted_write_leaves_old_store_intact(self, tmp_path, monkeypatch):
        from pathlib import Path

        path = self._warm_store(tmp_path, n=2)
        before = path.read_bytes()

        real_write_text = Path.write_text

        def dying_write(self, text, *args, **kwargs):
            # Simulate a crash mid-write: half the payload lands, then boom.
            real_write_text(self, text[: len(text) // 2], *args, **kwargs)
            raise OSError("disk full")

        monkeypatch.setattr(Path, "write_text", dying_write)
        cache = FMCache(path=path)
        client = SimulatedFM(seed=1)
        cache.put("m", "extra", 0.0, client.build_response("extra", "x"))
        with pytest.raises(OSError):
            cache.save()
        monkeypatch.undo()
        # The store on disk is byte-identical to the last good save ...
        assert path.read_bytes() == before
        assert not path.with_name(path.name + ".tmp").exists()
        # ... and still loads warm.
        assert len(FMCache(path=path)) == 2

    def test_interrupted_replace_leaves_old_store_intact(self, tmp_path, monkeypatch):
        path = self._warm_store(tmp_path, n=2)
        before = path.read_bytes()
        monkeypatch.setattr(
            "repro.fm.cache.os.replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("killed")),
        )
        cache = FMCache(path=path)
        with pytest.raises(OSError):
            cache.save()
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert not path.with_name(path.name + ".tmp").exists()
