"""Unit tests for FM code generation (the simulated function generator)."""

import pytest

from repro.core.sandbox import run_transform
from repro.dataframe import DataFrame, Series
from repro.fm import default_knowledge
from repro.fm.codegen import derivation_tag, generate_transform_source, parse_op_tag


@pytest.fixture
def frame():
    return DataFrame(
        {
            "Age": [18, 25, 40, 70],
            "Income": [10.0, 50.0, 120.0, 80.0],
            "City": ["SF", "LA", "SF", "SEA"],
            "Date": ["2024-01-15", "2023-06-02", "2024-03-09", "2022-12-31"],
            "Claims": [1, 0, 2, 0],
            "Notes": ["Honda, Civic", "BMW, X5", "Ford, Focus", "Kia, Rio"],
        }
    )


def realize(description, columns, frame, values=None):
    source = generate_transform_source(
        "feat", columns, description, default_knowledge(), column_values=values or {}
    )
    return run_transform(source, frame)


class TestParseOpTag:
    def test_plain(self):
        assert parse_op_tag("log_transform: squash tail") == ("log_transform", [])

    def test_args(self):
        assert parse_op_tag("bucketization[age_insurance]: bands") == (
            "bucketization",
            ["age_insurance"],
        )

    def test_multiple_args(self):
        assert parse_op_tag("knowledge_map[a][b]: x") == ("knowledge_map", ["a", "b"])

    def test_natural_text_gives_empty(self):
        assert parse_op_tag("Age of the policyholder in years") == ("", [])

    def test_derivation_tag_filters_unknown(self):
        assert derivation_tag("Sex: male or female") == ""
        assert derivation_tag("binary[-]: difference") == "binary"


class TestUnaryCodegen:
    def test_bucketization_with_domain(self, frame):
        out = realize("bucketization[age_insurance]: bands", ["Age"], frame)
        assert isinstance(out, Series)
        assert out.nunique() >= 2

    def test_bucketization_unknown_domain_falls_back_to_quartiles(self, frame):
        out = realize("bucketization[unknown_domain]: bands", ["Income"], frame)
        assert out.notna().all()

    def test_normalization_minmax(self, frame):
        out = realize("normalization[minmax]: scale", ["Income"], frame)
        assert out.min() == 0.0 and out.max() == 1.0

    def test_normalization_zscore(self, frame):
        out = realize("normalization[zscore]: scale", ["Income"], frame)
        assert abs(out.mean()) < 1e-9

    def test_log_transform_handles_zero(self):
        frame = DataFrame({"x": [0.0, 10.0]})
        out = realize("log_transform: squash", ["x"], frame)
        assert out[0] == 0.0

    def test_squared(self, frame):
        out = realize("squared: square it", ["Age"], frame)
        assert out[1] == 625.0

    def test_get_dummies(self, frame):
        out = realize("get_dummies: one-hot", ["City"], frame)
        assert isinstance(out, DataFrame)
        assert "City_SF" in out.columns

    def test_date_split(self, frame):
        out = realize("date_split: calendar parts", ["Date"], frame)
        assert out["Date_month"].tolist() == [1, 6, 3, 12]

    def test_text_length(self, frame):
        out = realize("text_length: length", ["City"], frame)
        assert out.tolist() == [2, 2, 2, 3]

    def test_is_missing(self):
        frame = DataFrame({"x": [1.0, None]})
        out = realize("is_missing: flag", ["x"], frame)
        assert out.tolist() == [0, 1]


class TestBinaryCodegen:
    def test_subtract(self, frame):
        out = realize("binary[-]: diff", ["Income", "Age"], frame)
        assert out[0] == -8.0

    def test_divide_guards_zero(self):
        frame = DataFrame({"a": [10.0, 10.0], "b": [2.0, 0.0]})
        out = realize("binary[/]: ratio", ["a", "b"], frame)
        assert out[0] == 5.0
        assert out.isna().tolist() == [False, True]  # no inf leaks

    def test_multiply(self, frame):
        out = realize("binary[*]: product", ["Age", "Claims"], frame)
        assert out.tolist() == [18.0, 0.0, 80.0, 0.0]


class TestHighOrderCodegen:
    def test_groupby_transform(self, frame):
        out = realize("groupby[mean]: rate", ["City", "Claims"], frame)
        assert out[0] == out[2] == 1.5  # SF group mean


class TestExtractorCodegen:
    def test_knowledge_map_uses_agenda_values(self, frame):
        out = realize(
            "knowledge_map[city_population_density]: density",
            ["City"],
            frame,
            values={"City": ["SF", "LA", "SEA"]},
        )
        assert out[0] == 18630.0
        assert out[1] == 8300.0

    def test_knowledge_map_default_for_unlisted(self, frame):
        out = realize(
            "knowledge_map[city_population_density]: density",
            ["City"],
            frame,
            values={"City": ["SF"]},  # LA/SEA not listed -> default
        )
        assert out[1] == out[3]

    def test_split_parts(self, frame):
        out = realize("split_parts[,]: split", ["Notes"], frame)
        assert isinstance(out, DataFrame)
        assert out["Notes_part0"].tolist() == ["Honda", "BMW", "Ford", "Kia"]
        assert out["Notes_part1"].tolist() == ["Civic", "X5", "Focus", "Rio"]

    def test_composite_index_zero_mean(self, frame):
        out = realize("composite_index: combo", ["Age", "Income", "Claims"], frame)
        assert abs(out.mean()) < 1e-9


class TestFallback:
    def test_unknown_tag_returns_identity(self, frame):
        out = realize("mystery_op: who knows", ["Age"], frame)
        assert out.tolist() == frame["Age"].tolist()
