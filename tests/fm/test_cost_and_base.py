"""Unit tests for the FM cost model, ledger, and client protocol."""

import pytest

from repro.fm import CostModel, FMError, RecordingFM, ReplayFM, ScriptedFM, estimate_tokens
from repro.fm.cost import PRICE_TABLE


class TestTokenEstimate:
    def test_roughly_four_chars_per_token(self):
        assert estimate_tokens("x" * 400) == 100

    def test_minimum_one(self):
        assert estimate_tokens("") == 1


class TestCostModel:
    def test_gpt4_pricier_than_gpt35(self):
        gpt4 = CostModel(model="gpt-4")
        gpt35 = CostModel(model="gpt-3.5-turbo")
        assert gpt4.price(1000, 100) > gpt35.price(1000, 100)

    def test_price_linear_in_tokens(self):
        model = CostModel(model="gpt-4")
        assert model.price(2000, 200) == pytest.approx(2 * model.price(1000, 100))

    def test_latency_grows_with_completion(self):
        model = CostModel()
        assert model.latency(100) > model.latency(10)

    def test_price_table_has_both_paper_models(self):
        assert "gpt-4" in PRICE_TABLE
        assert "gpt-3.5-turbo" in PRICE_TABLE

    def test_unknown_model_priced_as_simulated(self):
        model = CostModel(model="mystery-9000")
        assert model.price(100, 10) == CostModel(model="simulated").price(100, 10)


class TestLedger:
    def test_accumulates_across_calls(self):
        client = ScriptedFM(["short", "a considerably longer response body"])
        client.complete("prompt one")
        client.complete("prompt two")
        snap = client.ledger.snapshot()
        assert snap["n_calls"] == 2
        assert snap["prompt_tokens"] > 0
        assert snap["cost_usd"] > 0
        assert snap["latency_s"] > 0

    def test_reset(self):
        client = ScriptedFM(["x"])
        client.complete("p")
        client.ledger.reset()
        assert client.ledger.n_calls == 0

    def test_history_kept_when_enabled(self):
        client = ScriptedFM(["x"])
        client.ledger.keep_history = True
        client.complete("p")
        assert client.ledger.history == [("p", "x")]


class TestScriptedFM:
    def test_sequential_responses(self):
        client = ScriptedFM(["a", "b"])
        assert client.complete("1").text == "a"
        assert client.complete("2").text == "b"

    def test_exhaustion_raises(self):
        client = ScriptedFM(["only"])
        client.complete("1")
        with pytest.raises(FMError):
            client.complete("2")

    def test_callable_responses(self):
        client = ScriptedFM(lambda prompt: prompt.upper())
        assert client.complete("abc").text == "ABC"


class TestRecordReplay:
    def test_roundtrip(self):
        inner = ScriptedFM(["first", "second"])
        recorder = RecordingFM(inner)
        recorder.complete("p1")
        recorder.complete("p2")
        replay = ReplayFM(recorder.recording)
        assert replay.complete("p1").text == "first"
        assert replay.complete("p2").text == "second"

    def test_strict_replay_detects_prompt_drift(self):
        replay = ReplayFM([("expected prompt", "resp")])
        with pytest.raises(FMError):
            replay.complete("completely different prompt" + "x" * 150)

    def test_replay_exhaustion(self):
        replay = ReplayFM([])
        with pytest.raises(FMError):
            replay.complete("p")

    def test_lenient_replay(self):
        replay = ReplayFM([("original", "resp")], strict=False)
        assert replay.complete("anything").text == "resp"
