"""Tests for the FM execution layer: backends, retries, accounting."""

import threading
import time

import pytest

from repro.fm import (
    FMError,
    FMRequest,
    RetryPolicy,
    ScriptedFM,
    SerialExecutor,
    SimulatedFM,
    ThreadPoolFMExecutor,
    critical_path_seconds,
)
from repro.fm.base import CallLedger, FMClient


class SlowFM(FMClient):
    """Sleeps per call and tracks how many calls ran at once."""

    def __init__(self, delay_s: float = 0.02) -> None:
        super().__init__(model="slow")
        self.delay_s = delay_s
        self._active = 0
        self.max_active = 0
        self._gauge = threading.Lock()

    def _complete_text(self, prompt: str, temperature: float) -> str:
        with self._gauge:
            self._active += 1
            self.max_active = max(self.max_active, self._active)
        time.sleep(self.delay_s)
        with self._gauge:
            self._active -= 1
        return f"echo:{prompt}"


class FlakyFM(FMClient):
    """Raises a transient error for the first *failures* of each prompt."""

    def __init__(self, failures: int = 1) -> None:
        super().__init__(model="flaky")
        self.failures = failures
        self.attempts: dict[str, int] = {}

    def _complete_text(self, prompt: str, temperature: float) -> str:
        seen = self.attempts.get(prompt, 0)
        self.attempts[prompt] = seen + 1
        if seen < self.failures:
            raise FMError(f"transient failure {seen + 1} for {prompt}")
        return f"ok:{prompt}"


class TestCriticalPath:
    def test_empty(self):
        assert critical_path_seconds([], 4) == 0.0

    def test_serial_is_sum(self):
        assert critical_path_seconds([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_fully_parallel_is_max(self):
        assert critical_path_seconds([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_greedy_in_order_assignment(self):
        # Two workers, in-order: [3] | [1, 1, 1] -> makespan 3.
        assert critical_path_seconds([3.0, 1.0, 1.0, 1.0], 2) == pytest.approx(3.0)
        # Two workers: [2, 1] | [2] -> makespan 3.
        assert critical_path_seconds([2.0, 2.0, 1.0], 2) == pytest.approx(3.0)

    def test_never_below_longest_call(self):
        assert critical_path_seconds([5.0, 0.1, 0.1], 8) == pytest.approx(5.0)


class TestBackendEquivalence:
    def _requests(self):
        return [FMRequest(f"prompt {i}", 0.0 if i % 2 else 0.7) for i in range(12)]

    def test_simulated_fm_identical_under_both_backends(self):
        serial_fm = SimulatedFM(seed=7)
        threaded_fm = SimulatedFM(seed=7)
        serial = SerialExecutor().run(serial_fm, self._requests())
        threaded = ThreadPoolFMExecutor(4).run(threaded_fm, self._requests())
        assert [r.response.text for r in serial] == [r.response.text for r in threaded]
        assert serial_fm.ledger.snapshot() == threaded_fm.ledger.snapshot()

    def test_scripted_list_preserves_submission_order(self):
        responses = [f"answer {i}" for i in range(10)]
        fm = ScriptedFM(responses)
        results = ThreadPoolFMExecutor(4).run(
            fm, [FMRequest(f"p{i}") for i in range(10)]
        )
        assert [r.response.text for r in results] == responses

    def test_ledger_history_in_submission_order(self):
        fm = SimulatedFM(seed=0)
        fm.ledger.keep_history = True
        requests = [FMRequest(f"prompt {i}") for i in range(8)]
        ThreadPoolFMExecutor(4).run(fm, requests)
        assert [prompt for prompt, _ in fm.ledger.history] == [r.prompt for r in requests]

    def test_complete_batch_defaults_to_serial(self):
        fm = ScriptedFM(["a", "b"])
        results = fm.complete_batch([FMRequest("1"), FMRequest("2")])
        assert [r.response.text for r in results] == ["a", "b"]


class TestConcurrencyBounds:
    def test_thread_pool_actually_parallel(self):
        fm = SlowFM(delay_s=0.03)
        start = time.perf_counter()
        ThreadPoolFMExecutor(8).run(fm, [FMRequest(f"p{i}") for i in range(8)])
        elapsed = time.perf_counter() - start
        assert fm.max_active > 1
        assert elapsed < 8 * 0.03  # faster than the serial sum

    def test_concurrency_is_bounded(self):
        fm = SlowFM(delay_s=0.02)
        ThreadPoolFMExecutor(3).run(fm, [FMRequest(f"p{i}") for i in range(12)])
        assert fm.max_active <= 3

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ValueError):
            ThreadPoolFMExecutor(0)


class TestErrorsAndRetries:
    def test_errors_surface_as_results_not_exceptions(self):
        fm = ScriptedFM(["only one"])
        results = SerialExecutor().run(fm, [FMRequest("a"), FMRequest("b")])
        assert results[0].ok
        assert not results[1].ok
        assert isinstance(results[1].error, FMError)
        with pytest.raises(FMError):
            results[1].unwrap()

    def test_no_retry_by_default(self):
        fm = FlakyFM(failures=1)
        results = SerialExecutor().run(fm, [FMRequest("p")])
        assert not results[0].ok
        assert fm.attempts["p"] == 1

    def test_retry_policy_recovers_transient_failures(self):
        fm = FlakyFM(failures=1)
        executor = SerialExecutor(retry=RetryPolicy(max_attempts=2))
        results = executor.run(fm, [FMRequest("p")])
        assert results[0].ok
        assert results[0].response.text == "ok:p"
        assert results[0].attempts == 2
        assert executor.stats.n_retries == 1

    def test_retry_exhaustion_returns_last_error(self):
        fm = FlakyFM(failures=5)
        executor = ThreadPoolFMExecutor(2, retry=RetryPolicy(max_attempts=3))
        results = executor.run(fm, [FMRequest("p")])
        assert not results[0].ok
        assert results[0].attempts == 3

    def test_failed_calls_not_recorded_in_ledger(self):
        fm = ScriptedFM(["only one"])
        SerialExecutor().run(fm, [FMRequest("a"), FMRequest("b"), FMRequest("c")])
        assert fm.ledger.n_calls == 1

    def test_executor_complete_raises_on_failure(self):
        fm = ScriptedFM([])
        with pytest.raises(FMError):
            SerialExecutor().complete(fm, "p")


class TestStats:
    def test_serial_critical_path_equals_sum(self):
        fm = SimulatedFM(seed=0)
        executor = SerialExecutor()
        executor.run(fm, [FMRequest(f"p{i}") for i in range(5)])
        stats = executor.stats
        assert stats.critical_path_s == pytest.approx(stats.summed_latency_s)
        assert stats.n_calls == 5
        assert stats.n_batches == 1

    def test_threaded_critical_path_below_sum(self):
        fm = SimulatedFM(seed=0)
        executor = ThreadPoolFMExecutor(4)
        executor.run(fm, [FMRequest(f"p{i}") for i in range(8)])
        stats = executor.stats
        assert stats.critical_path_s < stats.summed_latency_s

    def test_stats_accumulate_across_batches(self):
        fm = SimulatedFM(seed=0)
        executor = SerialExecutor()
        executor.run(fm, [FMRequest("a")])
        executor.run(fm, [FMRequest("b")])
        assert executor.stats.n_batches == 2
        assert executor.stats.n_calls == 2


class TestLedgerThreadSafety:
    def test_concurrent_recording_keeps_exact_totals(self):
        ledger = CallLedger()
        client = SimulatedFM(seed=0)
        response = client.build_response("prompt", "four token text here")
        n_threads, per_thread = 8, 250

        def hammer():
            for _ in range(per_thread):
                ledger.record("prompt", response)
                ledger.record_cache_hit()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert ledger.n_calls == total
        assert ledger.cache_hits == total
        assert ledger.prompt_tokens == total * response.prompt_tokens
        assert ledger.completion_tokens == total * response.completion_tokens
        assert ledger.cost_usd == pytest.approx(total * response.cost_usd)

    def test_concurrent_complete_calls_exact_ledger(self):
        fm = SimulatedFM(seed=0)
        n_threads, per_thread = 6, 40

        def hammer(k: int):
            for i in range(per_thread):
                fm.complete(f"thread {k} call {i}")

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert fm.ledger.n_calls == n_threads * per_thread
