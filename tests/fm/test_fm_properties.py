"""Property-based tests for FM substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fm import CostModel, KnowledgeStore, estimate_tokens
from repro.fm.lexicon import infer_role, stat_polarity, tokenize_identifier

texts = st.text(min_size=0, max_size=300)
identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9_. ]{0,30}", fullmatch=True)


@given(texts)
def test_token_estimate_positive_and_monotone(text):
    n = estimate_tokens(text)
    assert n >= 1
    assert estimate_tokens(text + "xxxx") >= n


@given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=10**5))
def test_cost_non_negative_and_additive(prompt_tokens, completion_tokens):
    model = CostModel(model="gpt-4")
    cost = model.price(prompt_tokens, completion_tokens)
    assert cost >= 0.0
    # Doubling both token counts exactly doubles the price.
    assert abs(model.price(2 * prompt_tokens, 2 * completion_tokens) - 2 * cost) < 1e-12


@given(st.integers(min_value=0, max_value=10**5))
def test_latency_at_least_base(completion_tokens):
    model = CostModel()
    assert model.latency(completion_tokens) >= model.base_latency_s


@given(identifiers)
def test_tokenizer_always_lowercase_tokens(name):
    for token in tokenize_identifier(name):
        assert token == token.lower()
        assert token  # never empty


@given(identifiers, texts)
def test_infer_role_total(name, description):
    # Role inference never raises, whatever the inputs.
    infer_role(name, description)


@given(identifiers, texts)
def test_polarity_in_range(name, description):
    assert stat_polarity(name, description) in (-1, 0, 1)


@settings(max_examples=50)
@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz ", min_size=1, max_size=20))
def test_knowledge_guesses_stable_and_in_range(key):
    store = KnowledgeStore()
    for topic in store.topics:
        first = store.lookup(topic, key)
        second = store.lookup(topic, key)
        assert first == second
        low, high = store._guess_ranges[topic]
        if not store.knows(topic, key):
            assert low <= first <= high


@settings(max_examples=25)
@given(st.lists(st.text(alphabet="ABCDEFGH", min_size=1, max_size=4), min_size=1, max_size=8, unique=True))
def test_mapping_for_covers_all_keys(keys):
    store = KnowledgeStore()
    mapping = store.mapping_for("city_population_density", keys)
    assert set(mapping) == set(keys)
