"""Hedged requests: policy/tracker math plus executor races.

The executor-level tests drive real latency races through a transport
whose latency spikes are seeded, proving the contract end to end: the
shadow wins the tail races, the ledger still sees exactly one result per
logical request, and the loser's response — when it lands — is tallied
only in the hedge counters.  Stateful clients (the seeded simulator)
must never be hedged at all.
"""

import threading

import pytest

from repro.fm import (
    AsyncFMExecutor,
    FMRequest,
    HedgePolicy,
    LatencyTracker,
    SerialExecutor,
    SimulatedFM,
    SimulatedHTTPTransport,
    ThreadPoolFMExecutor,
    Transport,
    TransportFMClient,
    TransportRequest,
    TransportResponse,
)


# ----------------------------------------------------------------------
# LatencyTracker
# ----------------------------------------------------------------------
def test_tracker_quantile_needs_min_observations():
    tracker = LatencyTracker()
    tracker.observe(0.1)
    assert tracker.quantile(0.95, min_observations=2) is None
    tracker.observe(0.2)
    assert tracker.quantile(0.95, min_observations=2) == 0.2


def test_tracker_nearest_rank_quantiles():
    tracker = LatencyTracker()
    for latency in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]:
        tracker.observe(latency)
    assert tracker.quantile(0.50) == 0.5
    assert tracker.quantile(0.95) == 1.0
    assert tracker.quantile(0.90) == 0.9


def test_tracker_window_is_bounded():
    tracker = LatencyTracker(window=4)
    for latency in [10.0, 10.0, 10.0, 0.1, 0.1, 0.1, 0.1]:
        tracker.observe(latency)
    # The old 10s outliers rolled out of the window.
    assert tracker.quantile(0.95) == 0.1
    assert tracker.n_observed == 7


def test_tracker_ignores_negative_latency():
    tracker = LatencyTracker()
    tracker.observe(-1.0)
    assert tracker.n_observed == 0


def test_tracker_validation():
    with pytest.raises(ValueError):
        LatencyTracker(window=0)


# ----------------------------------------------------------------------
# HedgePolicy
# ----------------------------------------------------------------------
def test_policy_cold_start_without_fallback_disables_hedging():
    policy = HedgePolicy()
    assert policy.delay_s(LatencyTracker()) is None


def test_policy_cold_start_with_fallback_uses_it():
    policy = HedgePolicy(initial_delay_s=0.25)
    assert policy.delay_s(LatencyTracker()) == 0.25


def test_policy_warm_estimate_overrides_fallback():
    policy = HedgePolicy(quantile=0.5, min_observations=2, initial_delay_s=9.0)
    tracker = LatencyTracker()
    tracker.observe(0.1)
    tracker.observe(0.3)
    assert policy.delay_s(tracker) == 0.1


def test_policy_floors_the_delay():
    policy = HedgePolicy(quantile=0.5, min_observations=1, min_delay_s=0.05)
    tracker = LatencyTracker()
    tracker.observe(0.0)
    assert policy.delay_s(tracker) == 0.05


def test_policy_validation():
    with pytest.raises(ValueError):
        HedgePolicy(quantile=1.0)
    with pytest.raises(ValueError):
        HedgePolicy(min_observations=0)


# ----------------------------------------------------------------------
# Executor integration
# ----------------------------------------------------------------------
class SlowFirstTransport(Transport):
    """First send of each prompt stalls; the duplicate answers fast.

    Deterministic tail injection: the race's winner is always the
    shadow, so hedge accounting is exactly predictable.
    """

    def __init__(self, stall_s: float = 0.3, fast_s: float = 0.005) -> None:
        self.stall_s = stall_s
        self.fast_s = fast_s
        self._seen: set[str] = set()
        self._lock = threading.Lock()
        self.n_sends = 0

    def _latency_for(self, request: TransportRequest) -> float:
        with self._lock:
            self.n_sends += 1
            first = request.prompt not in self._seen
            self._seen.add(request.prompt)
        return self.stall_s if first else self.fast_s

    def send(self, request: TransportRequest) -> TransportResponse:
        import time

        latency = self._latency_for(request)
        time.sleep(latency)
        return TransportResponse(
            status=200, text=f"echo:{request.prompt}", latency_s=latency
        )

    async def asend(self, request: TransportRequest) -> TransportResponse:
        import asyncio

        latency = self._latency_for(request)
        await asyncio.sleep(latency)
        return TransportResponse(
            status=200, text=f"echo:{request.prompt}", latency_s=latency
        )


HEDGE_NOW = HedgePolicy(initial_delay_s=0.02, min_observations=10_000)


@pytest.mark.parametrize(
    "make_executor",
    [
        lambda: SerialExecutor(hedge=HEDGE_NOW),
        lambda: ThreadPoolFMExecutor(4, hedge=HEDGE_NOW),
        lambda: AsyncFMExecutor(4, hedge=HEDGE_NOW),
    ],
    ids=["serial", "thread", "async"],
)
def test_shadow_wins_the_tail_race(make_executor):
    executor = make_executor()
    try:
        client = TransportFMClient(SlowFirstTransport())
        requests = [FMRequest(f"p{i}") for i in range(4)]
        results = executor.run(client, requests)
        assert [r.unwrap().text for r in results] == [f"echo:p{i}" for i in range(4)]
        # Every primary stalled past the armed delay: all four hedged,
        # and the fast duplicate won each race.
        assert executor.stats.hedges_issued == 4
        assert executor.stats.hedges_won == 4
        snapshot = client.ledger.snapshot()
        # Exactly one result per logical request reaches the main totals.
        assert snapshot["n_calls"] == 4
        assert snapshot["hedges_issued"] == 4
    finally:
        executor.close()


def test_sync_loser_settles_into_hedge_counters_only():
    executor = ThreadPoolFMExecutor(2, hedge=HEDGE_NOW)
    try:
        client = TransportFMClient(SlowFirstTransport(stall_s=0.15))
        results = executor.run(client, [FMRequest("p0")])
        assert results[0].ok
    finally:
        # close() drains the hedge pool, so the abandoned primary has
        # settled by the time we assert.
        executor.close()
    snapshot = client.ledger.snapshot()
    assert snapshot["n_calls"] == 1
    assert snapshot["hedges_issued"] == 1
    assert snapshot["hedges_abandoned"] == 1
    # The loser's completed response is wasted spend, tallied separately
    # and never added to cost_usd.
    assert snapshot["hedge_wasted_cost_usd"] > 0.0
    single_cost = snapshot["cost_usd"]
    assert single_cost == pytest.approx(
        TransportFMClient(SlowFirstTransport()).cost_model.price(
            *_tokens_for("p0")
        ),
        rel=1e-6,
    )


def _tokens_for(prompt: str) -> tuple[int, int]:
    from repro.fm.cost import estimate_tokens

    return estimate_tokens(prompt), estimate_tokens(f"echo:{prompt}")


def test_async_loser_is_cancelled_not_charged():
    executor = AsyncFMExecutor(4, hedge=HEDGE_NOW)
    try:
        client = TransportFMClient(SlowFirstTransport(stall_s=0.5))
        results = executor.run(client, [FMRequest("p0"), FMRequest("p1")])
        assert all(r.ok for r in results)
        snapshot = client.ledger.snapshot()
        assert snapshot["n_calls"] == 2
        assert snapshot["hedges_issued"] == 2
        assert snapshot["hedges_abandoned"] == 2
        # Cancelled losers never produced a response: nothing wasted.
        assert snapshot["hedge_wasted_cost_usd"] == 0.0
    finally:
        executor.close()


def test_fast_primary_never_hedges():
    executor = ThreadPoolFMExecutor(2, hedge=HedgePolicy(initial_delay_s=5.0))
    try:
        client = TransportFMClient(
            SimulatedHTTPTransport(base_latency_s=0.001, jitter_s=0.0, seed=1)
        )
        results = executor.run(client, [FMRequest(f"p{i}") for i in range(4)])
        assert all(r.ok for r in results)
        assert executor.stats.hedges_issued == 0
        assert client.ledger.snapshot()["hedges_issued"] == 0
    finally:
        executor.close()


def test_stateful_clients_are_never_hedged():
    fm = SimulatedFM(seed=5)
    executor = ThreadPoolFMExecutor(4, hedge=HedgePolicy(initial_delay_s=0.0))
    try:
        assert not executor._hedging_active(fm)
        results = executor.run(
            fm, [FMRequest(f"Propose a feature {i}", 0.7) for i in range(6)]
        )
        assert all(r.ok for r in results)
        assert executor.stats.hedges_issued == 0
    finally:
        executor.close()


def test_hedging_enabled_keeps_seeded_results_identical():
    def run(hedge):
        fm = SimulatedFM(seed=9)
        with ThreadPoolFMExecutor(4, hedge=hedge) as executor:
            results = executor.run(
                fm, [FMRequest(f"Propose a feature {i}", 0.7) for i in range(8)]
            )
            return [r.unwrap().text for r in results], fm.ledger.snapshot()

    assert run(None) == run(HedgePolicy(initial_delay_s=0.0))


def test_warm_tracker_arms_from_observed_quantile():
    executor = SerialExecutor(hedge=HedgePolicy(quantile=0.5, min_observations=3))
    try:
        client = TransportFMClient(
            SimulatedHTTPTransport(base_latency_s=0.01, jitter_s=0.005, seed=2)
        )
        executor.run(client, [FMRequest(f"warm{i}") for i in range(5)])
        assert executor.hedge_tracker.n_observed >= 5
        delay = executor.hedge.delay_s(executor.hedge_tracker)
        assert delay is not None and delay > 0
    finally:
        executor.close()


def test_policy_snapshot_exposes_hedge_state():
    executor = SerialExecutor(hedge=HEDGE_NOW)
    try:
        client = TransportFMClient(SlowFirstTransport(stall_s=0.1))
        executor.run(client, [FMRequest("p0")])
        snap = executor.policy_snapshot()
        assert snap["hedge"]["quantile"] == HEDGE_NOW.quantile
        assert snap["hedge"]["issued"] == 1
        assert snap["hedge"]["won"] == 1
    finally:
        executor.close()
