"""Unit tests for the open-world knowledge store."""

import pytest

from repro.fm import KnowledgeStore, default_knowledge


class TestKnowledgeStore:
    def test_curated_lookup(self):
        store = KnowledgeStore()
        assert store.lookup("city_population_density", "SF") == 18630.0
        assert store.knows("city_population_density", "SF")

    def test_abbreviation_and_full_name_agree(self):
        store = KnowledgeStore()
        assert store.lookup("city_population_density", "SF") == store.lookup(
            "city_population_density", "San Francisco"
        )

    def test_unseen_key_gets_stable_plausible_guess(self):
        store = KnowledgeStore()
        a = store.lookup("city_population_density", "Smallville")
        b = store.lookup("city_population_density", "Smallville")
        assert a == b
        assert 1500.0 <= a <= 6000.0
        assert not store.knows("city_population_density", "Smallville")

    def test_different_keys_guess_differently(self):
        store = KnowledgeStore()
        assert store.lookup("car_make_risk", "Xyzcar") != store.lookup(
            "car_make_risk", "Qwkcar"
        )

    def test_unknown_topic_raises(self):
        with pytest.raises(KeyError):
            KnowledgeStore().lookup("lottery_numbers", "tomorrow")

    def test_mapping_for(self):
        store = KnowledgeStore()
        mapping = store.mapping_for("car_make_risk", ["Honda", "BMW"])
        assert mapping["BMW"] > mapping["Honda"]

    def test_default_within_guess_range(self):
        store = KnowledgeStore()
        assert 1500.0 <= store.default_for("city_population_density") <= 6000.0

    def test_thresholds(self):
        store = KnowledgeStore()
        bands = store.thresholds("age_insurance")
        assert 21 in bands
        assert bands == sorted(bands)

    def test_unknown_threshold_domain_raises(self):
        with pytest.raises(KeyError):
            KnowledgeStore().thresholds("shoe_sizes")

    def test_sources_always_nonempty(self):
        store = KnowledgeStore()
        assert store.sources_for("city_population_density")
        assert store.sources_for("never_heard_of_it")

    def test_default_knowledge_is_shared_instance(self):
        assert default_knowledge() is default_knowledge()

    def test_topics_listing(self):
        assert "car_make_risk" in KnowledgeStore().topics
