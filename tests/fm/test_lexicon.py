"""Unit tests for semantic column-role inference."""

import pytest

from repro.fm import ColumnRole, infer_role
from repro.fm.lexicon import tokenize_identifier


class TestTokenizer:
    def test_camel_case(self):
        assert tokenize_identifier("AgeOfCar") == ["age", "of", "car"]

    def test_snake_case(self):
        assert tokenize_identifier("age_of_car") == ["age", "of", "car"]

    def test_dotted_abbreviation(self):
        assert tokenize_identifier("FSW.1") == ["fsw", "1"]

    def test_mixed(self):
        assert tokenize_identifier("Claim in last 6 months") == [
            "claim", "in", "last", "6", "months",
        ]


class TestRoleInference:
    @pytest.mark.parametrize(
        "name,description,expected",
        [
            ("Age", "", ColumnRole.AGE),
            ("Age of car", "Age of the insured car", ColumnRole.AGE),
            ("City", "City of residence", ColumnRole.CITY),
            ("income", "annual income in dollars", ColumnRole.MONEY),
            ("Glucose", "plasma glucose concentration", ColumnRole.MEASUREMENT),
            ("BloodPressure", "diastolic blood pressure", ColumnRole.MEASUREMENT),
            ("n_children", "", ColumnRole.COUNT),
            ("LSAT", "LSAT score of the applicant", ColumnRole.SCORE),
            ("MakeModel", "Make and model of the car", ColumnRole.VEHICLE),
            ("signup_date", "", ColumnRole.DATE),
            ("customer_id", "unique identifier", ColumnRole.IDENTIFIER),
            ("occupation", "", ColumnRole.OCCUPATION),
            ("education", "highest degree", ColumnRole.EDUCATION),
            ("species", "mosquito species", ColumnRole.SPECIES),
        ],
    )
    def test_roles(self, name, description, expected):
        assert infer_role(name, description) == expected

    def test_description_beats_cryptic_name(self):
        role = infer_role("FSW.1", "First serve percentage for player 1")
        assert role in (ColumnRole.SCORE, ColumnRole.PERCENTAGE)
        assert role != ColumnRole.UNKNOWN

    def test_cryptic_name_alone_is_unknown(self):
        assert infer_role("FSW.1") == ColumnRole.UNKNOWN

    def test_categorical_dtype_fallback(self):
        assert infer_role("blah", dtype="categorical") == ColumnRole.CATEGORY

    def test_unknown_numeric(self):
        assert infer_role("xyz_q") == ColumnRole.UNKNOWN

    def test_city_beats_generic_location_order(self):
        assert infer_role("city_name") == ColumnRole.CITY
