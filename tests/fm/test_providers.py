"""Live-provider transports, tested offline through an injected opener.

No test here touches the network: ``HTTPProviderTransport`` takes an
``opener`` callable, so every wire-dialect, status-mapping, and error
path runs against a fake.  The one genuinely-live test is gated on the
``SMARTFEAT_PROVIDER``/``SMARTFEAT_API_KEY`` environment opt-in, and a
subprocess meta-test proves that without the opt-in it is *visibly
skipped* — not silently passed — which is the invariant CI checks.
"""

import io
import json
import subprocess
import sys
import urllib.error
from email.message import Message
from pathlib import Path

import pytest

from repro.fm import (
    AnthropicMessagesTransport,
    FMRequest,
    OpenAIChatTransport,
    SerialExecutor,
    TransportFMClient,
    TransportRequest,
    live_provider_configured,
    provider_from_env,
)
from repro.fm.errors import FMRateLimitError
from repro.fm.providers import (
    ENV_API_KEY,
    ENV_BASE_URL,
    ENV_MODEL,
    ENV_PROVIDER,
    _parse_retry_after,
)
from repro.fm.transport import TransportConnectionReset, TransportTimeout


class FakeHTTPResponse:
    """The slice of ``http.client.HTTPResponse`` the transport reads."""

    def __init__(self, payload: dict, status: int = 200) -> None:
        self._body = json.dumps(payload).encode("utf-8")
        self.status = status

    def read(self) -> bytes:
        return self._body

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


class FakeOpener:
    """Records requests; yields scripted responses or raises exceptions."""

    def __init__(self, script) -> None:
        self.script = list(script)
        self.requests = []

    def __call__(self, http_request, timeout=None):
        self.requests.append((http_request, timeout))
        entry = self.script.pop(0)
        if isinstance(entry, Exception):
            raise entry
        return entry


def _http_error(status: int, retry_after: str | None = None) -> urllib.error.HTTPError:
    headers = Message()
    if retry_after is not None:
        headers["Retry-After"] = retry_after
    return urllib.error.HTTPError(
        url="https://example.test", code=status, msg="err", hdrs=headers, fp=io.BytesIO()
    )


OPENAI_OK = {"choices": [{"message": {"role": "assistant", "content": "forty-two"}}]}
ANTHROPIC_OK = {
    "content": [
        {"type": "text", "text": "forty"},
        {"type": "tool_use", "id": "x"},
        {"type": "text", "text": "-two"},
    ]
}


# ----------------------------------------------------------------------
# Retry-After parsing
# ----------------------------------------------------------------------
def test_parse_retry_after():
    assert _parse_retry_after(None) is None
    assert _parse_retry_after("2.5") == 2.5
    assert _parse_retry_after("-3") == 0.0
    # HTTP-date (or garbage) has no usable float: fall back to backoff.
    assert _parse_retry_after("Fri, 07 Aug 2026 12:00:00 GMT") is None


# ----------------------------------------------------------------------
# OpenAI dialect
# ----------------------------------------------------------------------
def test_openai_request_shape_and_parse():
    opener = FakeOpener([FakeHTTPResponse(OPENAI_OK)])
    transport = OpenAIChatTransport(api_key="sk-test", model="gpt-4o-mini", opener=opener)
    response = transport.send(TransportRequest(model="m", prompt="meaning of life?", temperature=0.7))
    assert response.ok and response.text == "forty-two"
    http_request, timeout = opener.requests[0]
    assert timeout == transport.timeout_s
    assert http_request.full_url == "https://api.openai.com/v1/chat/completions"
    assert http_request.get_header("Authorization") == "Bearer sk-test"
    body = json.loads(http_request.data.decode("utf-8"))
    assert body["model"] == "gpt-4o-mini"
    assert body["messages"] == [{"role": "user", "content": "meaning of life?"}]
    assert body["temperature"] == 0.7


def test_openai_base_url_override_strips_trailing_slash():
    opener = FakeOpener([FakeHTTPResponse(OPENAI_OK)])
    transport = OpenAIChatTransport(
        api_key="k", base_url="http://localhost:8000/v1/", opener=opener
    )
    transport.send(TransportRequest(model="m", prompt="p"))
    assert opener.requests[0][0].full_url == "http://localhost:8000/v1/chat/completions"


# ----------------------------------------------------------------------
# Anthropic dialect
# ----------------------------------------------------------------------
def test_anthropic_request_shape_and_parse():
    opener = FakeOpener([FakeHTTPResponse(ANTHROPIC_OK)])
    transport = AnthropicMessagesTransport(api_key="ak-test", opener=opener)
    response = transport.send(TransportRequest(model="m", prompt="meaning?"))
    # Non-text blocks are ignored; text blocks are joined.
    assert response.text == "forty-two"
    http_request, _ = opener.requests[0]
    assert http_request.full_url == "https://api.anthropic.com/v1/messages"
    assert http_request.get_header("X-api-key") == "ak-test"
    assert (
        http_request.get_header("Anthropic-version")
        == AnthropicMessagesTransport.API_VERSION
    )
    body = json.loads(http_request.data.decode("utf-8"))
    assert body["max_tokens"] == transport.max_tokens


# ----------------------------------------------------------------------
# Error mapping: the executor must see live providers exactly as it
# sees the simulated transport.
# ----------------------------------------------------------------------
def test_429_maps_to_rate_limited_response_with_retry_after():
    opener = FakeOpener([_http_error(429, retry_after="1.5")])
    transport = OpenAIChatTransport(api_key="k", opener=opener)
    response = transport.send(TransportRequest(model="m", prompt="p"))
    assert response.status == 429
    assert response.retry_after_s == 1.5
    assert not response.ok


def test_5xx_maps_to_server_error_response():
    opener = FakeOpener([_http_error(503)])
    transport = OpenAIChatTransport(api_key="k", opener=opener)
    response = transport.send(TransportRequest(model="m", prompt="p"))
    assert response.status == 503
    assert response.retry_after_s is None


def test_timeout_raises_transport_timeout():
    transport = OpenAIChatTransport(
        api_key="k", opener=FakeOpener([TimeoutError("socket timed out")])
    )
    with pytest.raises(TransportTimeout):
        transport.send(TransportRequest(model="m", prompt="p"))


def test_urlerror_timeout_reason_raises_transport_timeout():
    transport = OpenAIChatTransport(
        api_key="k",
        opener=FakeOpener([urllib.error.URLError(TimeoutError("timed out"))]),
    )
    with pytest.raises(TransportTimeout):
        transport.send(TransportRequest(model="m", prompt="p"))


def test_urlerror_maps_to_connection_reset():
    transport = OpenAIChatTransport(
        api_key="k", opener=FakeOpener([urllib.error.URLError("dns failure")])
    )
    with pytest.raises(TransportConnectionReset):
        transport.send(TransportRequest(model="m", prompt="p"))


def test_oserror_maps_to_connection_reset():
    transport = OpenAIChatTransport(
        api_key="k", opener=FakeOpener([ConnectionResetError("peer reset")])
    )
    with pytest.raises(TransportConnectionReset):
        transport.send(TransportRequest(model="m", prompt="p"))


def test_empty_api_key_rejected():
    with pytest.raises(ValueError):
        OpenAIChatTransport(api_key="")


# ----------------------------------------------------------------------
# Executor integration: retries ride the mapped errors.
# ----------------------------------------------------------------------
def test_executor_retries_through_provider_429():
    from repro.fm import RetryPolicy

    opener = FakeOpener(
        [_http_error(429, retry_after="0"), FakeHTTPResponse(OPENAI_OK)]
    )
    client = TransportFMClient(
        OpenAIChatTransport(api_key="k", opener=opener), model="gpt-4o-mini"
    )
    executor = SerialExecutor(retry=RetryPolicy(max_attempts=3, backoff_s=0.0))
    results = executor.run(client, [FMRequest("p")])
    assert results[0].unwrap().text == "forty-two"
    assert results[0].attempts == 2
    assert client.ledger.n_calls == 1


def test_provider_429_surfaces_as_fm_rate_limit_error():
    client = TransportFMClient(
        OpenAIChatTransport(api_key="k", opener=FakeOpener([_http_error(429)]))
    )
    results = SerialExecutor().run(client, [FMRequest("p")])
    assert isinstance(results[0].error, FMRateLimitError)


# ----------------------------------------------------------------------
# Env-var opt-in factory
# ----------------------------------------------------------------------
def test_live_provider_configured_requires_provider_and_key():
    assert not live_provider_configured({})
    assert not live_provider_configured({ENV_PROVIDER: "openai"})
    assert not live_provider_configured({ENV_API_KEY: "k"})
    assert live_provider_configured({ENV_PROVIDER: "openai", ENV_API_KEY: "k"})


def test_provider_from_env_builds_configured_client():
    env = {
        ENV_PROVIDER: "anthropic",
        ENV_API_KEY: "ak",
        ENV_MODEL: "claude-x",
        ENV_BASE_URL: "http://proxy.internal",
    }
    client = provider_from_env(env)
    assert isinstance(client.transport, AnthropicMessagesTransport)
    assert client.transport.model == "claude-x"
    assert client.transport.base_url == "http://proxy.internal"
    assert client.model == "claude-x"
    assert client.is_stateless()


def test_provider_from_env_rejects_missing_or_unknown():
    with pytest.raises(ValueError, match="no live provider"):
        provider_from_env({})
    with pytest.raises(ValueError, match="unknown provider"):
        provider_from_env({ENV_PROVIDER: "bard", ENV_API_KEY: "k"})
    with pytest.raises(ValueError, match="refusing"):
        provider_from_env({ENV_PROVIDER: "openai"})


def test_provider_from_env_case_insensitive_name():
    client = provider_from_env({ENV_PROVIDER: " OpenAI ", ENV_API_KEY: "k"})
    assert isinstance(client.transport, OpenAIChatTransport)


def test_provider_from_env_injects_opener():
    opener = FakeOpener([FakeHTTPResponse(OPENAI_OK)])
    client = provider_from_env(
        {ENV_PROVIDER: "openai", ENV_API_KEY: "k"}, opener=opener
    )
    assert client.complete("p").text == "forty-two"


# ----------------------------------------------------------------------
# The live gate: opt-in only, skipped *visibly* otherwise.
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not live_provider_configured(),
    reason="live provider not configured (SMARTFEAT_PROVIDER / SMARTFEAT_API_KEY unset)",
)
def test_live_provider_answers():  # pragma: no cover - needs a network + key
    client = provider_from_env()
    response = client.complete("Reply with the single word: pong")
    assert response.text.strip()


def test_live_test_is_skipped_not_passed_without_env(tmp_path):
    """Meta-test: unset env ⇒ the live test reports SKIPPED, visibly.

    A silently-passing live test would mean CI green proves nothing
    about live traffic; this pins the skip (with its reason) into the
    report machinery itself.
    """
    import os

    env = {
        key: value
        for key, value in os.environ.items()
        if key not in (ENV_PROVIDER, ENV_API_KEY, ENV_MODEL, ENV_BASE_URL)
    }
    repo_root = Path(__file__).resolve().parent.parent.parent
    env["PYTHONPATH"] = str(repo_root / "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-rs",
            "-p",
            "no:cacheprovider",
            f"{Path(__file__).resolve()}::test_live_provider_answers",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
    )
    out = proc.stdout
    assert "1 skipped" in out, out
    assert "live provider not configured" in out, out
    assert "passed" not in out.split("=")[-2] if "=" in out else True
