"""Retry backoff accounting: hostile Retry-After caps and budgeted waits.

Two production bugs this file pins down:

1. A hostile (or buggy) server answering ``Retry-After: 3600`` must not
   park a worker for an hour — the hint is clamped to ``max_backoff_s``
   when set, and to :data:`DEFAULT_RETRY_AFTER_CAP_S` otherwise, in the
   sync *and* async retry loops alike.
2. Backoff sleeps are dead time a wall-clock budget must meter: every
   retry sleep is charged to the ledger's ``wait_s`` (and so to
   ``Budget.max_latency_s``) *before* it is slept, and a wait that trips
   the budget is returned as the call's error instead of being slept.
"""

import time
from unittest import mock

import pytest

from repro.fm import (
    DEFAULT_RETRY_AFTER_CAP_S,
    AsyncFMExecutor,
    Budget,
    FMBudgetExceededError,
    FMRequest,
    RetryPolicy,
    ScriptedTransport,
    SerialExecutor,
    ThreadPoolFMExecutor,
    TransportFMClient,
    TransportResponse,
)
from repro.fm.errors import FMRateLimitError


def _hostile_429(retry_after_s: float = 3600.0) -> TransportResponse:
    return TransportResponse(status=429, retry_after_s=retry_after_s)


def _client(script, budget=None) -> TransportFMClient:
    return TransportFMClient(ScriptedTransport(list(script)), budget=budget)


# ----------------------------------------------------------------------
# RetryPolicy.delay_for clamping (unit level)
# ----------------------------------------------------------------------
def test_retry_after_clamped_to_max_backoff():
    policy = RetryPolicy(max_attempts=3, max_backoff_s=0.25)
    error = FMRateLimitError("429", retry_after_s=3600.0)
    assert policy.delay_for(error, attempt=1) == 0.25


def test_retry_after_clamped_to_default_cap_when_unset():
    policy = RetryPolicy(max_attempts=3)
    error = FMRateLimitError("429", retry_after_s=3600.0)
    assert policy.delay_for(error, attempt=1) == DEFAULT_RETRY_AFTER_CAP_S


def test_reasonable_retry_after_honoured_verbatim():
    policy = RetryPolicy(max_attempts=3, max_backoff_s=10.0)
    error = FMRateLimitError("429", retry_after_s=0.5)
    assert policy.delay_for(error, attempt=1) == 0.5


def test_negative_retry_after_floored_at_zero():
    policy = RetryPolicy(max_attempts=3)
    error = FMRateLimitError("429", retry_after_s=-5.0)
    assert policy.delay_for(error, attempt=1) == 0.0


def test_no_hint_falls_back_to_backoff_schedule():
    policy = RetryPolicy(
        max_attempts=4, backoff_s=0.1, backoff_multiplier=2.0, max_backoff_s=0.3
    )
    error = FMRateLimitError("429")
    assert policy.delay_for(error, attempt=1) == pytest.approx(0.1)
    assert policy.delay_for(error, attempt=2) == pytest.approx(0.2)
    assert policy.delay_for(error, attempt=3) == pytest.approx(0.3)  # capped


# ----------------------------------------------------------------------
# Scripted 3600s Retry-After through the real retry loops.  The sleep
# functions are patched so the regression is asserted on the *requested*
# sleep durations, not on the test's own wall clock.
# ----------------------------------------------------------------------
def test_sync_loop_clamps_hostile_retry_after():
    client = _client([_hostile_429(), "recovered"])
    executor = SerialExecutor(
        retry=RetryPolicy(max_attempts=3, max_backoff_s=0.05)
    )
    slept: list[float] = []
    with mock.patch("repro.fm.executor.time.sleep", side_effect=slept.append):
        results = executor.run(client, [FMRequest("p")])
    assert results[0].unwrap().text == "recovered"
    assert slept == [0.05]


def test_sync_loop_applies_default_cap_without_max_backoff():
    client = _client([_hostile_429(), "recovered"])
    executor = SerialExecutor(retry=RetryPolicy(max_attempts=3))
    slept: list[float] = []
    with mock.patch("repro.fm.executor.time.sleep", side_effect=slept.append):
        results = executor.run(client, [FMRequest("p")])
    assert results[0].ok
    assert slept == [DEFAULT_RETRY_AFTER_CAP_S]
    # The capped hour was still charged as wait time.
    assert client.ledger.snapshot()["wait_s"] == DEFAULT_RETRY_AFTER_CAP_S


def test_thread_loop_clamps_hostile_retry_after():
    client = _client([_hostile_429(), "recovered"])
    slept: list[float] = []
    with ThreadPoolFMExecutor(
        2, retry=RetryPolicy(max_attempts=3, max_backoff_s=0.05)
    ) as executor:
        with mock.patch("repro.fm.executor.time.sleep", side_effect=slept.append):
            results = executor.run(client, [FMRequest("p")])
    assert results[0].ok
    assert slept == [0.05]


def test_async_loop_clamps_hostile_retry_after():
    client = _client([_hostile_429(), "recovered"])
    requested: list[float] = []
    real_async_sleep = None

    import asyncio

    real_async_sleep = asyncio.sleep

    async def recording_sleep(delay, *args, **kwargs):
        requested.append(delay)
        return await real_async_sleep(0)

    with AsyncFMExecutor(
        2, retry=RetryPolicy(max_attempts=3, max_backoff_s=0.05)
    ) as executor:
        with mock.patch(
            "repro.fm.executor.asyncio.sleep", side_effect=recording_sleep
        ):
            results = executor.run(client, [FMRequest("p")])
    assert results[0].unwrap().text == "recovered"
    assert 0.05 in requested
    assert all(delay <= DEFAULT_RETRY_AFTER_CAP_S for delay in requested)


def test_async_loop_applies_default_cap_without_max_backoff():
    client = _client([_hostile_429(), "recovered"])
    requested: list[float] = []

    import asyncio

    real_async_sleep = asyncio.sleep

    async def recording_sleep(delay, *args, **kwargs):
        requested.append(delay)
        return await real_async_sleep(0)

    with AsyncFMExecutor(2, retry=RetryPolicy(max_attempts=3)) as executor:
        with mock.patch(
            "repro.fm.executor.asyncio.sleep", side_effect=recording_sleep
        ):
            results = executor.run(client, [FMRequest("p")])
    assert results[0].ok
    assert DEFAULT_RETRY_AFTER_CAP_S in requested
    assert 3600.0 not in requested


# ----------------------------------------------------------------------
# Wait charging: backoff dead time is budget spend.
# ----------------------------------------------------------------------
def test_retry_sleep_charged_to_ledger_and_budget():
    budget = Budget(max_latency_s=100.0)
    client = _client([_hostile_429(2.0), "recovered"], budget=budget)
    executor = SerialExecutor(retry=RetryPolicy(max_attempts=3, max_backoff_s=5.0))
    with mock.patch("repro.fm.executor.time.sleep"):
        results = executor.run(client, [FMRequest("p")])
    assert results[0].ok
    snapshot = client.ledger.snapshot()
    assert snapshot["wait_s"] == 2.0
    # The budget's latency axis metered the dead time on top of the
    # call's own latency.
    assert budget.snapshot()["spent_latency_s"] >= 2.0


def test_wait_that_trips_budget_returns_budget_error_without_sleeping():
    budget = Budget(max_latency_s=1.0)
    client = _client([_hostile_429(30.0), "never reached"], budget=budget)
    executor = SerialExecutor(retry=RetryPolicy(max_attempts=3, max_backoff_s=60.0))
    started = time.monotonic()
    results = executor.run(client, [FMRequest("p")])
    elapsed = time.monotonic() - started
    assert isinstance(results[0].error, FMBudgetExceededError)
    # The 30s wait was refused, not slept.
    assert elapsed < 5.0
    # The scripted success was never consumed: the run stopped spending.
    assert client.transport.script[1] == "never reached"
    assert len(client.transport.requests) == 1


def test_async_wait_that_trips_budget_returns_budget_error():
    budget = Budget(max_latency_s=1.0)
    client = _client([_hostile_429(30.0), "never reached"], budget=budget)
    with AsyncFMExecutor(
        2, retry=RetryPolicy(max_attempts=3, max_backoff_s=60.0)
    ) as executor:
        started = time.monotonic()
        results = executor.run(client, [FMRequest("p")])
        elapsed = time.monotonic() - started
    assert isinstance(results[0].error, FMBudgetExceededError)
    assert elapsed < 5.0
    assert len(client.transport.requests) == 1


def test_zero_backoff_charges_no_wait():
    client = _client([_hostile_429(0.0), "recovered"])
    executor = SerialExecutor(retry=RetryPolicy(max_attempts=3, backoff_s=0.0))
    results = executor.run(client, [FMRequest("p")])
    assert results[0].ok
    assert client.ledger.snapshot()["wait_s"] == 0.0
