"""Failure injection for :class:`RetryPolicy`: transient errors (including
a simulated HTTP 429 path) must exhaust retries exactly as configured,
sleep the configured backoff sequence, and leave submission-order state
reservation uncorrupted when a call fails permanently."""

import threading

import pytest

from repro.fm import (
    FMError,
    FMParseError,
    FMRateLimitError,
    FMRequest,
    RetryPolicy,
    ScriptedFM,
    SerialExecutor,
    ThreadPoolFMExecutor,
)
from repro.fm.base import FMClient


class FlakyFM(FMClient):
    """Raises *error_factory()* for the first *failures* tries per prompt."""

    def __init__(self, failures: int = 1, error_factory=FMError) -> None:
        super().__init__(model="flaky")
        self.failures = failures
        self.error_factory = error_factory
        self.attempts: dict[str, int] = {}
        self._lock = threading.Lock()

    def _complete_text(self, prompt: str, temperature: float) -> str:
        with self._lock:
            seen = self.attempts.get(prompt, 0)
            self.attempts[prompt] = seen + 1
        if seen < self.failures:
            raise self.error_factory(f"transient failure {seen + 1} for {prompt}")
        return f"ok:{prompt}"


class TestBackoffSchedule:
    def test_constant_backoff_by_default(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.5)
        assert [policy.backoff_for(a) for a in (1, 2, 3)] == [0.5, 0.5, 0.5]

    def test_exponential_backoff(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.25, backoff_multiplier=2.0)
        assert [policy.backoff_for(a) for a in (1, 2, 3, 4)] == [0.25, 0.5, 1.0, 2.0]

    def test_backoff_cap(self):
        policy = RetryPolicy(
            max_attempts=6, backoff_s=1.0, backoff_multiplier=3.0, max_backoff_s=4.0
        )
        assert [policy.backoff_for(a) for a in (1, 2, 3, 4)] == [1.0, 3.0, 4.0, 4.0]

    def test_executor_sleeps_the_configured_sequence(self, monkeypatch):
        import repro.fm.executor as executor_module

        slept: list[float] = []
        monkeypatch.setattr(executor_module.time, "sleep", slept.append)
        fm = FlakyFM(failures=3, error_factory=FMRateLimitError)
        executor = SerialExecutor(
            retry=RetryPolicy(max_attempts=4, backoff_s=0.1, backoff_multiplier=2.0)
        )
        results = executor.run(fm, [FMRequest("p")])
        assert results[0].ok
        assert results[0].attempts == 4
        assert slept == pytest.approx([0.1, 0.2, 0.4])

    def test_no_sleep_when_backoff_zero(self, monkeypatch):
        import repro.fm.executor as executor_module

        slept: list[float] = []
        monkeypatch.setattr(executor_module.time, "sleep", slept.append)
        fm = FlakyFM(failures=1)
        SerialExecutor(retry=RetryPolicy(max_attempts=2)).run(fm, [FMRequest("p")])
        assert slept == []


class TestSimulated429:
    def test_rate_limit_is_transient_and_recoverable(self):
        fm = FlakyFM(failures=2, error_factory=FMRateLimitError)
        executor = SerialExecutor(retry=RetryPolicy(max_attempts=3))
        results = executor.run(fm, [FMRequest("p")])
        assert results[0].ok
        assert results[0].response.text == "ok:p"
        assert executor.stats.n_retries == 2
        assert fm.ledger.n_calls == 1  # retries are not extra ledger calls

    def test_rate_limit_carries_retry_after(self):
        err = FMRateLimitError("slow down", retry_after_s=1.5)
        assert err.retry_after_s == 1.5
        assert isinstance(err, FMError)

    def test_persistent_429_exhausts_retries(self):
        fm = FlakyFM(failures=99, error_factory=FMRateLimitError)
        executor = ThreadPoolFMExecutor(2, retry=RetryPolicy(max_attempts=3))
        results = executor.run(fm, [FMRequest("p")])
        assert not results[0].ok
        assert isinstance(results[0].error, FMRateLimitError)
        assert results[0].attempts == 3
        assert fm.attempts["p"] == 3  # exactly max_attempts tries, no more
        assert executor.stats.n_errors == 1
        assert fm.ledger.n_calls == 0  # nothing succeeded, nothing recorded

    def test_retry_on_filter_excludes_other_errors(self):
        policy = RetryPolicy(max_attempts=3, retry_on=(FMRateLimitError,))
        fm = FlakyFM(failures=2, error_factory=FMParseError)
        results = SerialExecutor(retry=policy).run(fm, [FMRequest("p")])
        assert not results[0].ok
        assert results[0].attempts == 1  # FMParseError not in retry_on


class FailOnceByState(ScriptedFM):
    """A list-scripted client whose *poison* cursor position raises once.

    Models a stateful deterministic backend where one reserved slot dies:
    the retry must reserve a *fresh* slot rather than reusing or
    corrupting neighbours' reservations.
    """

    def __init__(self, responses, poison: int) -> None:
        super().__init__(responses)
        self.poison = poison
        self.raised = False

    def _complete_with_state(self, prompt, temperature, state):
        if state == self.poison and not self.raised:
            self.raised = True
            raise FMError(f"state {state} died")
        return super()._complete_with_state(prompt, temperature, state)


class TestStateReservationUnderFailure:
    @pytest.mark.parametrize(
        "make_executor", [SerialExecutor, lambda retry=None: ThreadPoolFMExecutor(4, retry=retry)]
    )
    def test_permanent_failure_does_not_shift_neighbour_state(self, make_executor):
        """With retries off, request 1 fails and requests 0/2/3 still get
        exactly their submission-order responses."""
        fm = FailOnceByState([f"r{i}" for i in range(4)], poison=1)
        try:
            executor = make_executor()
        except TypeError:
            executor = make_executor(None)
        results = executor.run(fm, [FMRequest(f"p{i}") for i in range(4)])
        assert [r.response.text if r.ok else None for r in results] == ["r0", None, "r2", "r3"]
        assert isinstance(results[1].error, FMError)
        assert fm.ledger.n_calls == 3

    def test_serial_retry_reserves_the_next_slot(self):
        """SerialExecutor reserves state lazily, one request at a time, so
        a retry consumes the *next* cursor slot and later requests shift
        — reservation order still never reuses or skips a slot."""
        fm = FailOnceByState([f"r{i}" for i in range(5)], poison=1)
        executor = SerialExecutor(retry=RetryPolicy(max_attempts=2))
        results = executor.run(fm, [FMRequest(f"p{i}") for i in range(4)])
        # Request 1's first try (slot 1) died; its retry got slot 2.
        assert [r.response.text for r in results] == ["r0", "r2", "r3", "r4"]
        assert results[1].attempts == 2
        assert executor.stats.n_retries == 1

    def test_threaded_retry_reserves_after_the_batch(self):
        """ThreadPoolFMExecutor reserves the whole batch up front, so a
        retry's fresh slot lands *after* the batch — the surviving
        requests keep exactly their original submission-order slots.
        (Divergence from the serial path is only reachable for clients
        that raise; deterministic clients never do.)"""
        fm = FailOnceByState([f"r{i}" for i in range(5)], poison=1)
        executor = ThreadPoolFMExecutor(4, retry=RetryPolicy(max_attempts=2))
        results = executor.run(fm, [FMRequest(f"p{i}") for i in range(4)])
        # Slots 0-3 reserved up front; request 1's retry got slot 4.
        assert [r.response.text for r in results] == ["r0", "r4", "r2", "r3"]
        assert results[1].attempts == 2
        assert executor.stats.n_retries == 1

    def test_one_error_surfaces_once(self):
        """A permanently failing call yields exactly one failed result —
        it is not double-counted across retries."""
        fm = ScriptedFM(["only"])
        executor = SerialExecutor(retry=RetryPolicy(max_attempts=3))
        results = executor.run(fm, [FMRequest("a"), FMRequest("b")])
        assert results[0].ok
        assert not results[1].ok
        assert executor.stats.n_errors == 1
        # Exhaustion attempts: first try + 2 retries, each reserving a
        # fresh (also exhausted) slot.
        assert results[1].attempts == 3
