"""Unit tests for the SimulatedFM against the real prompt templates."""

import json

import pytest

from repro.core import DataAgenda, prompts
from repro.core.types import FeatureCandidate, OperatorFamily
from repro.dataframe import DataFrame
from repro.fm import SimulatedFM
from repro.fm.simulated import parse_agenda


@pytest.fixture
def frame():
    return DataFrame(
        {
            "Age": [21, 35, 42, 22, 45, 56],
            "Income": [30.0, 80.0, 95.0, 25.0, 110.0, 70.0],
            "City": ["SF", "LA", "SEA", "SF", "SEA", "LA"],
            "HasClaim": [1, 0, 0, 1, 0, 0],
            "Safe": [0, 1, 1, 0, 1, 1],
        }
    )


@pytest.fixture
def agenda(frame):
    return DataAgenda.from_dataframe(
        frame,
        target="Safe",
        descriptions={
            "Age": "Age of the policyholder in years",
            "Income": "Annual income in thousands of dollars",
            "City": "City of residence",
            "HasClaim": "Whether a claim was filed in the last 6 months",
        },
        title="Car insurance policyholders",
        target_description="1 = safe driver",
        model="random_forest",
    )


class TestAgendaParsing:
    def test_roundtrip_through_prompt(self, agenda):
        view = parse_agenda(agenda.describe())
        assert set(view.features) == {"Age", "Income", "City", "HasClaim"}
        assert view.target == "Safe"
        assert view.model == "random_forest"
        assert view.features["City"].kind == "categorical"
        assert view.features["City"].values == ["SF", "LA", "SEA"]
        assert view.features["HasClaim"].kind == "binary"

    def test_roles_inferred(self, agenda):
        view = parse_agenda(agenda.describe())
        assert view.features["Age"].role.value == "age"
        assert view.features["Income"].role.value == "money"
        assert view.features["City"].role.value == "city"


class TestUnaryAnswers:
    def test_age_gets_bucketization_certain(self, agenda):
        fm = SimulatedFM(seed=0)
        text = fm.complete(prompts.unary_proposal_prompt(agenda, "Age")).text
        assert "bucketization" in text
        assert "(certain)" in text

    def test_insurance_context_selects_insurance_bands(self, agenda):
        fm = SimulatedFM(seed=0)
        text = fm.complete(prompts.unary_proposal_prompt(agenda, "Age")).text
        assert "age_insurance" in text

    def test_money_gets_log_transform(self, agenda):
        fm = SimulatedFM(seed=0)
        text = fm.complete(prompts.unary_proposal_prompt(agenda, "Income")).text
        assert "log_transform (certain)" in text

    def test_low_cardinality_categorical_gets_dummies(self, agenda):
        fm = SimulatedFM(seed=0)
        text = fm.complete(prompts.unary_proposal_prompt(agenda, "City")).text
        assert "get_dummies (certain)" in text

    def test_binary_column_gets_none(self, agenda):
        fm = SimulatedFM(seed=0)
        text = fm.complete(prompts.unary_proposal_prompt(agenda, "HasClaim")).text
        assert text.startswith("none")

    def test_dnn_model_prefers_minmax(self, agenda):
        agenda = agenda.copy()
        agenda.model = "dnn"
        fm = SimulatedFM(seed=0)
        text = fm.complete(prompts.unary_proposal_prompt(agenda, "Income")).text
        assert "normalization[minmax]" in text

    def test_tree_model_prefers_zscore(self, agenda):
        fm = SimulatedFM(seed=0)
        text = fm.complete(prompts.unary_proposal_prompt(agenda, "Income")).text
        assert "normalization[zscore]" in text

    def test_unknown_attribute_answers_none(self, agenda):
        fm = SimulatedFM(seed=0)
        prompt = prompts.unary_proposal_prompt(agenda, "Age").replace('"Age"', '"Bogus"')
        assert fm.complete(prompt).text.startswith("none")

    def test_deterministic_at_temperature_zero(self, agenda):
        prompt = prompts.unary_proposal_prompt(agenda, "Age")
        assert SimulatedFM(seed=0).complete(prompt).text == SimulatedFM(seed=0).complete(prompt).text


class TestBinaryAnswers:
    def test_valid_json_with_known_columns(self, agenda):
        fm = SimulatedFM(seed=0)
        payload = json.loads(fm.complete(prompts.binary_sampling_prompt(agenda), temperature=0.7).text)
        assert payload["operator"] in "+-*/"
        assert all(c in agenda.feature_names for c in payload["columns"])
        assert payload["description"].startswith("binary[")

    def test_sampling_varies_across_calls(self):
        wide = DataFrame(
            {
                "income": [1.0, 2.0, 3.0],
                "loan": [4.0, 5.0, 6.0],
                "n_children": [0, 1, 2],
                "balance": [9.0, 8.0, 7.0],
                "y": [0, 1, 0],
            }
        )
        agenda = DataAgenda.from_dataframe(wide, target="y")
        fm = SimulatedFM(seed=0)
        prompt = prompts.binary_sampling_prompt(agenda)
        names = {json.loads(fm.complete(prompt, temperature=0.7).text)["name"] for _ in range(10)}
        assert len(names) >= 2

    def test_no_numeric_pairs_gracefully_declines(self, frame):
        narrow = DataAgenda.from_dataframe(frame[["City", "Safe"]], target="Safe")
        fm = SimulatedFM(seed=0)
        payload = json.loads(fm.complete(prompts.binary_sampling_prompt(narrow), temperature=0.7).text)
        assert payload["operator"] is None


class TestHighOrderAnswers:
    def test_valid_combo(self, agenda):
        fm = SimulatedFM(seed=0)
        payload = json.loads(
            fm.complete(prompts.high_order_sampling_prompt(agenda), temperature=0.7).text
        )
        assert payload["groupby_col"]
        assert payload["agg_col"] in agenda.feature_names
        assert payload["function"] in ("mean", "max", "min", "sum", "count")

    def test_claim_history_favoured_as_aggregate(self, agenda):
        # 'HasClaim' shares words with the claim-themed target description,
        # so across repeated samples it should dominate the agg column.
        fm = SimulatedFM(seed=1)
        agenda = agenda.copy()
        agenda.target_description = "1 = unlikely to file an insurance claim"
        prompt = prompts.high_order_sampling_prompt(agenda)
        picks = [
            json.loads(fm.complete(prompt, temperature=0.7).text)["agg_col"] for _ in range(12)
        ]
        assert picks.count("HasClaim") >= 4


class TestExtractorAnswers:
    def test_city_knowledge_candidate(self, agenda):
        fm = SimulatedFM(seed=0)
        found = set()
        for _ in range(10):
            payload = json.loads(
                fm.complete(prompts.extractor_sampling_prompt(agenda), temperature=0.7).text
            )
            found.add(payload["name"])
        assert any("population_density" in n for n in found)

    def test_kind_is_function_for_listed_values(self, agenda):
        fm = SimulatedFM(seed=3)
        for _ in range(10):
            payload = json.loads(
                fm.complete(prompts.extractor_sampling_prompt(agenda), temperature=0.7).text
            )
            if "population_density" in payload["name"]:
                assert payload["kind"] == "function"
                break
        else:
            pytest.fail("density candidate never sampled")


class TestFunctionAnswers:
    def test_generates_runnable_code(self, agenda):
        fm = SimulatedFM(seed=0)
        candidate = FeatureCandidate(
            name="bucketization_Age",
            columns=["Age"],
            description="bucketization[age_insurance]: Age in insurance bands",
            family=OperatorFamily.UNARY,
        )
        text = fm.complete(prompts.function_generation_prompt(agenda, candidate)).text
        assert "```python" in text
        assert "def transform" in text


class TestRowCompletion:
    def test_density_lookup(self):
        fm = SimulatedFM(seed=0)
        prompt = prompts.row_completion_prompt("City_population_density", {"City": "SF"})
        assert float(fm.complete(prompt).text) == 18630.0

    def test_unknown_topic_answers_unknown(self):
        fm = SimulatedFM(seed=0)
        prompt = prompts.row_completion_prompt("favourite_colour", {"City": "SF"})
        assert fm.complete(prompt).text == "unknown"


class TestErrorInjection:
    def test_error_rate_one_always_garbles(self, agenda):
        fm = SimulatedFM(seed=0, error_rate=1.0)
        text = fm.complete(prompts.binary_sampling_prompt(agenda), temperature=0.7).text
        assert "operator" not in text or "{" not in text or not text.strip().endswith("}")

    def test_error_rate_zero_never_garbles(self, agenda):
        fm = SimulatedFM(seed=0, error_rate=0.0)
        for _ in range(5):
            text = fm.complete(prompts.binary_sampling_prompt(agenda), temperature=0.7).text
            assert text.startswith("{")


class TestAccounting:
    def test_gpt4_labeled_client_costs_more(self, agenda):
        prompt = prompts.binary_sampling_prompt(agenda)
        big = SimulatedFM(seed=0, model="gpt-4")
        small = SimulatedFM(seed=0, model="gpt-3.5-turbo")
        big.complete(prompt)
        small.complete(prompt)
        assert big.ledger.cost_usd > small.ledger.cost_usd
