"""Adversarial failure injection for the transport-backed FM stack.

Scripted transports drive 429 storms, interleaved timeouts/resets, and
server errors through the retry machinery under every executor backend,
asserting the invariants that make failure survivable: ``Retry-After``
is honoured over the computed backoff, exhaustion surfaces the original
error class, and — the load-bearing one — ledger and budget state stay
mutually consistent after *every* failure mode, including budgets that
trip while a batch is in flight.
"""

import threading
import time

import pytest

from repro.fm import (
    AsyncFMExecutor,
    Budget,
    FMBudgetExceededError,
    FMConnectionError,
    FMError,
    FMRateLimitError,
    FMRequest,
    FMServerError,
    FMTimeoutError,
    RetryPolicy,
    ScriptedTransport,
    SerialExecutor,
    SimulatedHTTPTransport,
    ThreadPoolFMExecutor,
    TransportConnectionReset,
    TransportFMClient,
    TransportRequest,
    TransportResponse,
    TransportTimeout,
)

BACKENDS = [
    ("serial", lambda retry: SerialExecutor(retry=retry)),
    ("thread", lambda retry: ThreadPoolFMExecutor(4, retry=retry)),
    ("async", lambda retry: AsyncFMExecutor(4, retry=retry)),
]


def _run(make_executor, client, requests, retry=None):
    executor = make_executor(retry)
    try:
        return executor.run(client, requests), executor
    finally:
        close = getattr(executor, "close", None)
        if close is not None:
            close()


def _rate_limited(retry_after_s=None):
    return TransportResponse(status=429, retry_after_s=retry_after_s)


class TestStatusMapping:
    def test_success_returns_body(self):
        client = TransportFMClient(ScriptedTransport(["hello"]))
        assert client.complete("p").text == "hello"

    def test_429_maps_to_rate_limit_with_retry_after(self):
        client = TransportFMClient(ScriptedTransport([_rate_limited(1.25)]))
        with pytest.raises(FMRateLimitError) as excinfo:
            client.complete("p")
        assert excinfo.value.retry_after_s == 1.25

    def test_5xx_maps_to_server_error(self):
        client = TransportFMClient(ScriptedTransport([TransportResponse(status=503)]))
        with pytest.raises(FMServerError) as excinfo:
            client.complete("p")
        assert excinfo.value.status == 503

    def test_timeout_and_reset_map_to_fm_errors(self):
        client = TransportFMClient(
            ScriptedTransport([TransportTimeout("deadline"), TransportConnectionReset("rst")])
        )
        with pytest.raises(FMTimeoutError):
            client.complete("p")
        with pytest.raises(FMConnectionError):
            client.complete("p")

    def test_unexpected_4xx_is_plain_fm_error(self):
        client = TransportFMClient(ScriptedTransport([TransportResponse(status=404)]))
        with pytest.raises(FMError):
            client.complete("p")

    def test_failed_calls_never_reach_the_ledger(self):
        client = TransportFMClient(
            ScriptedTransport([_rate_limited(), TransportResponse(status=500), "ok"])
        )
        for _ in range(2):
            with pytest.raises(FMError):
                client.complete("p")
        assert client.complete("p").text == "ok"
        assert client.ledger.n_calls == 1  # only the success recorded

    def test_transport_client_is_stateless(self):
        assert TransportFMClient(ScriptedTransport([])).is_stateless()

    def test_measured_latency_reaches_the_ledger(self):
        """The transport's reported latency replaces the token-modelled
        estimate — the ledger for a real backend records real time."""
        client = TransportFMClient(
            ScriptedTransport(
                [
                    TransportResponse(status=200, text="a", latency_s=1.5),
                    TransportResponse(status=200, text="b", latency_s=2.25),
                ]
            )
        )
        client.complete("p1")
        client.complete("p2")
        assert client.ledger.latency_s == pytest.approx(3.75)

    def test_unmeasured_latency_keeps_the_modelled_value(self):
        client = TransportFMClient(ScriptedTransport(["bare string"]))
        response = client.complete("p")
        assert response.latency_s > 0  # cost-model estimate, not zero

    def test_measured_latency_isolated_across_async_tasks(self):
        transport = SimulatedHTTPTransport(
            base_latency_s=0.001, jitter_s=0.05, seed=9, sleep=False
        )
        client = TransportFMClient(transport)
        with AsyncFMExecutor(8) as executor:
            results = executor.run(client, [FMRequest(f"p{i}") for i in range(16)])
        # Each response must carry its own request's drawn latency, so
        # the per-response values differ (jitter) and sum to the ledger.
        latencies = [r.response.latency_s for r in results]
        assert len(set(latencies)) > 1
        assert client.ledger.latency_s == pytest.approx(sum(latencies))


class TestRateLimitStorms:
    @pytest.mark.parametrize("name,make_executor", BACKENDS)
    def test_429_storm_recovers_within_retry_budget(self, name, make_executor):
        transport = ScriptedTransport([_rate_limited(0.0)] * 3 + ["recovered"])
        client = TransportFMClient(transport)
        results, executor = _run(
            make_executor, client, [FMRequest("p")], RetryPolicy(max_attempts=4)
        )
        assert results[0].ok
        assert results[0].response.text == "recovered"
        assert results[0].attempts == 4
        assert executor.stats.n_retries == 3
        assert client.ledger.n_calls == 1

    @pytest.mark.parametrize("name,make_executor", BACKENDS)
    def test_storm_exhaustion_surfaces_rate_limit_error(self, name, make_executor):
        transport = ScriptedTransport([_rate_limited(0.0)] * 10)
        client = TransportFMClient(transport)
        results, executor = _run(
            make_executor, client, [FMRequest("p")], RetryPolicy(max_attempts=3)
        )
        assert not results[0].ok
        assert isinstance(results[0].error, FMRateLimitError)
        assert results[0].attempts == 3
        assert len(transport.requests) == 3  # exactly max_attempts sends
        assert client.ledger.n_calls == 0
        assert executor.stats.n_errors == 1

    def test_storm_across_a_batch_keeps_request_order(self):
        # Every request 429s once, then succeeds with its own body; the
        # concurrent backends must still map responses to requests.
        lock = threading.Lock()
        first_seen: set[str] = set()

        class OncePerPrompt429(ScriptedTransport):
            def send(self, request: TransportRequest) -> TransportResponse:
                with lock:
                    fresh = request.prompt not in first_seen
                    first_seen.add(request.prompt)
                if fresh:
                    raise_after = _rate_limited(0.0)
                    return raise_after
                return TransportResponse(status=200, text=f"body:{request.prompt}")

        client = TransportFMClient(OncePerPrompt429([]))
        with AsyncFMExecutor(4, retry=RetryPolicy(max_attempts=2)) as executor:
            results = executor.run(
                client, [FMRequest(f"p{i}") for i in range(8)]
            )
        assert [r.response.text for r in results] == [f"body:p{i}" for i in range(8)]
        assert all(r.attempts == 2 for r in results)
        assert client.ledger.n_calls == 8


class TestRetryAfterVsBackoff:
    def test_retry_after_overrides_computed_backoff(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=10.0, backoff_multiplier=2.0)
        hinted = FMRateLimitError("429", retry_after_s=0.25)
        unhinted = FMRateLimitError("429")
        assert policy.delay_for(hinted, attempt=1) == 0.25
        assert policy.delay_for(hinted, attempt=3) == 0.25  # hint, not schedule
        assert policy.delay_for(unhinted, attempt=2) == 20.0

    def test_retry_after_capped_by_max_backoff(self):
        policy = RetryPolicy(max_attempts=2, backoff_s=0.1, max_backoff_s=1.0)
        assert policy.delay_for(FMRateLimitError("429", retry_after_s=60.0), 1) == 1.0

    def test_non_rate_limit_errors_use_the_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.5, backoff_multiplier=2.0)
        assert policy.delay_for(FMServerError("boom"), attempt=2) == 1.0

    def test_executor_sleeps_the_server_hint_not_the_schedule(self, monkeypatch):
        import repro.fm.executor as executor_module

        slept: list[float] = []
        monkeypatch.setattr(executor_module.time, "sleep", slept.append)
        transport = ScriptedTransport(
            [_rate_limited(0.05), _rate_limited(0.07), "ok"]
        )
        client = TransportFMClient(transport)
        executor = SerialExecutor(
            retry=RetryPolicy(max_attempts=3, backoff_s=30.0, backoff_multiplier=2.0)
        )
        results = executor.run(client, [FMRequest("p")])
        assert results[0].ok
        assert slept == pytest.approx([0.05, 0.07])

    def test_async_executor_honours_the_hint_in_real_time(self):
        transport = ScriptedTransport([_rate_limited(0.02), "ok"])
        client = TransportFMClient(transport)
        with AsyncFMExecutor(
            2, retry=RetryPolicy(max_attempts=2, backoff_s=30.0)
        ) as executor:
            started = time.perf_counter()
            results = executor.run(client, [FMRequest("p")])
            elapsed = time.perf_counter() - started
        assert results[0].ok
        assert 0.02 <= elapsed < 5.0  # slept the hint, not the 30s schedule


class TestInterleavedWireFailures:
    @pytest.mark.parametrize("name,make_executor", BACKENDS)
    def test_timeout_reset_5xx_sequence_recovers(self, name, make_executor):
        transport = ScriptedTransport(
            [
                TransportTimeout("deadline"),
                TransportConnectionReset("rst"),
                TransportResponse(status=500),
                "survived",
            ]
        )
        client = TransportFMClient(transport)
        results, executor = _run(
            make_executor, client, [FMRequest("p")], RetryPolicy(max_attempts=4)
        )
        assert results[0].ok
        assert results[0].response.text == "survived"
        assert results[0].attempts == 4
        assert client.ledger.n_calls == 1

    def test_mixed_batch_isolates_failures_per_request(self):
        # Request 0 succeeds, request 1 dies permanently, request 2
        # recovers — each outcome independent, ledger counts only wins.
        class PerPrompt(ScriptedTransport):
            def send(self, request: TransportRequest) -> TransportResponse:
                if request.prompt == "dead":
                    raise TransportTimeout("always")
                if request.prompt == "flaky":
                    with self._lock:
                        self._cursor += 1
                        flaky_attempt = self._cursor
                    if flaky_attempt == 1:
                        raise TransportConnectionReset("rst")
                return TransportResponse(status=200, text=f"ok:{request.prompt}")

        client = TransportFMClient(PerPrompt([]))
        with ThreadPoolFMExecutor(3, retry=RetryPolicy(max_attempts=2)) as executor:
            results = executor.run(
                client, [FMRequest("fine"), FMRequest("dead"), FMRequest("flaky")]
            )
        assert results[0].ok and results[0].response.text == "ok:fine"
        assert not results[1].ok and isinstance(results[1].error, FMTimeoutError)
        assert results[2].ok and results[2].attempts == 2
        assert client.ledger.n_calls == 2
        assert executor.stats.n_errors == 1

    def test_script_exhaustion_is_a_reset_not_a_crash(self):
        client = TransportFMClient(ScriptedTransport(["only"]))
        assert client.complete("a").text == "only"
        with pytest.raises(FMConnectionError):
            client.complete("b")


class TestBudgetTripsMidFlight:
    def _consistent(self, client, budget):
        """Ledger and budget must agree after any failure mode."""
        assert budget.spent_calls == client.ledger.n_calls
        assert budget.spent_cost_usd == pytest.approx(client.ledger.cost_usd)

    @pytest.mark.parametrize("name,make_executor", BACKENDS)
    def test_budget_trip_mid_batch_is_fully_accounted(self, name, make_executor):
        budget = Budget(max_calls=2)
        client = TransportFMClient(
            ScriptedTransport([f"r{i}" for i in range(6)]), budget=budget
        )
        with pytest.raises(FMBudgetExceededError) as excinfo:
            _run(make_executor, client, [FMRequest(f"p{i}") for i in range(6)])
        assert excinfo.value.axis == "calls"
        # Batch granularity: every call in the in-flight batch was issued
        # and charged before the error surfaced.
        assert client.ledger.n_calls == 6
        self._consistent(client, budget)

    @pytest.mark.parametrize("name,make_executor", BACKENDS)
    def test_exhausted_budget_blocks_the_next_batch(self, name, make_executor):
        budget = Budget(max_calls=1)
        client = TransportFMClient(ScriptedTransport(["a", "b"]), budget=budget)
        with pytest.raises(FMBudgetExceededError):
            _run(make_executor, client, [FMRequest("p0"), FMRequest("p1")])
        spent_before = budget.spent_calls
        with pytest.raises(FMBudgetExceededError):
            _run(make_executor, client, [FMRequest("p2")])
        assert budget.spent_calls == spent_before  # pre-flight: nothing new issued
        self._consistent(client, budget)

    def test_budget_never_charged_for_failed_calls(self):
        budget = Budget(max_calls=10)
        client = TransportFMClient(
            ScriptedTransport([_rate_limited(0.0)] * 3 + ["ok"]), budget=budget
        )
        with AsyncFMExecutor(2, retry=RetryPolicy(max_attempts=4)) as executor:
            results = executor.run(client, [FMRequest("p")])
        assert results[0].ok
        assert budget.spent_calls == 1  # three 429s cost no budget
        self._consistent(client, budget)

    def test_budget_trip_during_retries_stays_consistent(self):
        # The second request's success crosses the budget while the
        # first is still retrying: everything issued is charged, the
        # error surfaces once, and the meters agree afterwards.
        budget = Budget(max_calls=1)
        client = TransportFMClient(
            ScriptedTransport([_rate_limited(0.0), "r0", "r1"]), budget=budget
        )
        with pytest.raises(FMBudgetExceededError):
            with AsyncFMExecutor(2, retry=RetryPolicy(max_attempts=3)) as executor:
                executor.run(client, [FMRequest("p0"), FMRequest("p1")])
        assert client.ledger.n_calls == 2
        self._consistent(client, budget)


class TestSimulatedHTTPTransportDeterminism:
    def test_outcomes_keyed_on_prompt_and_attempt(self):
        def outcomes(transport, prompt):
            try:
                return transport.send(TransportRequest("m", prompt)).status
            except TransportTimeout:
                return "timeout"
            except TransportConnectionReset:
                return "reset"

        a = SimulatedHTTPTransport(
            rate_limit_rate=0.3, timeout_rate=0.2, reset_rate=0.1, seed=3, sleep=False
        )
        b = SimulatedHTTPTransport(
            rate_limit_rate=0.3, timeout_rate=0.2, reset_rate=0.1, seed=3, sleep=False
        )
        prompts = [f"p{i}" for i in range(40)]
        seq_a = [outcomes(a, p) for p in prompts]
        seq_b = [outcomes(b, p) for p in prompts]
        assert seq_a == seq_b  # same seed, same fate, any interleaving
        assert len(set(seq_a)) > 1  # the schedule actually mixes outcomes

    def test_attempts_reroll_failures(self):
        transport = SimulatedHTTPTransport(
            rate_limit_rate=0.5, seed=11, sleep=False, retry_after_s=0.0
        )
        client = TransportFMClient(transport)
        retry = RetryPolicy(max_attempts=8)
        results, _ = _run(
            lambda r: SerialExecutor(retry=r),
            client,
            [FMRequest(f"p{i}") for i in range(12)],
            retry,
        )
        assert all(r.ok for r in results)  # every prompt recovered eventually
        assert transport.stats.n_rate_limited > 0  # and some really were limited

    def test_failure_rates_validated(self):
        with pytest.raises(ValueError):
            SimulatedHTTPTransport(rate_limit_rate=0.8, server_error_rate=0.5)

    def test_stats_account_every_send(self):
        transport = SimulatedHTTPTransport(
            rate_limit_rate=0.25, server_error_rate=0.25, seed=5, sleep=False
        )
        client = TransportFMClient(transport)
        with ThreadPoolFMExecutor(4, retry=RetryPolicy(max_attempts=5)) as executor:
            executor.run(client, [FMRequest(f"p{i}") for i in range(20)])
        stats = transport.stats.snapshot()
        assert stats["n_sent"] == (
            stats["n_ok"]
            + stats["n_rate_limited"]
            + stats["n_server_errors"]
            + stats["n_timeouts"]
            + stats["n_resets"]
        )
