"""Shared fixtures for ML substrate tests."""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def linear_problem():
    """A linearly separable-ish binary problem (n=600, d=6)."""
    rng = np.random.default_rng(7)
    X = rng.normal(size=(600, 6))
    logit = 2.0 * X[:, 0] - 1.5 * X[:, 1] + 0.5 * X[:, 2]
    y = (rng.uniform(size=600) < 1 / (1 + np.exp(-logit))).astype(int)
    return X, y


@pytest.fixture(scope="module")
def nonlinear_problem():
    """An interaction/XOR-style problem that linear models cannot solve."""
    rng = np.random.default_rng(11)
    X = rng.normal(size=(800, 5))
    y = ((X[:, 0] * X[:, 1]) > 0).astype(int)
    flip = rng.uniform(size=800) < 0.05
    y = np.where(flip, 1 - y, y)
    return X, y
