"""Unit tests for estimator base utilities and the model registry."""

import numpy as np
import pytest

from repro.ml import MODEL_NAMES, clone, make_model
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neural import MLPClassifier


class TestBaseEstimator:
    def test_get_params(self):
        model = RandomForestClassifier(n_estimators=7, max_depth=3)
        params = model.get_params()
        assert params["n_estimators"] == 7
        assert params["max_depth"] == 3

    def test_set_params(self):
        model = LogisticRegression()
        model.set_params(C=0.5)
        assert model.C == 0.5

    def test_set_invalid_param_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().set_params(bogus=1)

    def test_repr_contains_params(self):
        assert "C=1.0" in repr(LogisticRegression())

    def test_clone_resets_fitted_state(self):
        X = np.random.default_rng(0).normal(size=(50, 2))
        y = np.array([0, 1] * 25)
        model = LogisticRegression().fit(X, y)
        fresh = clone(model)
        assert fresh.coef_ is None
        assert fresh.C == model.C


class TestRegistry:
    def test_all_five_models_constructible(self):
        for name in MODEL_NAMES:
            model = make_model(name)
            assert hasattr(model, "fit")

    def test_aliases(self):
        assert isinstance(make_model("random_forest"), RandomForestClassifier)
        assert isinstance(make_model("naive_bayes"), GaussianNB)
        assert isinstance(make_model("mlp"), MLPClassifier)
        assert isinstance(make_model("linear_regression"), LogisticRegression)

    def test_case_insensitive(self):
        assert isinstance(make_model("RF"), RandomForestClassifier)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_model("svm")

    def test_dnn_matches_paper_architecture(self):
        dnn = make_model("dnn")
        assert dnn.hidden == (100, 100)

    def test_seed_passed_to_stochastic_models(self):
        assert make_model("rf", seed=5).seed == 5
