"""Unit tests for :mod:`repro.ml.feature_selection`."""

import numpy as np
import pytest

from repro.ml import mutual_info_classif, rfe_ranking, tree_feature_importance
from repro.ml.feature_selection import top_k_features
from repro.ml.forest import RandomForestClassifier


@pytest.fixture(scope="module")
def signal_and_noise():
    """Column 0 is highly informative, 1 weakly, 2-4 pure noise."""
    rng = np.random.default_rng(21)
    n = 800
    y = rng.integers(0, 2, size=n)
    strong = y * 2.0 + rng.normal(0, 0.3, size=n)
    weak = y * 0.4 + rng.normal(0, 1.0, size=n)
    noise = rng.normal(size=(n, 3))
    X = np.column_stack([strong, weak, noise])
    return X, y


class TestMutualInfo:
    def test_ranks_signal_over_noise(self, signal_and_noise):
        X, y = signal_and_noise
        mi = mutual_info_classif(X, y)
        assert mi[0] == mi.max()
        assert mi[0] > mi[2]

    def test_non_negative(self, signal_and_noise):
        X, y = signal_and_noise
        assert (mutual_info_classif(X, y) >= 0).all()

    def test_independent_feature_near_zero(self, signal_and_noise):
        X, y = signal_and_noise
        mi = mutual_info_classif(X, y)
        assert mi[2] < 0.05

    def test_low_cardinality_uses_exact_bins(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 2, size=400).astype(float)
        y = x.astype(int)  # perfectly dependent
        mi = mutual_info_classif(x.reshape(-1, 1), y)
        assert mi[0] == pytest.approx(np.log(2), rel=0.05)


class TestRfe:
    def test_ranking_is_permutation(self, signal_and_noise):
        X, y = signal_and_noise
        ranking = rfe_ranking(X, y)
        assert sorted(ranking.tolist()) == list(range(1, X.shape[1] + 1))

    def test_signal_ranked_first(self, signal_and_noise):
        X, y = signal_and_noise
        ranking = rfe_ranking(X, y)
        assert ranking[0] == 1

    def test_tree_estimator_supported(self, signal_and_noise):
        X, y = signal_and_noise
        ranking = rfe_ranking(
            X, y, estimator=RandomForestClassifier(n_estimators=5, max_depth=4)
        )
        assert ranking[0] <= 2


class TestTreeImportance:
    def test_signal_dominates(self, signal_and_noise):
        X, y = signal_and_noise
        fi = tree_feature_importance(X, y, n_estimators=10)
        assert fi[0] == fi.max()

    def test_normalised(self, signal_and_noise):
        X, y = signal_and_noise
        fi = tree_feature_importance(X, y, n_estimators=5)
        assert fi.sum() == pytest.approx(1.0)


class TestTopK:
    def test_selects_highest(self):
        names = ["a", "b", "c"]
        assert top_k_features(np.array([0.1, 0.9, 0.5]), names, k=2) == ["b", "c"]

    def test_stable_on_ties(self):
        names = ["a", "b", "c"]
        assert top_k_features(np.array([0.5, 0.5, 0.5]), names, k=2) == ["a", "b"]
