"""Unit tests for :mod:`repro.ml.metrics`."""

import numpy as np
import pytest

from repro.ml import accuracy_score, log_loss, roc_auc_score


class TestRocAuc:
    def test_perfect_ranking_is_one(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(y, s) == 1.0

    def test_inverted_ranking_is_zero(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(y, s) == 0.0

    def test_random_constant_scores_give_half(self):
        y = np.array([0, 1, 0, 1])
        s = np.zeros(4)
        assert roc_auc_score(y, s) == 0.5

    def test_ties_count_half(self):
        y = np.array([0, 1, 1])
        s = np.array([0.5, 0.5, 0.9])
        # Pairs: (neg .5, pos .5) tie -> 0.5; (neg .5, pos .9) win -> 1.
        assert roc_auc_score(y, s) == pytest.approx(0.75)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.array([1, 1]), np.array([0.5, 0.6]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.array([0, 1]), np.array([0.5]))

    def test_antisymmetry(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=50)
        y[0], y[1] = 0, 1
        s = rng.uniform(size=50)
        assert roc_auc_score(y, s) + roc_auc_score(y, -s) == pytest.approx(1.0)

    def test_monotone_transform_invariance(self):
        rng = np.random.default_rng(1)
        y = np.array([0, 1] * 20)
        s = rng.uniform(size=40)
        assert roc_auc_score(y, s) == pytest.approx(roc_auc_score(y, np.exp(3 * s)))


class TestAccuracy:
    def test_basic(self):
        assert accuracy_score([0, 1, 1], [0, 1, 0]) == pytest.approx(2 / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestLogLoss:
    def test_confident_correct_is_small(self):
        assert log_loss([1, 0], [0.99, 0.01]) < 0.02

    def test_confident_wrong_is_large(self):
        assert log_loss([1], [0.01]) > 4.0

    def test_probability_clipping(self):
        # Exactly 0/1 probabilities must not produce infinities.
        assert np.isfinite(log_loss([1, 0], [0.0, 1.0]))
