"""Property-based tests for ML substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml import (
    DecisionTreeClassifier,
    MinMaxScaler,
    StandardScaler,
    roc_auc_score,
)
from repro.ml.metrics import log_loss

scores_strategy = hnp.arrays(
    np.float64,
    st.integers(min_value=4, max_value=60),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


@given(scores_strategy, st.randoms(use_true_random=False))
def test_auc_bounded_and_antisymmetric(scores, rnd):
    n = len(scores)
    y = np.array([rnd.randint(0, 1) for _ in range(n)])
    y[0], y[1] = 0, 1  # both classes present
    auc = roc_auc_score(y, scores)
    assert 0.0 <= auc <= 1.0
    assert abs(auc + roc_auc_score(y, -scores) - 1.0) < 1e-9


@given(scores_strategy)
def test_auc_of_labels_as_scores_is_perfect(scores):
    n = len(scores)
    y = np.zeros(n, dtype=int)
    y[: n // 2] = 1
    assert roc_auc_score(y, y.astype(float)) == 1.0


@settings(max_examples=30)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(5, 40), st.integers(1, 5)),
        elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
)
def test_scaler_inverse_roundtrip(X):
    for scaler in (StandardScaler(), MinMaxScaler()):
        restored = scaler.inverse_transform(scaler.fit_transform(X))
        assert np.allclose(restored, X, rtol=1e-6, atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=10, max_value=80), st.integers(min_value=0, max_value=1000))
def test_unbounded_tree_memorises_training_data(n, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    # Distinct rows are almost sure; labels arbitrary.
    y = rng.integers(0, 2, size=n)
    y[0], y[1] = 0, 1
    tree = DecisionTreeClassifier().fit(X, y)
    assert (tree.predict(X) == y).all()


@settings(max_examples=30)
@given(
    st.lists(st.floats(min_value=0.01, max_value=0.99), min_size=2, max_size=30),
    st.randoms(use_true_random=False),
)
def test_log_loss_non_negative(probs, rnd):
    y = np.array([rnd.randint(0, 1) for _ in probs])
    assert log_loss(y, np.array(probs)) >= 0.0


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=20, max_value=100), st.integers(min_value=0, max_value=50))
def test_tree_importances_valid_simplex(n, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] > 0).astype(int)
    if len(np.unique(y)) < 2:
        y[0] = 1 - y[0]
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    fi = tree.feature_importances_
    assert (fi >= 0).all()
    assert abs(fi.sum() - 1.0) < 1e-9 or fi.sum() == 0.0
