"""Unit tests for :mod:`repro.ml.model_selection`."""

import numpy as np
import pytest

from repro.ml import (
    GaussianNB,
    KFold,
    LogisticRegression,
    StratifiedKFold,
    cross_val_auc,
    train_test_split,
)


class TestTrainTestSplit:
    def test_default_quarter_test(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.array([0, 1] * 50)
        X_train, X_test, y_train, y_test = train_test_split(X, y)
        assert len(X_test) == 24  # round(12.5) = 12 per class under stratification
        assert len(X_train) + len(X_test) == 100

    def test_stratification_preserves_balance(self):
        y = np.array([0] * 80 + [1] * 20)
        X = np.zeros((100, 1))
        _, _, _, y_test = train_test_split(X, y, seed=5)
        assert 0.15 <= y_test.mean() <= 0.25

    def test_no_row_duplication_or_loss(self):
        X = np.arange(40).reshape(-1, 1)
        y = np.array([0, 1] * 20)
        X_train, X_test, _, _ = train_test_split(X, y, seed=2)
        combined = sorted(X_train[:, 0].tolist() + X_test[:, 0].tolist())
        assert combined == list(range(40))

    def test_deterministic(self):
        X = np.arange(30).reshape(-1, 1)
        y = np.array([0, 1] * 15)
        a = train_test_split(X, y, seed=9)
        b = train_test_split(X, y, seed=9)
        assert np.array_equal(a[0], b[0])

    def test_unstratified(self):
        X = np.arange(20).reshape(-1, 1)
        y = np.zeros(20)
        X_train, X_test, _, _ = train_test_split(X, y, stratify=False, seed=0)
        assert len(X_test) == 5

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((3, 1)), np.zeros(2))


class TestKFold:
    def test_partitions_everything_exactly_once(self):
        kf = KFold(n_splits=4, seed=0)
        seen = []
        for _, test_idx in kf.split(23):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(23))

    def test_train_test_disjoint(self):
        for train_idx, test_idx in KFold(n_splits=3).split(12):
            assert not set(train_idx) & set(test_idx)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_bad_n_splits_raises(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestStratifiedKFold:
    def test_every_fold_has_both_classes(self):
        y = np.array([0] * 40 + [1] * 10)
        for _, test_idx in StratifiedKFold(n_splits=5).split(y):
            assert set(y[test_idx]) == {0, 1}

    def test_partitions_everything_exactly_once(self):
        y = np.array([0, 1] * 25)
        seen = []
        for _, test_idx in StratifiedKFold(n_splits=5).split(y):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(50))


class TestCrossValAuc:
    def test_returns_requested_fold_count(self, linear_problem):
        X, y = linear_problem
        scores = cross_val_auc(LogisticRegression(), X, y, n_splits=5)
        assert len(scores) == 5
        assert all(0.0 <= s <= 1.0 for s in scores)

    def test_informative_beats_noise(self, linear_problem):
        X, y = linear_problem
        rng = np.random.default_rng(0)
        noise = rng.normal(size=X.shape)
        good = np.mean(cross_val_auc(GaussianNB(), X, y, n_splits=4))
        bad = np.mean(cross_val_auc(GaussianNB(), noise, y, n_splits=4))
        assert good > bad + 0.2

    def test_model_left_unfitted(self, linear_problem):
        X, y = linear_problem
        model = LogisticRegression()
        cross_val_auc(model, X, y, n_splits=3)
        assert model.coef_ is None  # clones were fitted, not the original

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            cross_val_auc(GaussianNB(), np.zeros((20, 1)), np.zeros(20), n_splits=3)
