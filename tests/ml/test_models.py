"""Unit tests for the five downstream classifiers."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    ExtraTreesClassifier,
    GaussianNB,
    LinearRegressionScorer,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    roc_auc_score,
    train_test_split,
)

ALL_MODELS = [
    LogisticRegression(),
    LinearRegressionScorer(),
    GaussianNB(),
    DecisionTreeClassifier(max_depth=6),
    RandomForestClassifier(n_estimators=10, max_depth=6),
    ExtraTreesClassifier(n_estimators=10, max_depth=6),
    MLPClassifier(hidden=(16, 16), max_epochs=25),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
class TestEstimatorContract:
    def test_beats_chance_on_linear_problem(self, model, linear_problem):
        X, y = linear_problem
        X_train, X_test, y_train, y_test = train_test_split(X, y, seed=0)
        model.fit(X_train, y_train)
        auc = roc_auc_score(y_test, model.predict_proba(X_test)[:, 1])
        assert auc > 0.75, f"{type(model).__name__} AUC {auc:.3f}"

    def test_predict_proba_valid_distribution(self, model, linear_problem):
        X, y = linear_problem
        model.fit(X, y)
        probs = model.predict_proba(X[:50])
        assert probs.shape == (50, 2)
        assert np.all(probs >= 0) and np.all(probs <= 1)
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_predict_is_binary(self, model, linear_problem):
        X, y = linear_problem
        model.fit(X, y)
        preds = model.predict(X[:50])
        assert set(np.unique(preds)) <= {0, 1}


class TestLogisticRegression:
    def test_coefficients_recover_signal_direction(self, linear_problem):
        X, y = linear_problem
        model = LogisticRegression().fit(X, y)
        assert model.coef_[0] > 0
        assert model.coef_[1] < 0

    def test_regularisation_shrinks_weights(self, linear_problem):
        X, y = linear_problem
        loose = LogisticRegression(C=100.0).fit(X, y)
        tight = LogisticRegression(C=0.01).fit(X, y)
        assert np.abs(tight.coef_).sum() < np.abs(loose.coef_).sum()

    def test_non_binary_target_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 1)), np.array([0, 1, 2]))

    def test_1d_input_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros(3), np.array([0, 1, 0]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))


class TestGaussianNB:
    def test_priors_sum_to_one(self, linear_problem):
        X, y = linear_problem
        model = GaussianNB().fit(X, y)
        assert model.class_prior_.sum() == pytest.approx(1.0)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            GaussianNB().fit(np.zeros((3, 1)), np.array([1, 1, 1]))

    def test_zero_variance_feature_smoothed(self):
        X = np.array([[1.0, 0.0], [1.0, 1.0], [1.0, 0.5], [1.0, 0.9]])
        y = np.array([0, 1, 0, 1])
        model = GaussianNB().fit(X, y)
        assert np.isfinite(model.predict_proba(X)).all()


class TestDecisionTree:
    def test_fits_training_data_perfectly_unbounded(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(100, 4))
        y = rng.integers(0, 2, size=100)
        y[0], y[1] = 0, 1
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_max_depth_respected(self, linear_problem):
        X, y = linear_problem
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_limits_nodes(self, linear_problem):
        X, y = linear_problem
        big = DecisionTreeClassifier(min_samples_leaf=1).fit(X, y)
        small = DecisionTreeClassifier(min_samples_leaf=50).fit(X, y)
        assert small.node_count < big.node_count

    def test_feature_importances_sum_to_one(self, linear_problem):
        X, y = linear_problem
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_importances_favour_signal_features(self, linear_problem):
        X, y = linear_problem
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert tree.feature_importances_[0] > tree.feature_importances_[5]

    def test_solves_xor_unlike_linear(self, nonlinear_problem):
        X, y = nonlinear_problem
        X_train, X_test, y_train, y_test = train_test_split(X, y, seed=1)
        tree_auc = roc_auc_score(
            y_test,
            DecisionTreeClassifier(max_depth=8)
            .fit(X_train, y_train)
            .predict_proba(X_test)[:, 1],
        )
        linear_auc = roc_auc_score(
            y_test,
            LogisticRegression().fit(X_train, y_train).predict_proba(X_test)[:, 1],
        )
        # Greedy trees find XOR only after the first (signal-free) split, so
        # the bar is "clearly better than linear", not "near-perfect".
        assert tree_auc > 0.8
        assert linear_auc < 0.65

    def test_nan_input_raises(self):
        X = np.array([[np.nan], [1.0]])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, np.array([0, 1]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))

    def test_constant_features_make_single_leaf(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1
        assert tree.predict_proba(X)[0, 1] == pytest.approx(0.5)

    def test_bad_splitter_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(splitter="worst")


class TestForests:
    def test_forest_beats_single_tree_on_noise(self, nonlinear_problem):
        X, y = nonlinear_problem
        X_train, X_test, y_train, y_test = train_test_split(X, y, seed=2)
        tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(X_train, y_train)
        forest = RandomForestClassifier(n_estimators=20, max_depth=3, seed=0).fit(
            X_train, y_train
        )
        tree_auc = roc_auc_score(y_test, tree.predict_proba(X_test)[:, 1])
        forest_auc = roc_auc_score(y_test, forest.predict_proba(X_test)[:, 1])
        assert forest_auc >= tree_auc - 0.02

    def test_importances_normalised(self, linear_problem):
        X, y = linear_problem
        forest = RandomForestClassifier(n_estimators=5, max_depth=4).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_deterministic_under_seed(self, linear_problem):
        X, y = linear_problem
        a = RandomForestClassifier(n_estimators=5, seed=42).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, seed=42).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_extra_trees_uses_all_rows(self, linear_problem):
        X, y = linear_problem
        et = ExtraTreesClassifier(n_estimators=3, seed=0)
        assert et._bootstrap is False
        et.fit(X, y)
        assert len(et.estimators_) == 3

    def test_zero_estimators_raises(self, linear_problem):
        X, y = linear_problem
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0).fit(X, y)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))


class TestMLP:
    def test_learns_xor(self, nonlinear_problem):
        X, y = nonlinear_problem
        X_train, X_test, y_train, y_test = train_test_split(X, y, seed=3)
        mlp = MLPClassifier(hidden=(32, 32), max_epochs=60, seed=0).fit(X_train, y_train)
        auc = roc_auc_score(y_test, mlp.predict_proba(X_test)[:, 1])
        assert auc > 0.9

    def test_early_stopping_triggers(self, linear_problem):
        X, y = linear_problem
        mlp = MLPClassifier(hidden=(8, 8), max_epochs=500, patience=3, seed=0).fit(X, y)
        assert mlp.n_epochs_ < 500

    def test_deterministic_under_seed(self, linear_problem):
        X, y = linear_problem
        a = MLPClassifier(hidden=(8, 8), max_epochs=5, seed=9).fit(X, y)
        b = MLPClassifier(hidden=(8, 8), max_epochs=5, seed=9).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            MLPClassifier().fit(np.array([[np.nan]]), np.array([1]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict_proba(np.zeros((1, 2)))
