"""Unit tests for :mod:`repro.ml.neighbors` and the paper's KNN claim."""

import numpy as np
import pytest

from repro.ml import (
    KNeighborsClassifier,
    StandardScaler,
    make_model,
    roc_auc_score,
    train_test_split,
)


class TestKNN:
    def test_memorises_with_k1(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))
        y = rng.integers(0, 2, 60)
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert (knn.predict(X) == y).all()

    def test_beats_chance(self, linear_problem):
        X, y = linear_problem
        X_train, X_test, y_train, y_test = train_test_split(X, y, seed=0)
        knn = KNeighborsClassifier(n_neighbors=7).fit(X_train, y_train)
        auc = roc_auc_score(y_test, knn.predict_proba(X_test)[:, 1])
        assert auc > 0.75

    def test_proba_is_neighbor_fraction(self):
        X = np.array([[0.0], [0.1], [0.2], [10.0]])
        y = np.array([1, 1, 0, 0])
        knn = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert knn.predict_proba(np.array([[0.05]]))[0, 1] == pytest.approx(2 / 3)

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)

    def test_too_few_rows_raises(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=5).fit(np.zeros((3, 1)), np.zeros(3))

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=1).fit(np.array([[np.nan]]), np.array([1]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().predict(np.zeros((1, 1)))

    def test_registry_alias(self):
        assert isinstance(make_model("knn"), KNeighborsClassifier)
        assert isinstance(make_model("k_nearest_neighbors"), KNeighborsClassifier)


class TestKnnNormalizationClaim:
    """Section 1: KNN performs better when features have similar ranges."""

    def test_scaling_helps_knn_with_mismatched_ranges(self):
        rng = np.random.default_rng(5)
        n = 500
        y = rng.integers(0, 2, n)
        informative = y + rng.normal(0, 0.6, n)          # range ~[-2, 3]
        loud_noise = rng.normal(0, 1.0, n) * 1000.0      # range ~[-3000, 3000]
        X = np.column_stack([informative, loud_noise])
        X_train, X_test, y_train, y_test = train_test_split(X, y, seed=1)

        raw = KNeighborsClassifier(n_neighbors=9).fit(X_train, y_train)
        raw_auc = roc_auc_score(y_test, raw.predict_proba(X_test)[:, 1])

        scaler = StandardScaler().fit(X_train)
        scaled = KNeighborsClassifier(n_neighbors=9).fit(scaler.transform(X_train), y_train)
        scaled_auc = roc_auc_score(
            y_test, scaled.predict_proba(scaler.transform(X_test))[:, 1]
        )
        assert scaled_auc > raw_auc + 0.2
