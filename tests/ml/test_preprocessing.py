"""Unit tests for :mod:`repro.ml.preprocessing`."""

import numpy as np
import pytest

from repro.ml import LabelEncoder, MinMaxScaler, SimpleImputer, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 3))
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_passthrough(self):
        X = np.array([[1.0, 2.0], [1.0, 4.0]])
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out[:, 0], 0.0)

    def test_inverse_roundtrip(self):
        X = np.array([[1.0, 10.0], [3.0, 20.0], [5.0, 40.0]])
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_nan_aware_fit(self):
        X = np.array([[1.0], [np.nan], [3.0]])
        scaler = StandardScaler().fit(X)
        assert scaler.mean_[0] == pytest.approx(2.0)


class TestMinMaxScaler:
    def test_range(self):
        X = np.array([[0.0], [5.0], [10.0]])
        out = MinMaxScaler().fit_transform(X)
        assert out.min() == 0.0 and out.max() == 1.0

    def test_inverse_roundtrip(self):
        X = np.array([[2.0, -1.0], [8.0, 3.0]])
        scaler = MinMaxScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_column(self):
        X = np.array([[3.0], [3.0]])
        out = MinMaxScaler().fit_transform(X)
        assert np.allclose(out, 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))


class TestLabelEncoder:
    def test_fit_transform(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(["b", "a", "b"])
        assert codes.tolist() == [0, 1, 0]
        assert enc.classes_ == ["b", "a"]

    def test_inverse(self):
        enc = LabelEncoder().fit(["x", "y"])
        assert enc.inverse_transform(np.array([1, 0])) == ["y", "x"]

    def test_unseen_raises(self):
        enc = LabelEncoder().fit(["x"])
        with pytest.raises(ValueError):
            enc.transform(["z"])


class TestSimpleImputer:
    def test_mean(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0]])
        out = SimpleImputer("mean").fit_transform(X)
        assert out[0, 1] == 4.0

    def test_median(self):
        X = np.array([[1.0], [np.nan], [2.0], [9.0]])
        out = SimpleImputer("median").fit_transform(X)
        assert out[1, 0] == 2.0

    def test_constant(self):
        X = np.array([[np.nan]])
        out = SimpleImputer("constant", fill_value=-7).fit_transform(X)
        assert out[0, 0] == -7.0

    def test_all_nan_column_uses_fill_value(self):
        X = np.array([[np.nan], [np.nan]])
        out = SimpleImputer("mean", fill_value=0.0).fit_transform(X)
        assert np.allclose(out, 0.0)

    def test_bad_strategy_raises(self):
        with pytest.raises(ValueError):
            SimpleImputer("mode")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SimpleImputer().transform(np.zeros((1, 1)))
