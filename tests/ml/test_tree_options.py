"""Coverage for decision-tree options used by the forest ensembles."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier, _resolve_max_features


class TestMaxFeaturesResolution:
    def test_none_uses_all(self):
        assert _resolve_max_features(None, 16) == 16

    def test_sqrt(self):
        assert _resolve_max_features("sqrt", 16) == 4

    def test_log2(self):
        assert _resolve_max_features("log2", 16) == 4

    def test_log2_single_feature(self):
        assert _resolve_max_features("log2", 1) == 1

    def test_fraction(self):
        assert _resolve_max_features(0.5, 10) == 5

    def test_int_capped_at_n_features(self):
        assert _resolve_max_features(99, 7) == 7

    def test_minimum_one(self):
        assert _resolve_max_features(0.01, 10) == 1


class TestFeatureSubsampling:
    def test_restricted_features_still_fit(self, linear_problem):
        X, y = linear_problem
        tree = DecisionTreeClassifier(max_depth=4, max_features="sqrt", seed=1).fit(X, y)
        assert tree.node_count > 1

    def test_different_seeds_give_different_trees(self, linear_problem):
        X, y = linear_problem
        a = DecisionTreeClassifier(max_depth=4, max_features=1, seed=1).fit(X, y)
        b = DecisionTreeClassifier(max_depth=4, max_features=1, seed=2).fit(X, y)
        assert not np.allclose(a.predict_proba(X)[:, 1], b.predict_proba(X)[:, 1])


class TestRandomSplitter:
    def test_random_splitter_fits(self, linear_problem):
        X, y = linear_problem
        tree = DecisionTreeClassifier(max_depth=5, splitter="random", seed=0).fit(X, y)
        from repro.ml import roc_auc_score

        auc = roc_auc_score(y, tree.predict_proba(X)[:, 1])
        assert auc > 0.6  # weaker than best-split, but informative

    def test_random_splitter_deterministic_per_seed(self, linear_problem):
        X, y = linear_problem
        a = DecisionTreeClassifier(max_depth=4, splitter="random", seed=7).fit(X, y)
        b = DecisionTreeClassifier(max_depth=4, splitter="random", seed=7).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_min_samples_leaf_respected_by_random_splits(self, linear_problem):
        X, y = linear_problem
        tree = DecisionTreeClassifier(
            max_depth=8, splitter="random", min_samples_leaf=40, seed=0
        ).fit(X, y)

        def leaf_sizes(node, idx):
            if tree._feature[node] == -1:
                return [len(idx)]
            mask = X[idx, tree._feature[node]] <= tree._threshold[node]
            return leaf_sizes(tree._left[node], idx[mask]) + leaf_sizes(
                tree._right[node], idx[~mask]
            )

        sizes = leaf_sizes(0, np.arange(len(X)))
        assert min(sizes) >= 40

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 1)), np.zeros(2))
