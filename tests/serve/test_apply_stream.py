"""Out-of-core serving: ``apply_stream``, memory budgets, streaming
transforms, per-shard fault isolation, and group-table refresh.

The central contract: every frozen op is row-local given its fitted
statistics, so ``concat_shards(plan.apply_stream(shards))`` is
**bit-identical** to ``plan.apply`` over the whole table — for every
codegen form, any chunking, hash-path serve keys split across shard
boundaries, and all-NaN shards included.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sandbox import TransformError
from repro.dataframe import DataFrame, Series
from repro.dataframe.io import Shard, concat_shards, iter_frame_shards
from repro.eval.serving import build_demo_result, sharded_identity_report
from repro.serve import (
    BreakerBoard,
    FeaturePlan,
    FeatureServer,
    PlanError,
    compile_plan,
    frames_identical,
)


@pytest.fixture(scope="module")
def demo():
    result, frame = build_demo_result(600, seed=0)
    plan = FeaturePlan.from_json(compile_plan(result, frame, "Target").to_json())
    return plan, frame, plan.apply(frame)


class TestApplyStreamIdentity:
    @pytest.mark.parametrize("chunk", [1, 113, 600, 10**6])
    def test_every_codegen_form_bit_identical(self, demo, chunk):
        plan, frame, base = demo
        merged = concat_shards(
            list(plan.apply_stream(iter_frame_shards(frame, chunk)))
        )
        identical, detail = frames_identical(merged, base)
        assert identical, f"chunk={chunk}: {detail}"

    def test_accepts_plain_frames_and_shards(self, demo):
        plan, frame, base = demo
        pieces = [s.frame for s in iter_frame_shards(frame, 200)]
        merged = concat_shards(list(plan.apply_stream(pieces)))
        identical, detail = frames_identical(merged, base)
        assert identical, detail

    def test_empty_shards_skipped(self, demo):
        """Zero-row frames vanish from the stream rather than erroring."""
        plan, frame, base = demo
        empty = DataFrame(
            {
                name: Series._from_array(frame[name].values[:0], name)
                for name in frame.columns
            }
        )
        pieces = [s.frame for s in iter_frame_shards(frame, 300)]
        outs = list(plan.apply_stream([pieces[0], empty, pieces[1]]))
        assert len(outs) == 2
        identical, detail = frames_identical(concat_shards(outs), base)
        assert identical, detail

    def test_serve_keys_unseen_at_fit_split_across_shards(self, demo):
        """Hash-path group keys (unseen / hostile) still replay
        identically when the rows land in different shards."""
        plan, frame, _ = demo
        serve = frame.column_view(frame.columns)
        segments = serve["Segment"].tolist()
        # sprinkle unseen groups around shard boundary positions
        for i in range(0, len(segments), 97):
            segments[i] = f"unseen_{i % 5}"
        serve["Segment"] = Series(segments, "Segment")
        base = plan.apply(serve)
        for chunk in (97, 100, 601):
            merged = concat_shards(
                list(plan.apply_stream(iter_frame_shards(serve, chunk)))
            )
            identical, detail = frames_identical(merged, base)
            assert identical, f"chunk={chunk}: {detail}"

    def test_all_nan_shards(self, demo):
        """A shard whose numeric inputs are entirely NaN replays
        identically to the same rows served in-memory."""
        plan, frame, _ = demo
        serve = frame.column_view(frame.columns)
        income = serve["Income"].values.copy()
        balance = serve["Balance"].values.copy()
        income[100:200] = np.nan  # exactly the second chunk-of-100
        balance[100:200] = np.nan
        serve["Income"] = Series._from_array(income, "Income")
        serve["Balance"] = Series._from_array(balance, "Balance")
        base = plan.apply(serve)
        merged = concat_shards(
            list(plan.apply_stream(iter_frame_shards(serve, 100)))
        )
        identical, detail = frames_identical(merged, base)
        assert identical, detail


class TestMemoryBudget:
    def test_budget_forces_rechunking(self, demo):
        plan, frame, base = demo
        pieces = list(
            plan.apply_stream(iter_frame_shards(frame, 10**6), memory_budget_mb=1)
        )
        assert len(pieces) > 1
        identical, detail = frames_identical(concat_shards(pieces), base)
        assert identical, detail

    def test_budget_rows_scales_with_budget(self, demo):
        plan, frame, _ = demo
        small = plan.budget_rows(frame, 1)
        big = plan.budget_rows(frame, 100)
        assert 1 <= small < big

    def test_budget_rows_never_zero(self, demo):
        plan, frame, _ = demo
        assert plan.budget_rows(frame, 0.0001) == 1

    def test_non_positive_budget_raises(self, demo):
        plan, frame, _ = demo
        with pytest.raises(PlanError):
            plan.budget_rows(frame, 0)
        with pytest.raises(PlanError):
            list(plan.apply_stream(iter_frame_shards(frame, 10), memory_budget_mb=-1))


class TestServerStreaming:
    def test_transform_accepts_iterator(self, demo):
        plan, frame, base = demo
        server = FeatureServer(plan=plan)
        out = server.transform(iter_frame_shards(frame, 151))
        identical, detail = frames_identical(out, base)
        assert identical, detail
        assert server.stats()["batches"] == 4

    def test_transform_stream_yields_per_shard(self, demo):
        plan, frame, base = demo
        server = FeatureServer(plan=plan)
        outs = list(server.transform_stream(iter_frame_shards(frame, 200)))
        assert [len(o) for o in outs] == [200, 200, 200]
        identical, detail = frames_identical(concat_shards(outs), base)
        assert identical, detail

    def test_list_of_dicts_still_goes_through_batch_path(self, demo):
        plan, frame, _ = demo
        server = FeatureServer(plan=plan)
        rows = [
            {name: frame[name].tolist()[i] for name in frame.columns}
            for i in range(3)
        ]
        out = server.transform(rows)  # Sequence, not the stream branch
        assert len(out) == 3
        assert server.stats()["batches"] == 1


class TestPerShardFaultIsolation:
    def _failing_on_second_shard(self, feature):
        calls = {"n": 0}

        def evaluator(spec, frame, default):
            if spec.name == feature:
                calls["n"] += 1
                if calls["n"] == 2:
                    raise TransformError("injected: fails on shard 2 only")
            return default()

        return evaluator

    def test_degrade_nan_fills_only_the_failing_shard(self, demo):
        plan, frame, base = demo
        outs = list(
            plan.apply_stream(
                iter_frame_shards(frame, 200),
                failure_policy="degrade",
                evaluator=self._failing_on_second_shard("Income_z"),
            )
        )
        assert len(outs) == 3
        # shards 1 and 3 are bit-identical to the in-memory rows
        expect = list(iter_frame_shards(base, 200))
        for idx in (0, 2):
            identical, detail = frames_identical(outs[idx], expect[idx].frame)
            assert identical, f"healthy shard {idx} diverged: {detail}"
        # shard 2's failing feature NaN-filled; its other columns intact
        assert np.isnan(outs[1]["Income_z"].values).all()
        for name in base.columns:
            if name == "Income_z":
                continue
            assert np.array_equal(
                outs[1][name].values,
                expect[1].frame[name].values,
                equal_nan=outs[1][name].dtype.kind == "f",
            ), name

    def test_strict_stream_fails_loudly_mid_stream(self, demo):
        plan, frame, _ = demo
        stream = plan.apply_stream(
            iter_frame_shards(frame, 200),
            evaluator=self._failing_on_second_shard("Income_z"),
        )
        next(stream)
        with pytest.raises(TransformError, match="injected"):
            list(stream)

    def test_breakers_accumulate_across_shards(self, demo):
        """A feature failing on every shard trips a shared breaker after
        the threshold, then later shards skip it (NaN) without paying."""
        plan, frame, _ = demo

        def always_fail(spec, frame_, default):
            if spec.name == "Income_z":
                raise TransformError("injected: always fails")
            return default()

        breakers = BreakerBoard(failure_threshold=2, cooldown_calls=100)
        outs = list(
            plan.apply_stream(
                iter_frame_shards(frame, 100),
                failure_policy="degrade",
                breakers=breakers,
                evaluator=always_fail,
            )
        )
        assert len(outs) == 6
        assert breakers.snapshot()["Income_z"]["state"] == "open"
        for out in outs:
            assert np.isnan(out["Income_z"].values).all()


class TestRefreshGroupTables:
    def test_chunk_invariant(self, demo):
        plan, frame, _ = demo
        refreshed = []
        for chunk in (1, 211, 10**6):
            p = FeaturePlan.from_json(plan.to_json())
            assert p.refresh_group_tables(iter_frame_shards(frame, chunk)) == 2
            refreshed.append(p.apply(frame))
        for other in refreshed[1:]:
            identical, detail = frames_identical(other, refreshed[0])
            assert identical, detail

    def test_refresh_over_fit_data_is_self_consistent(self, demo):
        """Refreshing over the very data the plan was fitted on leaves
        non-mean lookups bit-exact and mean lookups within round-off
        (sequential fold vs the fit-time pairwise sum)."""
        plan, frame, base = demo
        p = FeaturePlan.from_json(plan.to_json())
        p.refresh_group_tables(iter_frame_shards(frame, 97))
        out = p.apply(frame)
        for name in base.columns:
            a, b = out[name].values, base[name].values
            if name == "Seg_mean_income":
                mask = ~(np.isnan(a) & np.isnan(b))
                assert np.allclose(a[mask], b[mask], rtol=1e-12, atol=0.0)
            else:
                assert a.dtype == b.dtype
                assert np.array_equal(a, b, equal_nan=a.dtype.kind == "f"), name

    def test_refresh_sees_new_data(self, demo):
        """Tables refreshed over a different stream reflect that stream,
        not the fit sample."""
        plan, frame, _ = demo
        serve = frame.column_view(frame.columns)
        income = np.full(len(frame), 7.0)
        serve["Income"] = Series._from_array(income, "Income")
        p = FeaturePlan.from_json(plan.to_json())
        p.refresh_group_tables(iter_frame_shards(serve, 100))
        out = p.apply(serve)
        # mean of log(Income) per segment: log1p? the demo aggregates
        # log-transformed income; constant input => constant per-group mean
        seen = out["Seg_mean_income"].values
        finite = seen[~np.isnan(seen)]
        assert len(finite) and np.allclose(finite, finite[0])

    def test_missing_agg_col_raises_plan_error(self, demo):
        plan, frame, _ = demo
        p = FeaturePlan.from_json(plan.to_json())
        for node in p._group_lookup_nodes():
            node.pop("agg_col", None)
        with pytest.raises(PlanError, match="agg_col"):
            p.refresh_group_tables(iter_frame_shards(frame, 100))

    def test_no_group_tables_consumes_nothing(self, demo):
        plan, frame, _ = demo
        p = FeaturePlan.from_json(plan.to_json())
        p.features = [
            spec
            for spec in p.features
            if "group_lookup" not in json.dumps(spec.expr or {})
        ]
        consumed = []

        def stream():
            consumed.append(True)
            yield frame

        assert p.refresh_group_tables(stream()) == 0
        assert not consumed

    def test_agg_col_survives_json_roundtrip(self, demo):
        plan, _, _ = demo
        replayed = FeaturePlan.from_json(plan.to_json())
        nodes = replayed._group_lookup_nodes()
        assert len(nodes) == 2
        assert all("agg_col" in node for node in nodes)


def test_sharded_identity_report_single_dataset():
    rows = sharded_identity_report(("synthetic",), n_rows=160, chunk_rows=31)
    assert rows[0]["identical"], rows[0]["detail"]
    assert rows[0]["n_shards"] > 1


# ----------------------------------------------------------------------
# Property suite: serve-time chunking never changes bits
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def prop_plan(demo):
    return demo


@settings(max_examples=25, deadline=None)
@given(
    chunk=st.integers(1, 700),
    unseen_every=st.integers(13, 200),
    nan_start=st.integers(0, 500),
    nan_len=st.integers(0, 100),
)
def test_apply_stream_identity_under_mutation(demo, chunk, unseen_every, nan_start, nan_len):
    """Any chunking × unseen-group injection × NaN runs: sharded replay
    stays bit-identical to in-memory replay of the same mutated table."""
    plan, frame, _ = demo
    serve = frame.column_view(frame.columns)
    segments = serve["Segment"].tolist()
    for i in range(0, len(segments), unseen_every):
        segments[i] = f"hash_path_{i}"
    serve["Segment"] = Series(segments, "Segment")
    income = serve["Income"].values.copy()
    income[nan_start : nan_start + nan_len] = np.nan
    serve["Income"] = Series._from_array(income, "Income")
    base = plan.apply(serve)
    merged = concat_shards(list(plan.apply_stream(iter_frame_shards(serve, chunk))))
    identical, detail = frames_identical(merged, base)
    assert identical, f"chunk={chunk}: {detail}"
