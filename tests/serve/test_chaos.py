"""Deterministic chaos gate over the serve-path resilience layer.

Seeded fault schedules drive every failure mode the resilience layer
claims to contain — sandbox raise, sandbox hang, bad output, input
mutation, hostile rows, schema drift — and assert the blast-radius
contract: under ``degrade`` every healthy feature's output is
bit-identical to a fault-free run, breakers trip and recover exactly on
schedule, and ``strict`` still fails loudly.
"""

import numpy as np
import pytest

from repro.core.sandbox import TransformError
from repro.eval.chaos import CHAOS_MODES, ChaosSchedule, FaultInjector, hostile_rows
from repro.eval.serving import build_demo_result
from repro.serve import (
    BreakerBoard,
    FeatureServer,
    SandboxWatchdog,
    compile_plan,
    series_identical,
)


@pytest.fixture(scope="module")
def plan_and_frame():
    result, frame = build_demo_result(80, seed=0)
    return compile_plan(result, frame, "Target"), frame


def _served(plan):
    return [s for s in plan.features if s.status != "omitted"]


class TestChaosSchedule:
    def test_same_seed_same_schedule(self):
        a = ChaosSchedule.seeded(["f", "g"], rate=0.5, n_calls=20, seed=7)
        b = ChaosSchedule.seeded(["f", "g"], rate=0.5, n_calls=20, seed=7)
        assert a._schedules == b._schedules

    def test_different_seed_different_schedule(self):
        a = ChaosSchedule.seeded(["f"], rate=0.5, n_calls=50, seed=1)
        b = ChaosSchedule.seeded(["f"], rate=0.5, n_calls=50, seed=2)
        assert a._schedules != b._schedules

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosSchedule({"f": {0: "meteor"}})

    def test_calls_advance_and_reset(self):
        schedule = ChaosSchedule({"f": {1: "raise"}})
        assert schedule.fault_for("f") is None
        assert schedule.fault_for("f") == "raise"
        schedule.reset()
        assert schedule.fault_for("f") is None


class TestEveryFailureMode:
    """Each chaos mode lands as an isolated, reported failure."""

    @pytest.mark.parametrize("mode", CHAOS_MODES)
    def test_mode_is_contained_and_reported(self, plan_and_frame, mode):
        plan, frame = plan_and_frame
        victim = _served(plan)[0]
        injector = FaultInjector(
            ChaosSchedule({victim.name: {0: mode}}), max_hang_s=5.0
        )
        watchdog = SandboxWatchdog(timeout_s=0.2, join_grace_s=2.0)
        out, report = plan.apply_with_report(
            frame, failure_policy="degrade", watchdog=watchdog, evaluator=injector
        )
        entry = next(r for r in report.reports if r.feature == victim.name)
        assert entry.status == "failed"
        assert entry.error in {
            "TransformError",
            "WatchdogTimeout",
            "WatchdogViolation",
        }
        for name in victim.output_columns:
            assert np.isnan(out[name].values).all()
        assert injector.injected == [(victim.name, mode)]

    @pytest.mark.parametrize("mode", CHAOS_MODES)
    def test_healthy_features_bit_identical_under_each_mode(
        self, plan_and_frame, mode
    ):
        plan, frame = plan_and_frame
        victim = _served(plan)[0]
        injector = FaultInjector(
            ChaosSchedule({victim.name: {0: mode}}), max_hang_s=5.0
        )
        watchdog = SandboxWatchdog(timeout_s=0.2, join_grace_s=2.0)
        clean = plan.apply(frame)
        out, _report = plan.apply_with_report(
            frame, failure_policy="degrade", watchdog=watchdog, evaluator=injector
        )
        for name in clean.columns:
            if name in victim.output_columns:
                continue
            assert series_identical(clean[name], out[name]), name

    def test_input_frame_survives_every_mode(self, plan_and_frame):
        plan, frame = plan_and_frame
        victim = _served(plan)[0]
        before = {name: frame[name].values.copy() for name in frame.columns}
        for mode in CHAOS_MODES:
            injector = FaultInjector(
                ChaosSchedule({victim.name: {0: mode}}), max_hang_s=5.0
            )
            plan.apply_with_report(
                frame,
                failure_policy="degrade",
                watchdog=SandboxWatchdog(timeout_s=0.2, join_grace_s=2.0),
                evaluator=injector,
            )
        assert frame.columns == list(before)
        for name, values in before.items():
            got = frame[name].values
            if values.dtype.kind == "f":
                assert np.array_equal(values, got, equal_nan=True), name
            else:
                assert list(values) == list(got), name


class TestStrictFailsLoudly:
    @pytest.mark.parametrize("mode", ["raise", "bad_output"])
    def test_strict_raises_on_injected_fault(self, plan_and_frame, mode):
        plan, frame = plan_and_frame
        victim = _served(plan)[0]
        injector = FaultInjector(ChaosSchedule({victim.name: {0: mode}}))
        with pytest.raises(Exception) as excinfo:
            plan.apply_with_report(
                frame,
                failure_policy="strict",
                watchdog=SandboxWatchdog(timeout_s=0.5),
                evaluator=injector,
            )
        # typed: either the sandbox error or a watchdog verdict, never a
        # bare KeyError/IndexError from a kernel
        assert type(excinfo.value).__name__ in {
            "TransformError",
            "PlanError",
            "WatchdogViolation",
        }


class TestBreakerSchedule:
    def test_trip_and_recover_on_exact_schedule(self, plan_and_frame):
        plan, frame = plan_and_frame
        victim = _served(plan)[0]
        # fail calls 0-2 (trips at threshold 3), healthy afterwards
        injector = FaultInjector(
            ChaosSchedule({victim.name: {0: "raise", 1: "raise", 2: "raise"}})
        )
        board = BreakerBoard(failure_threshold=3, cooldown_calls=2)
        timeline = []
        for _ in range(8):
            _out, report = plan.apply_with_report(
                frame, failure_policy="degrade", breakers=board, evaluator=injector
            )
            entry = next(r for r in report.reports if r.feature == victim.name)
            timeline.append((entry.status, board.get(victim.name).state))
        assert timeline == [
            ("failed", "closed"),  # 1st failure
            ("failed", "closed"),  # 2nd failure
            ("failed", "open"),  # 3rd consecutive -> trips
            ("skipped", "open"),  # cooldown refusal 1
            ("skipped", "open"),  # cooldown refusal 2
            ("ok", "closed"),  # half-open probe succeeds -> closes
            ("ok", "closed"),
            ("ok", "closed"),
        ]

    def test_probe_failure_reopens_on_schedule(self, plan_and_frame):
        plan, frame = plan_and_frame
        victim = _served(plan)[0]
        # calls 0-1 fail (trip at threshold 2); call 2 is the probe after
        # one refusal — it fails too, re-opening the breaker
        injector = FaultInjector(
            ChaosSchedule({victim.name: {0: "raise", 1: "raise", 2: "raise"}})
        )
        board = BreakerBoard(failure_threshold=2, cooldown_calls=1)
        timeline = []
        for _ in range(6):
            _out, report = plan.apply_with_report(
                frame, failure_policy="degrade", breakers=board, evaluator=injector
            )
            entry = next(r for r in report.reports if r.feature == victim.name)
            timeline.append(entry.status)
        assert timeline == [
            "failed",  # trip builds
            "failed",  # trips (threshold 2)
            "skipped",  # cooldown refusal
            "failed",  # probe runs injected call 2 -> fails -> reopen
            "skipped",  # cooldown refusal again
            "ok",  # next probe is healthy -> closes
        ]


class TestSeededSoak:
    def test_seeded_storm_never_breaks_healthy_outputs(self, plan_and_frame):
        plan, frame = plan_and_frame
        names = [s.name for s in _served(plan)]
        schedule = ChaosSchedule.seeded(
            names, modes=("raise", "bad_output"), rate=0.3, n_calls=6, seed=11
        )
        injector = FaultInjector(schedule)
        board = BreakerBoard(failure_threshold=2, cooldown_calls=2)
        clean = plan.apply(frame)
        for _ in range(6):
            out, report = plan.apply_with_report(
                frame, failure_policy="degrade", breakers=board, evaluator=injector
            )
            assert out.columns == clean.columns
            for entry in report.reports:
                if entry.status != "ok":
                    continue
                spec = next(s for s in plan.features if s.name == entry.feature)
                for name in spec.output_columns:
                    assert series_identical(clean[name], out[name]), name
        assert injector.injected  # the storm actually injected faults

    def test_soak_is_reproducible(self, plan_and_frame):
        plan, frame = plan_and_frame
        names = [s.name for s in _served(plan)]

        def run():
            injector = FaultInjector(
                ChaosSchedule.seeded(names, rate=0.4, n_calls=4, seed=3)
            )
            outcomes = []
            for _ in range(4):
                _out, report = plan.apply_with_report(
                    frame, failure_policy="degrade", evaluator=injector
                )
                outcomes.append(tuple(r.status for r in report.reports))
            return outcomes

        assert run() == run()


class TestHostileRowsEndToEnd:
    def test_hostile_batch_through_degrade_server(self, plan_and_frame):
        plan, _frame = plan_and_frame
        server = FeatureServer(plan=plan, failure_policy="degrade")
        rows = hostile_rows(plan.input_schema, n_rows=48, hostility=0.3, seed=5)
        out, report = server.transform_with_report(rows)
        assert len(out) + report.quarantine.quarantined_rows == len(rows)
        assert report.quarantine.quarantined_rows > 0  # the batch was hostile
        for _idx, reason in report.quarantine.quarantined:
            assert reason  # every quarantine is explained
        health = server.health()
        assert health["rows_quarantined"] == report.quarantine.quarantined_rows

    def test_hostile_generator_is_deterministic(self, plan_and_frame):
        plan, _frame = plan_and_frame
        a = hostile_rows(plan.input_schema, n_rows=16, seed=9)
        b = hostile_rows(plan.input_schema, n_rows=16, seed=9)
        assert repr(a) == repr(b)
