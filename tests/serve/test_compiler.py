"""Plan compilation: statuses, verification, fallbacks, and the
shared-grouping encode satellite."""

import numpy as np
import pytest

from repro.core.types import GeneratedFeature, OperatorFamily
from repro.dataframe import DataFrame
from repro.dataframe import kernels
from repro.dataframe.series import Series
from repro.eval.serving import (
    ALL_DATASETS,
    build_demo_result,
    fit_and_export,
    sandbox_replay,
)
from repro.serve import FeaturePlan, compile_plan, frames_identical, series_identical


def feature(name, columns, description, source, outputs=None, family=OperatorFamily.UNARY):
    return GeneratedFeature(
        name=name,
        family=family,
        input_columns=list(columns),
        description=description,
        output_columns=outputs or [name],
        source_code=source,
    )


def result_of(frame, features):
    """Realize *features* in order the way fit_transform would."""
    from repro.core.sandbox import run_transform
    from repro.core.pipeline import SmartFeatResult

    working = frame.column_view(frame.columns)
    table = {}
    for feat in features:
        out = run_transform(feat.source_code, working)
        if isinstance(out, Series):
            working[feat.output_columns[0]] = out.rename(feat.output_columns[0])
        else:
            for name in feat.output_columns:
                working[name] = out[name]
        table[feat.name] = feat
    return SmartFeatResult(frame=working, new_features=table)


@pytest.fixture
def frame():
    return DataFrame(
        {
            "x": Series([1.0, 2.0, 3.0, 4.0, 5.0]),
            "g": Series(["a", "b", "a", "b", "a"]),
            "Target": Series([0, 1, 0, 1, 0]),
        }
    )


class TestStatuses:
    def test_codegen_source_compiles(self, frame):
        src = (
            "def transform(df):\n"
            "    col = df['x']\n"
            "    return (col - col.mean()) / (col.std() or 1.0)\n"
        )
        result = result_of(frame, [feature("x_z", ["x"], "normalization[zscore]: z", src)])
        plan = compile_plan(result, frame, "Target")
        assert plan.features[0].status == "compiled"
        assert plan.features[0].expr is not None

    def test_divergent_source_falls_back_to_sandbox(self, frame):
        # The description claims zscore but the source computes something
        # else (a misbehaving FM): verification must catch the mismatch
        # and carry the source as an explicit fallback.
        src = "def transform(df):\n    return df['x'] * 3.0\n"
        result = result_of(frame, [feature("x_z", ["x"], "normalization[zscore]: z", src)])
        plan = compile_plan(result, frame, "Target")
        spec = plan.features[0]
        assert spec.status == "fallback"
        assert spec.fallback_source == src
        assert "not bit-identical" in spec.reason
        replayed = plan.apply(frame)
        assert series_identical(replayed["x_z"], result.frame["x_z"])

    def test_feature_on_vanished_column_is_omitted(self, frame):
        src = "def transform(df):\n    return df['ghost'] * 2\n"
        feat = feature("ghost_x", ["ghost"], "squared: ghost", src)
        from repro.core.pipeline import SmartFeatResult

        working = frame.column_view(frame.columns)
        working["ghost_x"] = Series([1.0] * len(frame))
        result = SmartFeatResult(frame=working, new_features={"ghost_x": feat})
        plan = compile_plan(result, frame, "Target")
        assert plan.features[0].status == "omitted"
        assert plan.features[0].reason
        # replay still works, skipping the omitted feature
        out = plan.apply(frame)
        assert "ghost_x" not in out

    def test_row_level_single_column_becomes_dict_map(self, frame):
        feat = feature(
            "g_code",
            ["g"],
            "knowledge lookup",
            "<row-level FM completion>",
        )
        from repro.core.pipeline import SmartFeatResult

        working = frame.column_view(frame.columns)
        working["g_code"] = Series([1, 2, 1, 2, 1])
        result = SmartFeatResult(frame=working, new_features={"g_code": feat})
        plan = compile_plan(result, frame, "Target")
        assert plan.features[0].status == "compiled"
        assert plan.features[0].expr["op"] == "dict_map"
        out = plan.apply(frame)
        assert series_identical(out["g_code"], working["g_code"])


class TestDropReplay:
    def test_dropped_columns_removed_at_serve_time(self):
        result, frame = build_demo_result(80, seed=3)
        assert result.dropped  # the demo workload drops single-use originals
        plan = compile_plan(result, frame, "Target")
        out = plan.apply(frame)
        for column in result.dropped:
            assert column not in out
            assert column in frame  # input untouched
        identical, detail = frames_identical(out, result.frame)
        assert identical, detail


class TestSharedGroupingEncode:
    def test_group_features_share_one_key_encode(self, monkeypatch):
        """Two groupby features over the same key column must trigger one
        sorted-grouping encode per batch, not one per feature."""
        frame = DataFrame(
            {
                "g": Series(["a", "b", "a", "b", "c"]),
                "u": Series([1.0, 2.0, 3.0, 4.0, 5.0]),
                "v": Series([5.0, 4.0, 3.0, 2.0, 1.0]),
                "Target": Series([0, 1, 0, 1, 0]),
            }
        )
        features = [
            feature(
                "g_mean_u",
                ["g", "u"],
                "groupby[mean]: mean u per g",
                "def transform(df):\n    return df.groupby(['g'])['u'].transform('mean')\n",
                family=OperatorFamily.HIGH_ORDER,
            ),
            feature(
                "g_max_v",
                ["g", "v"],
                "groupby[max]: max v per g",
                "def transform(df):\n    return df.groupby(['g'])['v'].transform('max')\n",
                family=OperatorFamily.HIGH_ORDER,
            ),
        ]
        result = result_of(frame, features)
        plan = compile_plan(result, frame, "Target")
        assert [s.status for s in plan.features] == ["compiled", "compiled"]

        calls = []
        real = kernels.sorted_grouping

        def counting(values):
            calls.append(values)
            return real(values)

        monkeypatch.setattr(kernels, "sorted_grouping", counting)
        fresh = frame.column_view(frame.columns)  # new Series cache state? no — shared
        out = plan.apply(fresh)
        identical, detail = frames_identical(out, result.frame)
        assert identical, detail
        # one encode for the shared "g" key column, despite two features
        g_encodes = [v for v in calls if len(v) == 5 and v.dtype == object]
        assert len(g_encodes) <= 1


class TestEndToEnd:
    def test_fitted_dataset_roundtrip(self):
        bundle, result = fit_and_export("diabetes", n_rows=240, seed=0)
        plan = FeaturePlan.from_json(result.plan.to_json())
        counts = plan.counts()
        assert counts["omitted"] == 0
        identical, detail = frames_identical(plan.apply(bundle["frame"]), result.frame)
        assert identical, detail

    def test_sandbox_replay_matches_fit(self):
        result, frame = build_demo_result(100, seed=1)
        identical, detail = frames_identical(sandbox_replay(result, frame), result.frame)
        assert identical, detail

    def test_all_datasets_listed(self):
        assert "synthetic" in ALL_DATASETS and len(ALL_DATASETS) == 9

    def test_compile_metadata_records_counts(self):
        result, frame = build_demo_result(60, seed=0)
        plan = compile_plan(result, frame, "Target")
        meta = plan.metadata["compile"]
        assert meta["n_features"] == len(plan.features)
        assert meta["compiled"] == plan.counts()["compiled"]
