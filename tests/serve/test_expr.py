"""Unit tests for the serving expression IR evaluator."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.dataframe.expr import (
    ExprError,
    evaluate_feature,
    expr_columns,
    freeze_expr,
    is_frozen,
    validate_expr,
)
from repro.dataframe.series import Series
from repro.serve.compiler import series_identical


def col(name):
    return {"op": "col", "name": name}


def const(value):
    return {"op": "const", "value": value}


@pytest.fixture
def frame():
    return DataFrame(
        {
            "a": Series([1, 2, 3, 4]),
            "b": Series([2.0, 0.0, np.nan, 4.0]),
            "s": Series(["x", "y", "x", "z"]),
        }
    )


class TestArithmetic:
    def test_add_matches_series(self, frame):
        out = evaluate_feature({"op": "add", "left": col("a"), "right": col("b")}, frame)
        assert series_identical(out, frame["a"] + frame["b"])

    def test_div_by_where_nonzero_masks_zero_denominator(self, frame):
        node = {
            "op": "div",
            "left": col("a"),
            "right": {"op": "where_nonzero", "arg": col("b")},
        }
        out = evaluate_feature(node, frame)
        expected = frame["a"] / frame["b"].where(frame["b"] != 0)
        assert series_identical(out, expected)

    def test_pow_const(self, frame):
        out = evaluate_feature({"op": "pow", "left": col("a"), "right": const(2)}, frame)
        assert series_identical(out, frame["a"] ** 2)

    def test_ufunc_log_matches_apply(self, frame):
        node = {
            "op": "ufunc",
            "fn": "log",
            "arg": {
                "op": "add",
                "left": {"op": "clip", "arg": col("b"), "lower": 0, "upper": None},
                "right": const(1.0),
            },
        }
        out = evaluate_feature(node, frame)
        expected = (frame["b"].clip(lower=0) + 1.0).apply(np.log)
        assert series_identical(out, expected)

    def test_isna_int(self, frame):
        out = evaluate_feature({"op": "isna_int", "column": "b"}, frame)
        assert out.tolist() == [0, 0, 1, 0]
        assert out.dtype.kind == "i"


class TestCutAndMaps:
    def test_cut_assigns_bins_and_out_of_range(self):
        frame = DataFrame({"v": Series([1.0, 5.0, 50.0, np.nan])})
        node = {
            "op": "cut",
            "column": "v",
            "edges": [0.0, 10.0, 20.0],
            "labels": [0, 1],
            "right": True,
        }
        out = evaluate_feature(node, frame)
        assert out.tolist()[:2] == [0, 0]
        assert np.isnan(out.values[2])  # out of range -> missing
        assert np.isnan(out.values[3])  # missing stays missing

    def test_dict_map_unmapped_is_missing_then_fillna(self, frame):
        node = {
            "op": "fillna",
            "value": -1.0,
            "arg": {
                "op": "dict_map",
                "column": "s",
                "keys": ["x", "y"],
                "values": [10.0, 20.0],
            },
        }
        out = evaluate_feature(node, frame)
        assert out.tolist() == [10.0, 20.0, 10.0, -1.0]

    def test_qcut_collapsed_dtypes(self):
        all_present = DataFrame({"v": Series([1.0, 1.0])})
        out = evaluate_feature({"op": "qcut_collapsed", "column": "v"}, all_present)
        assert out.dtype.kind == "i" and out.tolist() == [0, 0]
        mixed = DataFrame({"v": Series([1.0, np.nan])})
        out = evaluate_feature({"op": "qcut_collapsed", "column": "v"}, mixed)
        assert out.dtype.kind == "f"
        assert out.values[0] == 0.0 and np.isnan(out.values[1])
        none_frame = DataFrame({"v": Series([np.nan, np.nan])})
        out = evaluate_feature({"op": "qcut_collapsed", "column": "v"}, none_frame)
        assert out.dtype == object and out.tolist() == [None, None]


class TestStringKernels:
    def test_str_len_fast_matches_loop(self):
        frame = DataFrame({"t": Series(["", "ab", "hello world"])})
        out = evaluate_feature({"op": "str_len", "column": "t"}, frame)
        assert series_identical(out, frame["t"].str.len())

    def test_str_len_non_ascii_and_missing(self):
        frame = DataFrame({"t": Series(["héllo", None, "ab"])})
        out = evaluate_feature({"op": "str_len", "column": "t"}, frame)
        assert series_identical(out, frame["t"].str.len())

    def test_split_parts_fast_matches_loop_semantics(self):
        values = ["a,b", "only", "x , y", "a,b,c", "trail,"]
        frame = DataFrame({"p": Series(values)})
        node = {
            "op": "split_parts",
            "column": "p",
            "sep": ",",
            "outputs": ["p0", "p1"],
        }
        out = evaluate_feature(node, frame)
        assert out["p0"].tolist() == ["a", "only", "x", "a", "trail"]
        assert out["p1"].tolist() == ["b", None, "y", "b", ""]

    def test_split_parts_missing_values_use_loop_path(self):
        frame = DataFrame({"p": Series(["a,b", None, "c"])})
        node = {
            "op": "split_parts",
            "column": "p",
            "sep": ",",
            "outputs": ["p0", "p1"],
        }
        out = evaluate_feature(node, frame)
        assert out["p0"].tolist() == ["a", None, "c"]
        assert out["p1"].tolist() == ["b", None, None]


class TestDateSplit:
    def test_fast_path_matches_accessor(self):
        dates = ["2015-01-01", "2020-02-29", "1999-12-31", "2024-07-04"]
        frame = DataFrame({"d": Series(dates)})
        node = {
            "op": "date_split",
            "column": "d",
            "outputs": [["month", "d_month"], ["dayofweek", "d_dow"]],
        }
        out = evaluate_feature(node, frame)
        assert series_identical(out["d_month"], frame["d"].dt.month.rename("d_month"))
        assert series_identical(
            out["d_dow"], frame["d"].dt.dayofweek.rename("d_dow")
        )

    def test_non_iso_strings_use_accessor_path(self):
        frame = DataFrame({"d": Series(["01/02/2015", "03/04/2016"])})
        node = {
            "op": "date_split",
            "column": "d",
            "outputs": [["month", "d_month"]],
        }
        out = evaluate_feature(node, frame)
        assert series_identical(out["d_month"], frame["d"].dt.month.rename("d_month"))


class TestDummies:
    def test_unseen_category_gets_all_zeros(self):
        frame = DataFrame({"s": Series(["x", "new", "y"])})
        node = {
            "op": "dummies",
            "column": "s",
            "categories": ["x", "y"],
            "names": ["s_x", "s_y"],
        }
        out = evaluate_feature(node, frame)
        assert out["s_x"].tolist() == [1, 0, 0]
        assert out["s_y"].tolist() == [0, 0, 1]


class TestGroupLookup:
    def test_single_key_broadcast(self):
        frame = DataFrame(
            {"g": Series(["a", "b", "a", "c"]), "v": Series([1.0, 2.0, 3.0, 4.0])}
        )
        node = {
            "op": "group_lookup",
            "keys": ["g"],
            "agg_col": "v",
            "agg": "mean",
            "table": [["a", 2.0], ["b", 2.0]],
            "fill": None,
            "value_kind": "float64",
        }
        out = evaluate_feature(node, frame)
        assert out.tolist()[:3] == [2.0, 2.0, 2.0]
        assert np.isnan(out.values[3])  # unseen group -> fill (None -> NaN)

    def test_multi_key_matches_groupby_transform(self):
        frame = DataFrame(
            {
                "g": Series(["a", "a", "b", "b"]),
                "h": Series(["p", "q", "p", "p"]),
                "v": Series([1.0, 2.0, 3.0, 5.0]),
            }
        )
        fitted = frame.groupby(["g", "h"])["v"].transform("max")
        table = [
            ["a", "p", 1.0],
            ["a", "q", 2.0],
            ["b", "p", 5.0],
        ]
        node = {
            "op": "group_lookup",
            "keys": ["g", "h"],
            "agg_col": "v",
            "agg": "max",
            "table": table,
            "fill": None,
            "value_kind": "float64",
        }
        out = evaluate_feature(node, frame)
        assert series_identical(out, fitted)

    def test_missing_keys_use_hash_path(self):
        frame = DataFrame(
            {"g": Series(["a", None, "a"]), "v": Series([1.0, 2.0, 3.0])}
        )
        node = {
            "op": "group_lookup",
            "keys": ["g"],
            "agg_col": "v",
            "agg": "mean",
            "table": [["a", 2.0]],
            "fill": None,
            "value_kind": "float64",
        }
        out = evaluate_feature(node, frame)
        assert out.values[0] == 2.0 and out.values[2] == 2.0


class TestValidation:
    def test_fit_nodes_rejected(self):
        with pytest.raises(ExprError):
            validate_expr({"op": "fit_mean", "column": "a"})
        assert not is_frozen({"op": "fit_mean", "column": "a"})

    def test_unknown_op_rejected(self):
        with pytest.raises(ExprError):
            validate_expr({"op": "nope"})

    def test_expr_columns_collects_references(self):
        node = {
            "op": "add",
            "left": col("a"),
            "right": {
                "op": "group_lookup",
                "keys": ["g", "h"],
                "agg_col": "v",
                "agg": "mean",
                "table": [],
                "fill": None,
                "value_kind": "float64",
            },
        }
        assert set(expr_columns(node)) == {"a", "g", "h", "v"}

    def test_freeze_resolves_fit_mean(self, frame):
        node = {
            "op": "sub",
            "left": col("a"),
            "right": {"op": "fit_mean", "column": "a"},
        }
        frozen = freeze_expr(node, frame)
        validate_expr(frozen)
        assert frozen["right"]["op"] == "const"
        assert frozen["right"]["value"] == frame["a"].mean()
