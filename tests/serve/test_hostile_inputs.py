"""Hostile row-dict batches: typed errors or quarantine, never a traceback.

Every batch here is something a real caller could POST at a feature
server.  The contract under test: ``FeatureServer.transform`` either
serves the batch, raises a typed :class:`PlanError` subclass with an
actionable message, or (under ``degrade``) quarantines the offending
rows with reasons — it never leaks an internal ``KeyError``/``TypeError``
traceback from deep inside a kernel.
"""

import numpy as np
import pytest

from repro.eval.serving import build_demo_result
from repro.serve import (
    BatchValidationError,
    FeatureServer,
    PlanError,
    ValidationLimits,
    compile_plan,
    validate_rows,
)


@pytest.fixture(scope="module")
def plan_and_frame():
    result, frame = build_demo_result(80, seed=0)
    return compile_plan(result, frame, "Target"), frame


def _good_row(frame, i=0):
    return {c: frame[c].values[i] for c in frame.columns}


@pytest.fixture
def strict_server(plan_and_frame):
    plan, _frame = plan_and_frame
    return FeatureServer(plan=plan)


@pytest.fixture
def degrade_server(plan_and_frame):
    plan, _frame = plan_and_frame
    return FeatureServer(plan=plan, failure_policy="degrade")


class TestEmptyAndMalformedBatches:
    def test_empty_batch_raises_typed_error(self, strict_server):
        with pytest.raises(BatchValidationError, match="empty batch"):
            strict_server.transform([])

    def test_empty_batch_raises_under_degrade_too(self, degrade_server):
        with pytest.raises(BatchValidationError, match="empty batch"):
            degrade_server.transform([])

    def test_non_mapping_rows_quarantined(self, plan_and_frame, degrade_server):
        _plan, frame = plan_and_frame
        rows = [_good_row(frame, 0), "garbage", 42, _good_row(frame, 1)]
        out, report = degrade_server.transform_with_report(rows)
        assert len(out) == 2
        reasons = dict(report.quarantine.quarantined)
        assert "not a mapping" in reasons[1]
        assert "not a mapping" in reasons[2]

    def test_all_rows_hostile_raises_not_empty_frame(self, degrade_server):
        with pytest.raises(BatchValidationError, match="no rows survived"):
            degrade_server.transform(["junk", None, 3.14])


class TestInconsistentKeySets:
    def test_missing_keys_patched_under_degrade(self, plan_and_frame, degrade_server):
        plan, frame = plan_and_frame
        complete = _good_row(frame, 0)
        partial = dict(complete)
        numeric_col = next(n for n, k in plan.input_schema if k == "numeric")
        del partial[numeric_col]
        out, report = degrade_server.transform_with_report([complete, partial])
        assert len(out) == 2  # both rows served
        assert report.quarantine.patched_cells == 1
        assert np.isnan(out[numeric_col].values[1])

    def test_missing_keys_fail_loudly_under_strict(self, plan_and_frame, strict_server):
        plan, frame = plan_and_frame
        partial = _good_row(frame, 0)
        del partial[plan.input_schema[0][0]]
        with pytest.raises(BatchValidationError):
            strict_server.transform([partial])


class TestHostileValues:
    def test_none_in_numeric_column_becomes_nan(self, plan_and_frame, degrade_server):
        plan, frame = plan_and_frame
        row = _good_row(frame, 0)
        numeric_col = next(n for n, k in plan.input_schema if k == "numeric")
        row[numeric_col] = None
        out, _report = degrade_server.transform_with_report([row])
        assert np.isnan(out[numeric_col].values[0])

    def test_nested_values_quarantine_the_row(self, plan_and_frame, degrade_server):
        plan, frame = plan_and_frame
        good = _good_row(frame, 0)
        bad = dict(good)
        bad[plan.input_schema[0][0]] = {"nested": "dict"}
        out, report = degrade_server.transform_with_report([good, bad])
        assert len(out) == 1
        assert report.quarantine.quarantined_rows == 1
        assert "nested" in report.quarantine.quarantined[0][1]

    def test_inf_is_patched_to_nan_not_served(self, plan_and_frame, degrade_server):
        plan, frame = plan_and_frame
        row = _good_row(frame, 0)
        numeric_col = next(n for n, k in plan.input_schema if k == "numeric")
        row[numeric_col] = float("inf")
        out, report = degrade_server.transform_with_report([row])
        assert np.isnan(out[numeric_col].values[0])
        assert report.quarantine.patched_cells == 1

    def test_wrong_dtype_string_in_numeric_quarantines(
        self, plan_and_frame, degrade_server
    ):
        plan, frame = plan_and_frame
        row = _good_row(frame, 0)
        numeric_col = next(n for n, k in plan.input_schema if k == "numeric")
        row[numeric_col] = "definitely-not-a-number"
        with pytest.raises(BatchValidationError, match="no rows survived"):
            degrade_server.transform([row])

    def test_non_utf8_string_quarantines(self, plan_and_frame, degrade_server):
        plan, frame = plan_and_frame
        good = _good_row(frame, 0)
        bad = dict(good)
        object_col = next(n for n, k in plan.input_schema if k == "object")
        bad[object_col] = "lone surrogate: \ud800"
        out, report = degrade_server.transform_with_report([good, bad])
        assert len(out) == 1
        assert "UTF-8" in report.quarantine.quarantined[0][1]

    def test_oversized_string_quarantines(self, plan_and_frame):
        plan, frame = plan_and_frame
        server = FeatureServer(
            plan=plan,
            failure_policy="degrade",
            limits=ValidationLimits(max_string_chars=64),
        )
        good = _good_row(frame, 0)
        bad = dict(good)
        object_col = next(n for n, k in plan.input_schema if k == "object")
        bad[object_col] = "x" * 65
        out, report = server.transform_with_report([good, bad])
        assert len(out) == 1
        assert "max_string_chars" in report.quarantine.quarantined[0][1]

    def test_hostile_values_raise_typed_error_under_strict(
        self, plan_and_frame, strict_server
    ):
        plan, frame = plan_and_frame
        row = _good_row(frame, 0)
        row[plan.input_schema[0][0]] = {"nested": 1}
        try:
            strict_server.transform([row])
        except PlanError as exc:
            assert "nested" in str(exc)  # typed AND actionable
        else:
            pytest.fail("hostile batch served silently under strict policy")


class TestFloodAndDriftWarnings:
    def test_nan_flood_flagged_not_fatal(self, plan_and_frame, degrade_server):
        plan, frame = plan_and_frame
        numeric_col = next(n for n, k in plan.input_schema if k == "numeric")
        rows = []
        for i in range(10):
            row = _good_row(frame, i)
            row[numeric_col] = float("nan")
            rows.append(row)
        out, report = degrade_server.transform_with_report(rows)
        assert len(out) == 10
        assert any(
            numeric_col in w and "NaN" in w for w in report.quarantine.warnings
        )

    def test_unknown_categories_flagged(self, plan_and_frame, degrade_server):
        plan, frame = plan_and_frame
        rows = []
        for i in range(5):
            row = _good_row(frame, i)
            row["City"] = f"Atlantis-{i}"
            rows.append(row)
        out, report = degrade_server.transform_with_report(rows)
        assert len(out) == 5  # unseen categories serve (kernels have a path)
        assert any("City" in w and "categories" in w for w in report.quarantine.warnings)


class TestValidateRowsDirect:
    def test_validated_frame_passes_plan_schema(self, plan_and_frame):
        plan, frame = plan_and_frame
        rows = [_good_row(frame, i) for i in range(6)]
        built, _report = validate_rows(plan, rows)
        plan.validate_frame(built)  # must not raise

    def test_report_serializes(self, plan_and_frame):
        plan, frame = plan_and_frame
        rows = [_good_row(frame, 0), "junk"]
        _built, report = validate_rows(plan, rows)
        payload = report.to_dict()
        assert payload["total_rows"] == 2
        assert payload["quarantined_rows"] == 1
        assert payload["quarantined"][0]["reason"]
