"""Pipelined shard execution through the serve layer.

The contract: opting into ``pipeline_workers`` changes *when* shards are
decoded and transformed — overlapped across threads, bounded by the
prefetch window — but never *what* comes out: every pipelined path
(``apply_stream``, ``FeatureServer.transform_stream``,
``refresh_group_tables``, ``fit_transform_stream``'s second pass) is
bit-identical to its sequential twin, and the fault-isolation machinery
(degrade NaN-fills, breakers, strict mid-stream errors) composes with
worker threads unchanged.
"""

import json

import numpy as np
import pytest

from repro.core import SmartFeat
from repro.core.sandbox import TransformError
from repro.core.shard_pipeline import PipelineStats
from repro.dataframe.io import concat_shards, iter_frame_shards
from repro.eval.serving import build_demo_result
from repro.fm import SimulatedFM
from repro.serve import (
    BreakerBoard,
    FeaturePlan,
    FeatureServer,
    compile_plan,
    frames_identical,
)


@pytest.fixture(scope="module")
def demo():
    result, frame = build_demo_result(600, seed=0)
    plan = FeaturePlan.from_json(compile_plan(result, frame, "Target").to_json())
    return plan, frame, plan.apply(frame)


class TestApplyStreamPipelined:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_to_sequential(self, demo, workers):
        plan, frame, base = demo
        merged = concat_shards(
            list(
                plan.apply_stream(
                    iter_frame_shards(frame, 113), pipeline_workers=workers
                )
            )
        )
        identical, detail = frames_identical(merged, base)
        assert identical, f"workers={workers}: {detail}"

    def test_budget_rechunk_identical_under_workers(self, demo):
        """The budget divides across in-flight shards, so the pipelined
        path re-chunks differently — the concatenated stream must not
        care."""
        plan, frame, base = demo
        sequential = concat_shards(
            list(plan.apply_stream(iter_frame_shards(frame, 600), memory_budget_mb=1))
        )
        piped = list(
            plan.apply_stream(
                iter_frame_shards(frame, 600),
                memory_budget_mb=1,
                pipeline_workers=3,
            )
        )
        assert len(piped) > 1, "1 MB across 6 in-flight shards must re-chunk"
        merged = concat_shards(piped)
        for other in (sequential, base):
            identical, detail = frames_identical(merged, other)
            assert identical, detail

    def test_explicit_prefetch(self, demo):
        plan, frame, base = demo
        merged = concat_shards(
            list(
                plan.apply_stream(
                    iter_frame_shards(frame, 97),
                    pipeline_workers=2,
                    pipeline_prefetch=5,
                )
            )
        )
        identical, detail = frames_identical(merged, base)
        assert identical, detail

    def test_stats_record_the_stream(self, demo):
        plan, frame, _ = demo
        stats = PipelineStats()
        list(
            plan.apply_stream(
                iter_frame_shards(frame, 100),
                pipeline_workers=2,
                pipeline_stats=stats,
            )
        )
        payload = stats.to_dict()
        assert payload["runs"] == 1
        assert payload["shards_in"] == payload["shards_out"] == 6
        assert payload["wall_s"] > 0
        assert payload["stage_s"]["transform"] > 0

    def test_invalid_workers_raise(self, demo):
        from repro.serve import PlanError

        plan, frame, _ = demo
        with pytest.raises(PlanError, match="workers"):
            list(
                plan.apply_stream(
                    iter_frame_shards(frame, 100), pipeline_workers=0
                )
            )


class TestTransformStreamPipelined:
    def test_bit_identical_and_stats_surfaced(self, demo):
        plan, frame, base = demo
        sequential = FeatureServer(plan)
        piped = FeatureServer(plan)
        seq_out = concat_shards(
            list(sequential.transform_stream(iter_frame_shards(frame, 150)))
        )
        pipe_out = concat_shards(
            list(
                piped.transform_stream(
                    iter_frame_shards(frame, 150), pipeline_workers=3
                )
            )
        )
        identical, detail = frames_identical(pipe_out, seq_out)
        assert identical, detail
        identical, detail = frames_identical(pipe_out, base)
        assert identical, detail
        assert sequential.stats()["pipeline"] == {}
        pipe_stats = piped.stats()["pipeline"]
        assert pipe_stats["shards_out"] == 4
        assert pipe_stats["workers"] == 3
        assert piped.stats()["rows_in"] == len(frame)

    def test_stats_accumulate_across_streams(self, demo):
        plan, frame, _ = demo
        server = FeatureServer(plan)
        for _ in range(2):
            list(
                server.transform_stream(
                    iter_frame_shards(frame, 200), pipeline_workers=2
                )
            )
        payload = server.stats()["pipeline"]
        assert payload["runs"] == 2
        assert payload["shards_out"] == 6


class TestFaultIsolationComposition:
    """PR 8's resilience machinery under PR 10's worker threads."""

    @staticmethod
    def _fail_on_small_shard(feature):
        """Deterministic under any worker timing: fails on the one shard
        whose row count differs (the trailing partial shard)."""

        def evaluator(spec, frame, default):
            if spec.name == feature and len(frame) == 100:
                raise TransformError("injected: fails on the partial shard")
            return default()

        return evaluator

    def test_degrade_nan_fills_only_the_failing_shard(self, demo):
        plan, frame, base = demo
        outs = list(
            plan.apply_stream(
                iter_frame_shards(frame, 250),  # 250 + 250 + 100
                failure_policy="degrade",
                evaluator=self._fail_on_small_shard("Income_z"),
                pipeline_workers=3,
            )
        )
        assert [len(o) for o in outs] == [250, 250, 100]
        expect = list(iter_frame_shards(base, 250))
        for idx in (0, 1):
            identical, detail = frames_identical(outs[idx], expect[idx].frame)
            assert identical, f"healthy shard {idx} diverged: {detail}"
        assert np.isnan(outs[2]["Income_z"].values).all()
        for name in base.columns:
            if name == "Income_z":
                continue
            assert np.array_equal(
                outs[2][name].values,
                expect[2].frame[name].values,
                equal_nan=outs[2][name].dtype.kind == "f",
            ), name

    def test_strict_raises_after_healthy_prefix(self, demo):
        plan, frame, _ = demo
        stream = plan.apply_stream(
            iter_frame_shards(frame, 250),
            evaluator=self._fail_on_small_shard("Income_z"),
            pipeline_workers=3,
        )
        got = []
        with pytest.raises(TransformError, match="injected"):
            for out in stream:
                got.append(len(out))
        assert got == [250, 250]

    def test_breakers_trip_across_worker_threads(self, demo):
        plan, frame, _ = demo

        def always_fail(spec, frame_, default):
            if spec.name == "Income_z":
                raise TransformError("injected: always fails")
            return default()

        breakers = BreakerBoard(failure_threshold=2, cooldown_calls=100)
        outs = list(
            plan.apply_stream(
                iter_frame_shards(frame, 100),
                failure_policy="degrade",
                breakers=breakers,
                evaluator=always_fail,
                pipeline_workers=4,
            )
        )
        assert len(outs) == 6
        assert breakers.snapshot()["Income_z"]["state"] == "open"
        for out in outs:
            assert np.isnan(out["Income_z"].values).all()


class TestRefreshGroupTablesPipelined:
    def test_refreshed_tables_bit_identical(self, demo):
        """Feature materialization fans out to workers but the streaming
        fold stays a strict left-fold in stream order, so the refreshed
        plan JSON is identical byte-for-byte (sorted keys)."""
        plan, frame, _ = demo
        sequential = FeaturePlan.from_json(plan.to_json())
        piped = FeaturePlan.from_json(plan.to_json())
        assert sequential.refresh_group_tables(iter_frame_shards(frame, 97)) == 2
        assert (
            piped.refresh_group_tables(
                iter_frame_shards(frame, 97), pipeline_workers=3
            )
            == 2
        )
        assert json.dumps(json.loads(sequential.to_json()), sort_keys=True) == (
            json.dumps(json.loads(piped.to_json()), sort_keys=True)
        )
        out_a, out_b = sequential.apply(frame), piped.apply(frame)
        identical, detail = frames_identical(out_b, out_a)
        assert identical, detail

    def test_chunking_and_workers_invariant(self, demo):
        plan, frame, _ = demo
        baseline = FeaturePlan.from_json(plan.to_json())
        baseline.refresh_group_tables(iter_frame_shards(frame, 211))
        want = json.dumps(json.loads(baseline.to_json()), sort_keys=True)
        for chunk, workers in ((1, 2), (211, 4), (10**6, 1)):
            p = FeaturePlan.from_json(plan.to_json())
            p.refresh_group_tables(
                iter_frame_shards(frame, chunk), pipeline_workers=workers
            )
            got = json.dumps(json.loads(p.to_json()), sort_keys=True)
            assert got == want, f"chunk={chunk} workers={workers}"


class TestFitTransformStreamPipelined:
    def test_second_pass_refresh_identical(self):
        def make_tool():
            return SmartFeat(
                fm=SimulatedFM(seed=0, model="gpt-4"),
                function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
                compile_plan=True,
            )

        _, frame = build_demo_result(600, seed=0)

        def run(**kwargs):
            return make_tool().fit_transform_stream(
                lambda: iter_frame_shards(frame, 157),
                "Target",
                fit_sample_rows=400,
                sample_seed=7,
                **kwargs,
            )

        sequential = run()
        piped = run(pipeline_workers=3, pipeline_prefetch=2)
        identical, detail = frames_identical(piped.frame, sequential.frame)
        assert identical, detail
        assert json.dumps(
            json.loads(piped.plan.to_json()), sort_keys=True
        ) == json.dumps(json.loads(sequential.plan.to_json()), sort_keys=True)
