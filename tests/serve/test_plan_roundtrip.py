"""FeaturePlan serialization: round-trip identity, versioning, migration."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.eval.serving import build_demo_result
from repro.serve import (
    PLAN_SCHEMA_VERSION,
    FeaturePlan,
    FeatureSpec,
    PlanSchemaError,
    PlanVersionError,
    compile_plan,
    frames_identical,
)


def demo_plan(n_rows=60, seed=0):
    result, frame = build_demo_result(n_rows, seed=seed)
    return compile_plan(result, frame, "Target"), result, frame


class TestRoundTrip:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_rows=st.integers(min_value=30, max_value=120),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_every_codegen_form_replays_identically(self, n_rows, seed):
        """fit → compile → JSON → load → replay is bit-identical for a
        workload that exercises every operator form the codegen emits."""
        plan, result, frame = demo_plan(n_rows, seed)
        counts = plan.counts()
        assert counts["fallback"] == 0 and counts["omitted"] == 0, counts
        loaded = FeaturePlan.from_json(plan.to_json())
        identical, detail = frames_identical(loaded.apply(frame), result.frame)
        assert identical, detail

    def test_json_is_valid_and_versioned(self):
        plan, _, _ = demo_plan()
        payload = json.loads(plan.to_json())
        assert payload["schema_version"] == PLAN_SCHEMA_VERSION
        assert payload["fingerprint"] == plan.fingerprint
        assert len(payload["features"]) == len(plan.features)

    def test_save_load_file(self, tmp_path):
        plan, result, frame = demo_plan()
        path = str(tmp_path / "plan.json")
        plan.save(path)
        loaded = FeaturePlan.load(path)
        assert loaded.fingerprint == plan.fingerprint
        identical, detail = frames_identical(loaded.apply(frame), result.frame)
        assert identical, detail


class TestVersioning:
    def test_newer_schema_version_refused_loudly(self):
        plan, _, _ = demo_plan()
        payload = plan.to_dict()
        payload["schema_version"] = PLAN_SCHEMA_VERSION + 1
        with pytest.raises(PlanVersionError, match="upgrade the reader"):
            FeaturePlan.from_dict(payload)

    def test_missing_schema_version_refused(self):
        plan, _, _ = demo_plan()
        payload = plan.to_dict()
        del payload["schema_version"]
        with pytest.raises(PlanSchemaError, match="schema_version"):
            FeaturePlan.from_dict(payload)

    def test_v1_payload_migrates(self):
        """A simulated pre-release v1 plan (flat ``columns`` mapping, no
        fingerprint) migrates to the current shape and replays."""
        plan, result, frame = demo_plan()
        payload = plan.to_dict()
        payload["schema_version"] = 1
        payload["columns"] = {name: kind for name, kind in payload.pop("input_schema")}
        payload.pop("fingerprint")
        migrated = FeaturePlan.from_dict(payload)
        assert migrated.schema_version == PLAN_SCHEMA_VERSION
        assert migrated.fingerprint == plan.fingerprint
        identical, detail = frames_identical(migrated.apply(frame), result.frame)
        assert identical, detail

    def test_unknown_old_version_fails_loudly(self):
        plan, _, _ = demo_plan()
        payload = plan.to_dict()
        payload["schema_version"] = 0
        with pytest.raises(PlanVersionError, match="no migration"):
            FeaturePlan.from_dict(payload)


class TestTampering:
    def test_fingerprint_mismatch_detected(self):
        plan, _, _ = demo_plan()
        payload = plan.to_dict()
        payload["input_schema"] = payload["input_schema"][:-1]  # drop a column
        with pytest.raises(PlanSchemaError, match="fingerprint mismatch"):
            FeaturePlan.from_dict(payload)

    def test_compiled_spec_requires_expression(self):
        with pytest.raises(PlanSchemaError, match="no expression"):
            FeatureSpec.from_dict(
                {
                    "name": "f",
                    "input_columns": ["a"],
                    "output_columns": ["f"],
                    "status": "compiled",
                }
            )

    def test_fit_node_smuggled_into_plan_rejected(self):
        with pytest.raises(PlanSchemaError):
            FeatureSpec.from_dict(
                {
                    "name": "f",
                    "input_columns": ["a"],
                    "output_columns": ["f"],
                    "status": "compiled",
                    "expr": {"op": "fit_mean", "column": "a"},
                }
            )

    def test_unknown_status_rejected(self):
        with pytest.raises(PlanSchemaError, match="unknown status"):
            FeatureSpec.from_dict(
                {
                    "name": "f",
                    "input_columns": ["a"],
                    "output_columns": ["f"],
                    "status": "mystery",
                }
            )

    def test_schema_mismatch_at_apply_lists_all_problems(self):
        plan, _, frame = demo_plan()
        wrong = frame.column_view([c for c in frame.columns if c != "Age"])
        with pytest.raises(PlanSchemaError, match="Age"):
            plan.apply(wrong)
