"""PlanRegistry versioning/pinning and FeatureServer concurrency."""

import threading

import pytest

from repro.eval.serving import build_demo_result
from repro.serve import (
    FeatureServer,
    PlanError,
    PlanNotFoundError,
    PlanRegistry,
    PlanSchemaError,
    compile_plan,
    frames_identical,
)


@pytest.fixture
def plan_and_frame():
    result, frame = build_demo_result(80, seed=0)
    return compile_plan(result, frame, "Target"), result, frame


class TestRegistry:
    def test_save_assigns_increasing_versions(self, tmp_path, plan_and_frame):
        plan, _, _ = plan_and_frame
        registry = PlanRegistry(str(tmp_path))
        assert registry.save(plan, "demo") == 1
        assert registry.save(plan, "demo") == 2
        assert registry.versions("demo") == [1, 2]
        assert registry.names() == ["demo"]

    def test_load_defaults_to_latest(self, tmp_path, plan_and_frame):
        plan, _, _ = plan_and_frame
        registry = PlanRegistry(str(tmp_path))
        registry.save(plan, "demo")
        registry.save(plan, "demo")
        loaded = registry.load("demo")
        assert loaded.fingerprint == plan.fingerprint

    def test_pin_overrides_latest(self, tmp_path, plan_and_frame):
        plan, _, _ = plan_and_frame
        registry = PlanRegistry(str(tmp_path))
        registry.save(plan, "demo")
        registry.save(plan, "demo")
        registry.pin("demo", 1)
        assert registry.pinned("demo") == 1
        # a fresh registry instance re-reads pins from disk
        again = PlanRegistry(str(tmp_path))
        assert again.pinned("demo") == 1
        again.load("demo")  # resolves the pin without error
        registry.unpin("demo")
        assert registry.pinned("demo") is None

    def test_pin_to_missing_version_refused(self, tmp_path, plan_and_frame):
        plan, _, _ = plan_and_frame
        registry = PlanRegistry(str(tmp_path))
        registry.save(plan, "demo")
        with pytest.raises(PlanNotFoundError):
            registry.pin("demo", 7)

    def test_unknown_name_raises(self, tmp_path):
        with pytest.raises(PlanNotFoundError):
            PlanRegistry(str(tmp_path)).load("nope")

    def test_invalid_name_rejected(self, tmp_path, plan_and_frame):
        plan, _, _ = plan_and_frame
        with pytest.raises(PlanError):
            PlanRegistry(str(tmp_path)).save(plan, "../escape")


class TestServer:
    def test_needs_plan_or_registry(self):
        with pytest.raises(PlanError):
            FeatureServer()

    def test_transform_dataframe(self, plan_and_frame):
        plan, result, frame = plan_and_frame
        server = FeatureServer(plan=plan)
        out = server.transform(frame)
        identical, detail = frames_identical(out, result.frame)
        assert identical, detail

    def test_transform_row_dicts(self, plan_and_frame):
        plan, result, frame = plan_and_frame
        server = FeatureServer(plan=plan)
        rows = [
            {c: frame[c].values[i] for c in frame.columns} for i in range(len(frame))
        ]
        out = server.transform(rows)
        assert out.columns == result.frame.columns

    def test_registry_backed_resolution(self, tmp_path, plan_and_frame):
        plan, result, frame = plan_and_frame
        registry = PlanRegistry(str(tmp_path))
        registry.save(plan, "demo")
        server = FeatureServer(registry=registry, name="demo")
        out = server.transform(frame)
        identical, detail = frames_identical(out, result.frame)
        assert identical, detail

    def test_schema_mismatch_is_loud(self, plan_and_frame):
        plan, _, frame = plan_and_frame
        server = FeatureServer(plan=plan)
        wrong = frame.column_view([c for c in frame.columns if c != "City"])
        with pytest.raises(PlanSchemaError, match="City"):
            server.transform(wrong)

    def test_concurrent_callers_agree(self, plan_and_frame):
        plan, result, frame = plan_and_frame
        server = FeatureServer(plan=plan)
        failures = []

        def caller():
            try:
                for _ in range(5):
                    out = server.transform(frame)
                    identical, detail = frames_identical(out, result.frame)
                    assert identical, detail
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=caller) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures[0]

    def test_input_frame_never_mutated(self, plan_and_frame):
        plan, result, frame = plan_and_frame
        columns_before = list(frame.columns)
        FeatureServer(plan=plan).transform(frame)
        assert frame.columns == columns_before
