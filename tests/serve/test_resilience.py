"""Serve-path resilience: isolation, breakers, watchdog, plan cache, health."""

import numpy as np
import pytest

from repro.core.sandbox import TransformError
from repro.dataframe import DataFrame
from repro.eval.serving import build_demo_result
from repro.serve import (
    BreakerBoard,
    CircuitBreaker,
    FeatureServer,
    PlanError,
    PlanRegistry,
    SandboxWatchdog,
    WatchdogTimeout,
    WatchdogViolation,
    compile_plan,
    frames_identical,
    series_identical,
)


@pytest.fixture(scope="module")
def plan_result_frame():
    result, frame = build_demo_result(80, seed=0)
    return compile_plan(result, frame, "Target"), result, frame


def _raise_for(names):
    """A chaos evaluator that fails the named features, runs the rest."""

    def evaluator(spec, frame, default):
        if spec.name in names:
            raise TransformError(f"injected failure for {spec.name!r}")
        return default()

    return evaluator


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_calls=2)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"

    def test_cooldown_refusals_then_half_open_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=2)
        breaker.allow()
        breaker.record_failure()
        assert [breaker.allow() for _ in range(2)] == [False, False]
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=1)
        breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=1)
        breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # cooldown restarted

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_calls=1)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two consecutive

    def test_thread_safety_under_concurrent_counting(self):
        import threading

        breaker = CircuitBreaker(failure_threshold=10_000, cooldown_calls=1)

        def hammer():
            for _ in range(1000):
                breaker.allow()
                breaker.record_failure()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert breaker.snapshot()["consecutive_failures"] == 8000

    def test_board_creates_and_snapshots(self):
        board = BreakerBoard(failure_threshold=2, cooldown_calls=3)
        assert board.get("f").state == "closed"
        assert board.get("f") is board.get("f")
        assert board.snapshot() == {
            "f": {"state": "closed", "consecutive_failures": 0, "cooldown_left": 0}
        }


class TestDegradeIsolation:
    def test_failing_feature_nan_fills_its_columns_only(self, plan_result_frame):
        plan, result, frame = plan_result_frame
        victim = next(s for s in plan.features if s.status != "omitted")
        out, report = plan.apply_with_report(
            frame, failure_policy="degrade", evaluator=_raise_for({victim.name})
        )
        failed = [r for r in report.reports if r.status == "failed"]
        assert [r.feature for r in failed] == [victim.name]
        assert failed[0].error == "TransformError"
        for name in victim.output_columns:
            assert np.isnan(out[name].values).all()

    def test_healthy_features_bit_identical_to_fault_free_run(
        self, plan_result_frame
    ):
        plan, result, frame = plan_result_frame
        victim = next(s for s in plan.features if s.status != "omitted")
        clean = plan.apply(frame)
        out, _report = plan.apply_with_report(
            frame, failure_policy="degrade", evaluator=_raise_for({victim.name})
        )
        for name in clean.columns:
            if name in victim.output_columns:
                continue
            assert series_identical(clean[name], out[name]), name

    def test_strict_policy_reraises_original_error(self, plan_result_frame):
        plan, _result, frame = plan_result_frame
        victim = next(s for s in plan.features if s.status != "omitted")
        with pytest.raises(TransformError, match="injected"):
            plan.apply_with_report(
                frame, failure_policy="strict", evaluator=_raise_for({victim.name})
            )

    def test_schema_drift_degrades_only_dependent_features(self, plan_result_frame):
        plan, _result, frame = plan_result_frame
        dropped = plan.input_schema[0][0]
        drifted = frame.column_view([c for c in frame.columns if c != dropped])
        out, report = plan.apply_with_report(drifted, failure_policy="degrade")
        failed = {r.feature for r in report.reports if r.status == "failed"}
        dependent = {
            s.name
            for s in plan.features
            if s.status != "omitted" and dropped in s.input_columns
        }
        assert dependent <= failed
        for r in report.reports:
            if r.status == "failed":
                assert r.reason  # every failure is explained
        healthy = [
            s
            for s in plan.features
            if s.status != "omitted" and s.name not in failed
        ]
        clean = plan.apply(frame)
        for spec in healthy:
            for name in spec.output_columns:
                assert series_identical(clean[name], out[name]), name

    def test_unknown_policy_rejected(self, plan_result_frame):
        plan, _result, frame = plan_result_frame
        with pytest.raises(PlanError, match="failure_policy"):
            plan.apply_with_report(frame, failure_policy="yolo")

    def test_breaker_skips_after_repeated_failures(self, plan_result_frame):
        plan, _result, frame = plan_result_frame
        victim = next(s for s in plan.features if s.status != "omitted")
        board = BreakerBoard(failure_threshold=2, cooldown_calls=10)
        evaluator = _raise_for({victim.name})
        statuses = []
        for _ in range(4):
            _out, report = plan.apply_with_report(
                frame,
                failure_policy="degrade",
                breakers=board,
                evaluator=evaluator,
            )
            statuses.append(
                next(r.status for r in report.reports if r.feature == victim.name)
            )
        assert statuses == ["failed", "failed", "skipped", "skipped"]
        assert board.get(victim.name).state == "open"


class TestWatchdog:
    def test_timeout_interrupts_pure_python_hang(self):
        watchdog = SandboxWatchdog(timeout_s=0.1, join_grace_s=2.0)

        def spin():
            while True:
                pass

        with pytest.raises(WatchdogTimeout, match="wall-clock"):
            watchdog.run(spin)

    def test_result_and_errors_pass_through(self):
        watchdog = SandboxWatchdog(timeout_s=1.0)
        assert watchdog.run(lambda: 42) == 42
        with pytest.raises(ValueError, match="boom"):
            watchdog.run(lambda: (_ for _ in ()).throw(ValueError("boom")))

    def test_guarded_catches_row_count_violation(self, plan_result_frame):
        plan, _result, frame = plan_result_frame
        spec = next(s for s in plan.features if s.status != "omitted")
        working = frame.column_view(frame.columns)
        watchdog = SandboxWatchdog(timeout_s=1.0)
        from repro.dataframe.series import Series

        with pytest.raises(WatchdogViolation, match="rows"):
            watchdog.run_guarded(
                spec,
                working,
                lambda g: Series._from_array(
                    np.zeros(len(g) - 1), spec.output_columns[0]
                ),
            )

    def test_guarded_catches_dtype_violation(self, plan_result_frame):
        plan, _result, frame = plan_result_frame
        spec = next(
            s
            for s in plan.features
            if s.status != "omitted" and (s.output_kinds or []) == ["numeric"]
        )
        working = frame.column_view(frame.columns)
        watchdog = SandboxWatchdog(timeout_s=1.0)
        from repro.dataframe.series import Series

        wrong = np.empty(len(frame), dtype=object)
        wrong[:] = "oops"
        with pytest.raises(WatchdogViolation, match="kind"):
            watchdog.run_guarded(
                spec,
                working,
                lambda g: Series._from_array(wrong, spec.output_columns[0]),
            )

    def test_guarded_catches_input_mutation(self, plan_result_frame):
        plan, _result, frame = plan_result_frame
        spec = next(s for s in plan.features if s.status != "omitted")
        working = frame.column_view(frame.columns)
        watchdog = SandboxWatchdog(timeout_s=1.0)
        from repro.dataframe.series import Series

        def mutate(g):
            g[g.columns[0]] = Series._from_array(np.zeros(len(g)), g.columns[0])
            return Series._from_array(np.zeros(len(g)), spec.output_columns[0])

        with pytest.raises(WatchdogViolation, match="mutated"):
            watchdog.run_guarded(spec, working, mutate)
        # and the caller's frame was never touched (the guard is a copy)
        identical, detail = frames_identical(
            working, frame.column_view(frame.columns)
        )
        assert identical, detail


class TestServerPlanCache:
    def test_explicit_version_cached_without_reread(self, tmp_path, plan_result_frame):
        plan, _result, frame = plan_result_frame
        registry = PlanRegistry(str(tmp_path))
        registry.save(plan, "demo")
        server = FeatureServer(registry=registry, name="demo", version=1)
        first = server.plan_for()
        assert server.plan_for() is first

    def test_latest_resolution_invalidates_on_save(self, tmp_path, plan_result_frame):
        plan, _result, frame = plan_result_frame
        registry = PlanRegistry(str(tmp_path))
        registry.save(plan, "demo")
        server = FeatureServer(registry=registry, name="demo")
        first = server.plan_for()
        assert server.plan_for() is first  # cached while nothing changed
        marked = type(plan).from_dict(plan.to_dict())
        marked.metadata["marker"] = "v2"
        registry.save(marked, "demo")
        second = server.plan_for()
        assert second.metadata.get("marker") == "v2"  # latest re-resolved

    def test_pin_change_invalidates(self, tmp_path, plan_result_frame):
        plan, _result, frame = plan_result_frame
        registry = PlanRegistry(str(tmp_path))
        registry.save(plan, "demo")
        registry.save(plan, "demo")
        server = FeatureServer(registry=registry, name="demo")
        server.plan_for()
        token_before = registry.state_token("demo")
        registry.pin("demo", 1)
        assert registry.state_token("demo") != token_before
        pinned = server.plan_for()
        assert pinned.fingerprint == plan.fingerprint

    def test_state_token_stable_when_idle(self, tmp_path, plan_result_frame):
        plan, _result, _frame = plan_result_frame
        registry = PlanRegistry(str(tmp_path))
        registry.save(plan, "demo")
        assert registry.state_token("demo") == registry.state_token("demo")


class TestHealthSurface:
    def test_health_ok_when_everything_serves(self, plan_result_frame):
        plan, _result, frame = plan_result_frame
        server = FeatureServer(plan=plan, failure_policy="degrade")
        server.transform(frame)
        health = server.health()
        assert health["status"] == "ok"
        assert health["failing_features"] == []
        assert health["batches"] == 1

    def test_health_degraded_reports_failing_features(self, plan_result_frame):
        plan, _result, frame = plan_result_frame
        victim = next(s for s in plan.features if s.status != "omitted")
        server = FeatureServer(plan=plan, failure_policy="degrade")
        out, report = plan.apply_with_report(
            frame, failure_policy="degrade", evaluator=_raise_for({victim.name})
        )
        # route the report through the server's stats board as transform would
        server.stats_board.record(
            rows_in=len(frame), rows_served=len(out), apply_report=report
        )
        health = server.health()
        assert health["status"] == "degraded"
        assert victim.name in health["failing_features"]

    def test_stats_accumulate_per_feature_counts(self, plan_result_frame):
        plan, _result, frame = plan_result_frame
        server = FeatureServer(plan=plan, failure_policy="degrade")
        server.transform(frame)
        server.transform(frame)
        stats = server.stats()
        assert stats["batches"] == 2
        served = [s for s in plan.features if s.status != "omitted"]
        for spec in served:
            assert stats["features"][spec.name]["ok"] == 2

    def test_strict_server_counts_batches_too(self, plan_result_frame):
        plan, _result, frame = plan_result_frame
        server = FeatureServer(plan=plan)
        server.transform(frame)
        assert server.stats()["batches"] == 1
        assert server.health()["status"] == "ok"
