"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_options(self):
        args = build_parser().parse_args(
            ["run", "tennis", "--rows", "300", "--model", "lr", "--evaluate"]
        )
        assert args.source == "tennis"
        assert args.rows == 300
        assert args.evaluate

    def test_compare_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "imagenet"])


class TestDatasetsCommand:
    def test_lists_all_eight(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("diabetes", "tennis", "west_nile"):
            assert name in out


class TestRunCommand:
    def test_run_on_builtin(self, capsys):
        assert main(["run", "tennis", "--rows", "300"]) == 0
        out = capsys.readouterr().out
        assert "Generated" in out

    def test_run_with_output_csv(self, tmp_path, capsys):
        target = tmp_path / "enriched.csv"
        assert main(["run", "tennis", "--rows", "300", "--output", str(target)]) == 0
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert "Result" in header

    def test_run_on_csv_source(self, tmp_path, capsys):
        source = tmp_path / "data.csv"
        rows = ["age,income,label"]
        for i in range(60):
            rows.append(f"{20 + i % 50},{30 + (i * 7) % 90},{i % 2}")
        source.write_text("\n".join(rows) + "\n")
        assert main(["run", str(source), "--target", "label"]) == 0

    def test_csv_without_target_exits(self, tmp_path):
        source = tmp_path / "data.csv"
        source.write_text("a,b\n1,2\n")
        with pytest.raises(SystemExit):
            main(["run", str(source)])

    def test_csv_with_bad_target_exits(self, tmp_path):
        source = tmp_path / "data.csv"
        source.write_text("a,b\n1,2\n")
        with pytest.raises(SystemExit):
            main(["run", str(source), "--target", "missing"])


class TestCompareCommand:
    def test_compare_prints_table(self, capsys):
        assert main(["compare", "tennis", "--rows", "300", "--models", "lr,nb"]) == 0
        out = capsys.readouterr().out
        assert "Initial AUC" in out
        assert "smartfeat" in out


class TestPlanCommands:
    @staticmethod
    def _write_csv(path, n_rows=80):
        rows = ["age,income,label"]
        for i in range(n_rows):
            rows.append(f"{20 + i % 50},{30 + (i * 7) % 90},{i % 2}")
        path.write_text("\n".join(rows) + "\n")

    def test_parser_accepts_plan_export(self):
        args = build_parser().parse_args(
            ["plan", "export", "tennis", "--rows", "240", "--out", "plan.json"]
        )
        assert args.plan_command == "export"
        assert args.source == "tennis"
        assert args.out == "plan.json"

    def test_parser_accepts_plan_apply(self):
        args = build_parser().parse_args(
            ["plan", "apply", "--plan", "p.json", "--csv", "rows.csv"]
        )
        assert args.plan_command == "apply"
        assert args.csv == "rows.csv"

    def test_export_requires_destination(self, tmp_path):
        source = tmp_path / "data.csv"
        self._write_csv(source)
        with pytest.raises(SystemExit, match="--out"):
            main(["plan", "export", str(source), "--target", "label"])

    def test_export_then_apply_roundtrip(self, tmp_path, capsys):
        source = tmp_path / "data.csv"
        self._write_csv(source)
        plan_path = tmp_path / "plan.json"
        assert (
            main(
                [
                    "plan",
                    "export",
                    str(source),
                    "--target",
                    "label",
                    "--out",
                    str(plan_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Compiled plan" in out and plan_path.exists()

        featured = tmp_path / "featured.csv"
        assert (
            main(
                [
                    "plan",
                    "apply",
                    "--plan",
                    str(plan_path),
                    "--csv",
                    str(source),
                    "--out",
                    str(featured),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Applied plan" in out and featured.exists()

    def test_export_to_registry_and_apply(self, tmp_path, capsys):
        source = tmp_path / "data.csv"
        self._write_csv(source)
        registry = tmp_path / "registry"
        assert (
            main(
                [
                    "plan",
                    "export",
                    str(source),
                    "--target",
                    "label",
                    "--registry",
                    str(registry),
                    "--name",
                    "demo",
                ]
            )
            == 0
        )
        assert "demo v1" in capsys.readouterr().out
        assert (
            main(
                [
                    "plan",
                    "apply",
                    "--registry",
                    str(registry),
                    "--name",
                    "demo",
                    "--csv",
                    str(source),
                ]
            )
            == 0
        )
        assert "Columns:" in capsys.readouterr().out

    def test_apply_schema_mismatch_exits_loudly(self, tmp_path):
        source = tmp_path / "data.csv"
        self._write_csv(source)
        plan_path = tmp_path / "plan.json"
        main(["plan", "export", str(source), "--target", "label", "--out", str(plan_path)])
        wrong = tmp_path / "wrong.csv"
        wrong.write_text("something,else\n1,2\n")
        with pytest.raises(SystemExit, match="plan apply failed"):
            main(["plan", "apply", "--plan", str(plan_path), "--csv", str(wrong)])

    def test_apply_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["plan", "apply", "--csv", "rows.csv"])
