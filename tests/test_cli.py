"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_options(self):
        args = build_parser().parse_args(
            ["run", "tennis", "--rows", "300", "--model", "lr", "--evaluate"]
        )
        assert args.source == "tennis"
        assert args.rows == 300
        assert args.evaluate

    def test_compare_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "imagenet"])


class TestDatasetsCommand:
    def test_lists_all_eight(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("diabetes", "tennis", "west_nile"):
            assert name in out


class TestRunCommand:
    def test_run_on_builtin(self, capsys):
        assert main(["run", "tennis", "--rows", "300"]) == 0
        out = capsys.readouterr().out
        assert "Generated" in out

    def test_run_with_output_csv(self, tmp_path, capsys):
        target = tmp_path / "enriched.csv"
        assert main(["run", "tennis", "--rows", "300", "--output", str(target)]) == 0
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert "Result" in header

    def test_run_on_csv_source(self, tmp_path, capsys):
        source = tmp_path / "data.csv"
        rows = ["age,income,label"]
        for i in range(60):
            rows.append(f"{20 + i % 50},{30 + (i * 7) % 90},{i % 2}")
        source.write_text("\n".join(rows) + "\n")
        assert main(["run", str(source), "--target", "label"]) == 0

    def test_csv_without_target_exits(self, tmp_path):
        source = tmp_path / "data.csv"
        source.write_text("a,b\n1,2\n")
        with pytest.raises(SystemExit):
            main(["run", str(source)])

    def test_csv_with_bad_target_exits(self, tmp_path):
        source = tmp_path / "data.csv"
        source.write_text("a,b\n1,2\n")
        with pytest.raises(SystemExit):
            main(["run", str(source), "--target", "missing"])


class TestCompareCommand:
    def test_compare_prints_table(self, capsys):
        assert main(["compare", "tennis", "--rows", "300", "--models", "lr,nb"]) == 0
        out = capsys.readouterr().out
        assert "Initial AUC" in out
        assert "smartfeat" in out
