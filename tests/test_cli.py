"""Tests for the ``python -m repro`` command-line interface."""

import argparse

import pytest

from repro.cli import _make_clients, build_parser, main
from repro.fm import SimulatedFM, TransportFMClient


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_options(self):
        args = build_parser().parse_args(
            ["run", "tennis", "--rows", "300", "--model", "lr", "--evaluate"]
        )
        assert args.source == "tennis"
        assert args.rows == 300
        assert args.evaluate

    def test_compare_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "imagenet"])

    def test_run_parses_transport_flags(self):
        args = build_parser().parse_args(
            [
                "run",
                "tennis",
                "--checkpoint",
                "state.json",
                "--resume",
                "--adaptive-concurrency",
                "--hedge",
                "0.9",
            ]
        )
        assert args.checkpoint == "state.json"
        assert args.resume
        assert args.adaptive_concurrency
        assert args.hedge == 0.9

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit, match="--resume requires --checkpoint"):
            main(["run", "tennis", "--rows", "200", "--resume"])

    def test_hedge_must_be_a_quantile(self):
        with pytest.raises(SystemExit, match="quantile"):
            main(["run", "tennis", "--rows", "200", "--hedge", "1.5"])


class TestClientSelection:
    """The FM pair is config-selected: simulator by default, live HTTP
    transports when the environment opts in (construction only — no
    request is ever issued here)."""

    ARGS = argparse.Namespace(seed=0)

    def test_defaults_to_simulator(self, monkeypatch):
        monkeypatch.delenv("SMARTFEAT_PROVIDER", raising=False)
        monkeypatch.delenv("SMARTFEAT_API_KEY", raising=False)
        fm, function_fm = _make_clients(self.ARGS)
        assert isinstance(fm, SimulatedFM)
        assert isinstance(function_fm, SimulatedFM)

    def test_env_opt_in_selects_live_transport(self, monkeypatch, capsys):
        monkeypatch.setenv("SMARTFEAT_PROVIDER", "openai")
        monkeypatch.setenv("SMARTFEAT_API_KEY", "test-key")
        monkeypatch.setenv("SMARTFEAT_MODEL", "gpt-4o-mini")
        fm, function_fm = _make_clients(self.ARGS)
        assert isinstance(fm, TransportFMClient)
        assert isinstance(function_fm, TransportFMClient)
        assert fm.is_stateless()  # hedging eligibility rides on this
        assert fm.model == "gpt-4o-mini"
        assert "live provider" in capsys.readouterr().err


class TestDatasetsCommand:
    def test_lists_all_eight(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("diabetes", "tennis", "west_nile"):
            assert name in out


class TestRunCommand:
    def test_run_on_builtin(self, capsys):
        assert main(["run", "tennis", "--rows", "300"]) == 0
        out = capsys.readouterr().out
        assert "Generated" in out

    def test_run_with_output_csv(self, tmp_path, capsys):
        target = tmp_path / "enriched.csv"
        assert main(["run", "tennis", "--rows", "300", "--output", str(target)]) == 0
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert "Result" in header

    def test_run_with_checkpoint_then_resume(self, tmp_path, capsys):
        path = tmp_path / "state.json"
        base_args = ["run", "tennis", "--rows", "300", "--checkpoint", str(path)]
        assert main(base_args) == 0
        first = capsys.readouterr().out
        assert path.exists()
        # Resuming from a finished checkpoint restores every stage and
        # reproduces the run without re-running the search.
        assert main(base_args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[0] == second.splitlines()[0]  # same feature count

    def test_run_with_adaptive_and_hedge_flags(self, capsys):
        # Simulated clients are stateful, so --hedge is inert here; the
        # flags must still wire through and the run must stay green.
        assert (
            main(
                [
                    "run",
                    "tennis",
                    "--rows",
                    "300",
                    "--adaptive-concurrency",
                    "--hedge",
                    "0.95",
                ]
            )
            == 0
        )
        assert "Generated" in capsys.readouterr().out

    def test_run_on_csv_source(self, tmp_path, capsys):
        source = tmp_path / "data.csv"
        rows = ["age,income,label"]
        for i in range(60):
            rows.append(f"{20 + i % 50},{30 + (i * 7) % 90},{i % 2}")
        source.write_text("\n".join(rows) + "\n")
        assert main(["run", str(source), "--target", "label"]) == 0

    def test_csv_without_target_exits(self, tmp_path):
        source = tmp_path / "data.csv"
        source.write_text("a,b\n1,2\n")
        with pytest.raises(SystemExit):
            main(["run", str(source)])

    def test_csv_with_bad_target_exits(self, tmp_path):
        source = tmp_path / "data.csv"
        source.write_text("a,b\n1,2\n")
        with pytest.raises(SystemExit):
            main(["run", str(source), "--target", "missing"])


class TestCompareCommand:
    def test_compare_prints_table(self, capsys):
        assert main(["compare", "tennis", "--rows", "300", "--models", "lr,nb"]) == 0
        out = capsys.readouterr().out
        assert "Initial AUC" in out
        assert "smartfeat" in out


class TestPlanCommands:
    @staticmethod
    def _write_csv(path, n_rows=80):
        rows = ["age,income,label"]
        for i in range(n_rows):
            rows.append(f"{20 + i % 50},{30 + (i * 7) % 90},{i % 2}")
        path.write_text("\n".join(rows) + "\n")

    def test_parser_accepts_plan_export(self):
        args = build_parser().parse_args(
            ["plan", "export", "tennis", "--rows", "240", "--out", "plan.json"]
        )
        assert args.plan_command == "export"
        assert args.source == "tennis"
        assert args.out == "plan.json"

    def test_parser_accepts_plan_apply(self):
        args = build_parser().parse_args(
            ["plan", "apply", "--plan", "p.json", "--csv", "rows.csv"]
        )
        assert args.plan_command == "apply"
        assert args.csv == "rows.csv"

    def test_export_requires_destination(self, tmp_path):
        source = tmp_path / "data.csv"
        self._write_csv(source)
        with pytest.raises(SystemExit, match="--out"):
            main(["plan", "export", str(source), "--target", "label"])

    def test_export_then_apply_roundtrip(self, tmp_path, capsys):
        source = tmp_path / "data.csv"
        self._write_csv(source)
        plan_path = tmp_path / "plan.json"
        assert (
            main(
                [
                    "plan",
                    "export",
                    str(source),
                    "--target",
                    "label",
                    "--out",
                    str(plan_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Compiled plan" in out and plan_path.exists()

        featured = tmp_path / "featured.csv"
        assert (
            main(
                [
                    "plan",
                    "apply",
                    "--plan",
                    str(plan_path),
                    "--csv",
                    str(source),
                    "--out",
                    str(featured),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Applied plan" in out and featured.exists()

    def test_export_to_registry_and_apply(self, tmp_path, capsys):
        source = tmp_path / "data.csv"
        self._write_csv(source)
        registry = tmp_path / "registry"
        assert (
            main(
                [
                    "plan",
                    "export",
                    str(source),
                    "--target",
                    "label",
                    "--registry",
                    str(registry),
                    "--name",
                    "demo",
                ]
            )
            == 0
        )
        assert "demo v1" in capsys.readouterr().out
        assert (
            main(
                [
                    "plan",
                    "apply",
                    "--registry",
                    str(registry),
                    "--name",
                    "demo",
                    "--csv",
                    str(source),
                ]
            )
            == 0
        )
        assert "Columns:" in capsys.readouterr().out

    def test_apply_schema_mismatch_exits_loudly(self, tmp_path):
        source = tmp_path / "data.csv"
        self._write_csv(source)
        plan_path = tmp_path / "plan.json"
        main(["plan", "export", str(source), "--target", "label", "--out", str(plan_path)])
        wrong = tmp_path / "wrong.csv"
        wrong.write_text("something,else\n1,2\n")
        with pytest.raises(SystemExit, match="plan apply failed"):
            main(["plan", "apply", "--plan", str(plan_path), "--csv", str(wrong)])

    def test_apply_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["plan", "apply", "--csv", "rows.csv"])

    def test_parser_accepts_chunk_rows(self):
        args = build_parser().parse_args(
            ["plan", "apply", "--plan", "p.json", "--csv", "r.csv", "--chunk-rows", "64"]
        )
        assert args.chunk_rows == 64

    def test_apply_chunked_output_identical_to_unchunked(self, tmp_path, capsys):
        """``--chunk-rows`` streams shard-by-shard yet writes the exact
        bytes the in-memory path does."""
        source = tmp_path / "data.csv"
        self._write_csv(source, n_rows=100)
        plan_path = tmp_path / "plan.json"
        main(["plan", "export", str(source), "--target", "label", "--out", str(plan_path)])
        capsys.readouterr()

        whole = tmp_path / "whole.csv"
        assert (
            main(["plan", "apply", "--plan", str(plan_path), "--csv", str(source), "--out", str(whole)])
            == 0
        )
        capsys.readouterr()

        chunked = tmp_path / "chunked.csv"
        assert (
            main(
                [
                    "plan", "apply", "--plan", str(plan_path), "--csv", str(source),
                    "--out", str(chunked), "--chunk-rows", "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "15 chunks of <= 7" in out
        assert chunked.read_bytes() == whole.read_bytes()

    def test_apply_chunked_without_out_previews_columns(self, tmp_path, capsys):
        source = tmp_path / "data.csv"
        self._write_csv(source)
        plan_path = tmp_path / "plan.json"
        main(["plan", "export", str(source), "--target", "label", "--out", str(plan_path)])
        capsys.readouterr()
        assert (
            main(["plan", "apply", "--plan", str(plan_path), "--csv", str(source), "--chunk-rows", "32"])
            == 0
        )
        assert "Columns:" in capsys.readouterr().out

    def test_apply_rejects_non_positive_chunk_rows(self, tmp_path):
        source = tmp_path / "data.csv"
        self._write_csv(source)
        plan_path = tmp_path / "plan.json"
        main(["plan", "export", str(source), "--target", "label", "--out", str(plan_path)])
        with pytest.raises(SystemExit, match="chunk-rows"):
            main(
                [
                    "plan", "apply", "--plan", str(plan_path), "--csv", str(source),
                    "--chunk-rows", "0",
                ]
            )


class TestPipelineFlags:
    """``plan apply --pipeline-workers``: overlapped execution with the
    same output bytes."""

    _write_csv = staticmethod(TestPlanCommands._write_csv)

    def _export(self, tmp_path, n_rows=100):
        source = tmp_path / "data.csv"
        self._write_csv(source, n_rows=n_rows)
        plan_path = tmp_path / "plan.json"
        main(["plan", "export", str(source), "--target", "label", "--out", str(plan_path)])
        return source, plan_path

    def test_parser_accepts_pipeline_flags(self):
        args = build_parser().parse_args(
            [
                "plan", "apply", "--plan", "p.json", "--csv", "r.csv",
                "--chunk-rows", "64", "--pipeline-workers", "3",
                "--pipeline-prefetch", "2",
            ]
        )
        assert args.pipeline_workers == 3
        assert args.pipeline_prefetch == 2

    def test_pipelined_output_byte_identical(self, tmp_path, capsys):
        source, plan_path = self._export(tmp_path)
        capsys.readouterr()
        sequential = tmp_path / "sequential.csv"
        main(
            [
                "plan", "apply", "--plan", str(plan_path), "--csv", str(source),
                "--out", str(sequential), "--chunk-rows", "7",
            ]
        )
        capsys.readouterr()
        piped = tmp_path / "piped.csv"
        assert (
            main(
                [
                    "plan", "apply", "--plan", str(plan_path), "--csv", str(source),
                    "--out", str(piped), "--chunk-rows", "7",
                    "--pipeline-workers", "3", "--pipeline-prefetch", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Pipeline: 3 workers, prefetch 2" in out
        assert "queue depth" in out
        assert piped.read_bytes() == sequential.read_bytes()

    def test_workers_require_chunk_rows(self, tmp_path):
        source, plan_path = self._export(tmp_path)
        with pytest.raises(SystemExit, match="--pipeline-workers needs --chunk-rows"):
            main(
                [
                    "plan", "apply", "--plan", str(plan_path), "--csv", str(source),
                    "--pipeline-workers", "2",
                ]
            )

    def test_workers_must_be_positive(self, tmp_path):
        source, plan_path = self._export(tmp_path)
        with pytest.raises(SystemExit, match="--pipeline-workers must be >= 1"):
            main(
                [
                    "plan", "apply", "--plan", str(plan_path), "--csv", str(source),
                    "--chunk-rows", "8", "--pipeline-workers", "0",
                ]
            )

    def test_prefetch_requires_workers(self, tmp_path):
        source, plan_path = self._export(tmp_path)
        with pytest.raises(SystemExit, match="--pipeline-prefetch needs --pipeline-workers"):
            main(
                [
                    "plan", "apply", "--plan", str(plan_path), "--csv", str(source),
                    "--chunk-rows", "8", "--pipeline-prefetch", "2",
                ]
            )

    def test_prefetch_must_be_positive(self, tmp_path):
        source, plan_path = self._export(tmp_path)
        with pytest.raises(SystemExit, match="--pipeline-prefetch must be >= 1"):
            main(
                [
                    "plan", "apply", "--plan", str(plan_path), "--csv", str(source),
                    "--chunk-rows", "8", "--pipeline-workers", "2",
                    "--pipeline-prefetch", "0",
                ]
            )
