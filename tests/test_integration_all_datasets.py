"""Cross-dataset integration: every method runs on every dataset.

These are the smoke guarantees a downstream user relies on: no dataset ×
method combination crashes, SMARTFEAT always produces provenance-complete
results, and the dataset-specific failure modes stay where they belong.
"""

import pytest

from repro.baselines import AutoFeatLike, CAAFELike, FeaturetoolsDFS
from repro.core import SmartFeat
from repro.datasets import DATASET_NAMES, load_dataset
from repro.fm import SimulatedFM

ROWS = 300


@pytest.fixture(scope="module", params=DATASET_NAMES)
def bundle(request):
    return load_dataset(request.param, n_rows=ROWS)


class TestSmartFeatEverywhere:
    def test_runs_and_generates(self, bundle):
        tool = SmartFeat(
            fm=SimulatedFM(seed=0, model="gpt-4"),
            function_fm=SimulatedFM(seed=1, model="gpt-3.5-turbo"),
            downstream_model="rf",
        )
        result = tool.fit_transform(
            bundle.frame,
            target=bundle.target,
            descriptions=bundle.descriptions,
            title=bundle.title,
            target_description=bundle.target_description,
        )
        assert result.new_features, bundle.name
        assert bundle.target in result.frame.columns
        for feature in result.new_features.values():
            for column in feature.output_columns:
                assert column in result.frame.columns
                assert len(result.frame[column]) == len(bundle.frame)

    def test_provenance_complete(self, bundle):
        tool = SmartFeat(fm=SimulatedFM(seed=2), downstream_model="lr")
        result = tool.fit_transform(
            bundle.frame, target=bundle.target, descriptions=bundle.descriptions
        )
        for feature in result.new_features.values():
            assert feature.description
            assert feature.family is not None


class TestBaselinesEverywhere:
    def test_featuretools(self, bundle):
        result = FeaturetoolsDFS().fit_transform(bundle.frame, bundle.target)
        assert result.n_generated >= 0
        assert bundle.target in result.frame.columns

    def test_autofeat(self, bundle):
        result = AutoFeatLike(max_selected=10).fit_transform(bundle.frame, bundle.target)
        assert result.n_generated > 0

    def test_caafe(self, bundle):
        caafe = CAAFELike(SimulatedFM(seed=0), validation_model="lr", iterations=3)
        result = caafe.fit_transform(
            bundle.frame, bundle.target, descriptions=bundle.descriptions
        )
        assert result.n_generated <= 6  # 3 iterations, ≤ 2 columns each
