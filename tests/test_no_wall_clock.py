"""Regression guard: no wall-clock timing in duration measurements.

``time.time()`` is the wrong clock for measuring elapsed durations: NTP
slews and DST/admin clock steps make it jump, which silently corrupts
time-limit enforcement (a baseline's one-hour budget) and reported
wall/makespan numbers.  Every duration in this codebase is measured with
``time.monotonic()`` or ``time.perf_counter()``; this test greps the
whole source tree so a future edit cannot quietly reintroduce the bug.

(The transports' simulated latencies and the executors' hedge timers
were audited in the same sweep — they already used monotonic clocks.)
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

WALL_CLOCK = re.compile(r"\btime\.time\(\)")

#: Files whose elapsed-time arithmetic the eval/baseline time limits
#: depend on directly — the original bugfix targets, pinned explicitly
#: so a rename doesn't silently drop them from the sweep.
CRITICAL = [
    SRC / "repro" / "eval" / "runner.py",
    SRC / "repro" / "baselines" / "base.py",
]


def _offending_lines(path: Path) -> list[tuple[int, str]]:
    lines = path.read_text().splitlines()
    return [
        (number, line.strip())
        for number, line in enumerate(lines, start=1)
        if WALL_CLOCK.search(line) and not line.lstrip().startswith("#")
    ]


def test_critical_timing_files_exist_and_use_monotonic_clocks():
    for path in CRITICAL:
        assert path.exists(), f"timing-critical file moved: {path}"
        text = path.read_text()
        assert "time.monotonic" in text, (
            f"{path} no longer uses time.monotonic for durations"
        )
        assert not _offending_lines(path)


def test_no_wall_clock_timing_anywhere_in_src():
    offenders = {}
    for path in sorted(SRC.rglob("*.py")):
        found = _offending_lines(path)
        if found:
            offenders[str(path.relative_to(SRC))] = found
    assert not offenders, (
        "time.time() used for timing — use time.monotonic()/perf_counter(): "
        f"{offenders}"
    )
